//! The `relcnn-runtime` engine in one tour: a deterministic sharded
//! campaign with CI-based early stopping, a JSONL artefact, and batched
//! hybrid-CNN inference across the worker pool.
//!
//! ```text
//! cargo run --release --example campaign_engine
//! ```

use relcnn::core::{HybridCnn, HybridConfig};
use relcnn::faults::{BerInjector, FaultInjector, FaultSite, OpContext};
use relcnn::gtsrb::{DatasetConfig, SyntheticGtsrb};
use relcnn::runtime::{
    run_campaign, run_campaign_sink, BatchClassify, CampaignConfig, CampaignSink, EarlyStop,
    Engine, JsonlSink, TrialOutcome, TrialResult,
};

fn seu_trial(seed: u64) -> TrialResult {
    // A synthetic qualified-operation stream under a 0.1% bit error rate.
    let mut inj = BerInjector::new(seed, 1e-3).with_sites(vec![FaultSite::Multiplier]);
    let mut flips = 0u32;
    for op in 0..512u64 {
        if inj.perturb(OpContext::new(FaultSite::Multiplier, op), 1.0) != 1.0 {
            flips += 1;
        }
    }
    TrialResult {
        outcome: match flips {
            0 => TrialOutcome::Correct,
            1 => TrialOutcome::DetectedRecovered,
            _ => TrialOutcome::DetectedAborted,
        },
        injector: inj.stats(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Deterministic campaign: thread count is execution detail. --
    let config = CampaignConfig::new(5_000, 0xD5EED).with_shards(50);
    let serial = run_campaign(&config.with_threads(1), seu_trial);
    let pooled = run_campaign(&config.with_threads(8), seu_trial);
    assert_eq!(serial, pooled, "aggregates are bit-identical per seed");
    println!(
        "campaign: {} trials — correct {}, recovered {}, aborted {} (1 and 8 workers agree)",
        serial.trials, serial.correct, serial.detected_recovered, serial.detected_aborted
    );

    // --- 2. Early abort: stop once the CI on the silent rate is tight. -
    let mut jsonl: Vec<u8> = Vec::new();
    let outcome = run_campaign_sink(
        &config,
        JsonlSink::new(
            &mut jsonl,
            CampaignSink::new(EarlyStop::on_ci_width(0.01, 500)),
        ),
        seu_trial,
    );
    println!(
        "early stop: aggregated {} of {} planned trials across {} shards \
         ({:.0} trials/s), JSONL artefact {} lines",
        outcome.summary.trials,
        config.trials,
        outcome.stats.shards,
        outcome.stats.throughput,
        jsonl.iter().filter(|&&b| b == b'\n').count()
    );

    // --- 3. Batched inference through the same engine. -----------------
    let data = SyntheticGtsrb::generate(&DatasetConfig::tiny(7))?;
    let hybrid = HybridCnn::untrained(&HybridConfig::tiny(8))?;
    let images: Vec<_> = data.test().iter().map(|s| s.image.clone()).collect();
    let outcome = hybrid.classify_many_stats(&Engine::default(), &images);
    let verdicts = outcome.summary?;
    println!(
        "batch inference: {} images in {:?} ({:.1} images/s, mean latency {:?})",
        verdicts.len(),
        outcome.stats.wall,
        outcome.stats.throughput,
        outcome.stats.mean_trial
    );
    Ok(())
}
