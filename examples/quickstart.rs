//! Quickstart: build a hybrid CNN, classify two signs, inspect the
//! qualified results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the paper's central behaviour: a safety-critical
//! classification (stop sign) is only *reliable* when the deterministic
//! shape qualifier confirms the octagon, while a non-critical class
//! (parking) "can be used without any qualification".

use relcnn::core::{HybridCnn, HybridConfig};
use relcnn::gtsrb::{RenderParams, SignClass, SignRenderer};
use relcnn::tensor::init::Rand;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An untrained tiny network: the classification itself is arbitrary,
    // but the qualification plumbing — reliable conv-1, shape qualifier,
    // result fusion — runs exactly as in production.
    let config = HybridConfig::tiny(42);
    let mut hybrid = HybridCnn::untrained(&config)?;

    let renderer = SignRenderer::new(config.image_size);
    let mut rng = Rand::seeded(7);

    for class in [SignClass::Stop, SignClass::Parking, SignClass::Yield] {
        let image = renderer.render(class, &RenderParams::nominal(), &mut rng);
        let verdict = hybrid.classify(&image)?;
        println!("rendered a {class} sign:");
        println!(
            "  predicted class ........ {} ({:?})",
            verdict.class(),
            verdict.label()
        );
        println!("  confidence ............. {:.3}", verdict.confidence());
        println!(
            "  safety critical ........ {}",
            verdict.is_safety_critical()
        );
        println!("  qualified .............. {}", verdict.is_qualified());
        if let Some(q) = verdict.qualifier() {
            println!(
                "  qualifier evidence ..... ratio {:.3}, corners {}, mindist {:?}",
                q.radial_ratio, q.corners, q.mindist
            );
            if !q.accepted {
                println!("  reject reasons ......... {:?}", q.reject_reasons);
            }
        }
        let g = verdict.guarantee();
        println!(
            "  reliable partition ..... {} ops under {}, {} faults detected\n",
            g.ops, g.mode, g.detected
        );
    }
    Ok(())
}
