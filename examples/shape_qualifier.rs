//! The deterministic shape qualifier in isolation: radial signatures, SAX
//! words and the acceptance matrix across all sign outline shapes — the
//! "surrogate function whose upper and lower bounds can be determined a
//! priori" (§III-B).
//!
//! ```text
//! cargo run --release --example shape_qualifier
//! ```

use relcnn::core::ShapeQualifier;
use relcnn::gtsrb::{RenderParams, ShapeKind, SignClass, SignRenderer};
use relcnn::tensor::init::Rand;
use relcnn::vision::rgb_to_gray;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let qualifier = ShapeQualifier::default();
    let renderer = SignRenderer::new(128);
    let mut rng = Rand::seeded(3);

    // Reference words of the polygon families.
    for sides in [3usize, 4, 8] {
        println!(
            "reference word, regular {sides}-gon: {}",
            qualifier.reference_word(sides)?
        );
    }
    println!();

    // Acceptance matrix: every rendered class against every expected shape.
    let expectations = [
        ShapeKind::Octagon,
        ShapeKind::TriangleDown,
        ShapeKind::Circle,
    ];
    println!(
        "{:<16}{:>12}{:>16}{:>12}",
        "rendered sign", "as octagon", "as triangle", "as circle"
    );
    let mut params = RenderParams::nominal();
    params.rotation = 0.1; // slightly angled, as in Figure 3
    for class in SignClass::ALL {
        let image = renderer.render(class, &params, &mut rng);
        let gray = rgb_to_gray(&image)?;
        let mut cells = Vec::new();
        for expected in expectations {
            let verdict = qualifier.assess_image(&gray, expected)?;
            cells.push(if verdict.accepted { "ACCEPT" } else { "reject" });
        }
        println!(
            "{:<16}{:>12}{:>16}{:>12}",
            class.to_string(),
            cells[0],
            cells[1],
            cells[2]
        );
    }

    // Detailed evidence for the stop sign.
    let stop = renderer.render(SignClass::Stop, &params, &mut rng);
    let verdict = qualifier.assess_image(&rgb_to_gray(&stop)?, ShapeKind::Octagon)?;
    println!("\nstop-sign evidence:");
    println!(
        "  SAX word ....... {}",
        verdict.word.as_deref().unwrap_or("-")
    );
    println!("  MINDIST ........ {:?}", verdict.mindist);
    println!("  radial ratio ... {:.3}", verdict.radial_ratio);
    println!("  corners ........ {}", verdict.corners);
    println!("  accepted ....... {}", verdict.accepted);
    Ok(())
}
