//! Fault-injection campaign against the hybrid classifier: SEUs strike the
//! reliable partition's multipliers at increasing bit error rates, and the
//! architecture's responses — detection, one-operation rollback, and the
//! leaky bucket's persistent-failure abort — are tallied.
//!
//! ```text
//! cargo run --release --example fault_campaign
//! ```

use relcnn::core::{HybridCnn, HybridConfig, HybridError};
use relcnn::faults::{BerInjector, FaultSite, StuckBitInjector};
use relcnn::gtsrb::{RenderParams, SignClass, SignRenderer};
use relcnn::tensor::init::Rand;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = HybridConfig::tiny(5);
    let mut hybrid = HybridCnn::untrained(&config)?;
    let image = SignRenderer::new(config.image_size).render(
        SignClass::Stop,
        &RenderParams::nominal(),
        &mut Rand::seeded(1),
    );
    let clean = hybrid.classify(&image)?;
    println!(
        "clean run: class {} ({} qualified ops, DMR)\n",
        clean.class(),
        clean.guarantee().ops
    );

    println!("-- transient SEUs at increasing BER (20 runs each) --");
    println!(
        "{:>9}{:>10}{:>11}{:>11}{:>9}{:>14}",
        "ber", "completed", "detected", "recovered", "aborts", "wrong output"
    );
    for ber in [1e-7f64, 1e-6, 1e-5, 1e-4] {
        let mut completed = 0u32;
        let mut detected = 0u64;
        let mut recovered = 0u64;
        let mut aborts = 0u32;
        let mut wrong = 0u32;
        for run in 0..20u64 {
            let mut injector = BerInjector::new(1000 + run, ber)
                .with_sites(vec![FaultSite::Multiplier, FaultSite::Accumulator]);
            match hybrid.classify_under_faults(&image, &mut injector) {
                Ok(v) => {
                    completed += 1;
                    detected += v.guarantee().detected;
                    recovered += v.guarantee().recovered;
                    if v.class() != clean.class() {
                        wrong += 1;
                    }
                }
                Err(HybridError::ReliablePathFailed(_)) => aborts += 1,
                Err(e) => return Err(e.into()),
            }
        }
        println!(
            "{:>9.0e}{:>10}{:>11}{:>11}{:>9}{:>14}",
            ber, completed, detected, recovered, aborts, wrong
        );
    }

    // --- Permanent faults: temporal vs spatial redundancy (§II-B). ------
    //
    // Our DMR executes both replicas on the SAME processing element
    // (temporal redundancy). A stuck bit in that PE corrupts both replicas
    // identically — the comparison passes and corruption is SILENT. This
    // is precisely the paper's caveat: "in the case of temporal redundancy
    // and given a permanent error, the platform becomes unusable".
    println!("\n-- permanent stuck bit, temporal redundancy (same PE) --");
    let mut stuck = StuckBitInjector::new(0, FaultSite::Multiplier, 30, true);
    match hybrid.classify_under_faults(&image, &mut stuck) {
        Ok(v) => {
            println!(
                "completed with class {} (clean run gave {}) and {} detections:",
                v.class(),
                clean.class(),
                v.guarantee().detected
            );
            println!(
                "the defect is common-mode across temporal replicas — DMR is\n\
                 BLIND to it. Only the independent shape qualifier still stands\n\
                 between this corruption and the application (qualified = {}).",
                v.is_qualified()
            );
        }
        Err(HybridError::ReliablePathFailed(e)) => println!("escalated: {e}"),
        Err(e) => return Err(e.into()),
    }

    // Spatial redundancy (replica-pinned fault, i.e. distinct hardware per
    // replica): the same permanent defect now hits only replica 0, every
    // comparison fails, and the leaky bucket escalates.
    println!("\n-- same defect, spatial redundancy (replica-pinned) --");
    use relcnn::faults::{FaultDuration, FaultKind, ScriptedFault};
    let mut spatial = relcnn::faults::ScriptedInjector::new((0..500_000u64).map(|op| {
        ScriptedFault {
            op_index: op,
            replica: Some(0),
            site: Some(FaultSite::Multiplier),
            kind: FaultKind::StuckBit { bit: 30, high: true },
            duration: FaultDuration::Permanent,
        }
    }));
    match hybrid.classify_under_faults(&image, &mut spatial) {
        Err(HybridError::ReliablePathFailed(e)) => {
            println!("explicitly reported, as the paper requires: {e}");
        }
        Ok(_) => println!("unexpected completion"),
        Err(e) => return Err(e.into()),
    }
    println!(
        "\nsummary: transient SEUs are detected and rolled back at one-\n\
         operation distance; permanent defects are escalated when replicas\n\
         are spatially independent, and require the architecture's second\n\
         diverse channel (the deterministic qualifier) when they are not."
    );
    Ok(())
}
