//! Fault-injection campaign against the hybrid classifier: SEUs strike the
//! reliable partition's multipliers at increasing bit error rates, and the
//! architecture's responses — detection, one-operation rollback, and the
//! leaky bucket's persistent-failure abort — are tallied.
//!
//! ```text
//! cargo run --release --example fault_campaign
//! ```

use relcnn::core::{HybridCnn, HybridConfig, HybridError};
use relcnn::faults::{BerInjector, FaultInjector, FaultSite, StuckBitInjector};
use relcnn::gtsrb::{RenderParams, SignClass, SignRenderer};
use relcnn::runtime::{
    CampaignSink, EarlyStop, Engine, RunPlan, Trial, TrialCtx, TrialOutcome, TrialResult,
};
use relcnn::tensor::init::Rand;
use relcnn::tensor::Tensor;

/// One campaign trial: classify `image` under a seeded BER injector.
///
/// Each worker clones the network once (`Trial::init`), not once per
/// trial — the runtime's per-worker-state mechanism.
struct SeuTrial<'a> {
    hybrid: &'a HybridCnn,
    image: &'a Tensor,
    clean_class: usize,
    ber: f64,
}

impl Trial for SeuTrial<'_> {
    type State = HybridCnn;
    type Output = TrialResult;

    fn init(&self, _worker_index: usize) -> HybridCnn {
        self.hybrid.clone()
    }

    fn run(&self, local: &mut HybridCnn, ctx: &mut TrialCtx) -> TrialResult {
        let mut injector = BerInjector::new(ctx.seed, self.ber)
            .with_sites(vec![FaultSite::Multiplier, FaultSite::Accumulator]);
        let outcome = match local.classify_under_faults(self.image, &mut injector) {
            Ok(v) if v.class() != self.clean_class => TrialOutcome::SilentCorruption,
            Ok(v) if v.guarantee().recovered > 0 => TrialOutcome::DetectedRecovered,
            Ok(_) => TrialOutcome::Correct,
            Err(HybridError::ReliablePathFailed(_)) => TrialOutcome::DetectedAborted,
            Err(e) => panic!("unexpected classification error: {e}"),
        };
        TrialResult {
            outcome,
            injector: injector.stats(),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = HybridConfig::tiny(5);
    let mut hybrid = HybridCnn::untrained(&config)?;
    let image = SignRenderer::new(config.image_size).render(
        SignClass::Stop,
        &RenderParams::nominal(),
        &mut Rand::seeded(1),
    );
    let clean = hybrid.classify(&image)?;
    println!(
        "clean run: class {} ({} qualified ops, DMR)\n",
        clean.class(),
        clean.guarantee().ops
    );

    // Campaigns run on the relcnn-runtime worker pool: seeded trials,
    // deterministic aggregates for any thread count. "completed" counts
    // trials that produced an output (right or wrong); "wrong output" is
    // the silent subset of those.
    println!("-- transient SEUs at increasing BER (20 seeded trials each) --");
    println!(
        "{:>9}{:>10}{:>11}{:>9}{:>14}",
        "ber", "completed", "recovered", "aborts", "wrong output"
    );
    for ber in [1e-7f64, 1e-6, 1e-5, 1e-4] {
        let trial = SeuTrial {
            hybrid: &hybrid,
            image: &image,
            clean_class: clean.class(),
            ber,
        };
        let report = Engine::default()
            .run(
                &RunPlan::new(20, 1000),
                &trial,
                CampaignSink::new(EarlyStop::never()),
            )
            .summary;
        println!(
            "{:>9.0e}{:>10}{:>11}{:>9}{:>14}",
            ber,
            report.trials - report.detected_aborted,
            report.detected_recovered,
            report.detected_aborted,
            report.silent
        );
    }

    // --- Permanent faults: temporal vs spatial redundancy (§II-B). ------
    //
    // Our DMR executes both replicas on the SAME processing element
    // (temporal redundancy). A stuck bit in that PE corrupts both replicas
    // identically — the comparison passes and corruption is SILENT. This
    // is precisely the paper's caveat: "in the case of temporal redundancy
    // and given a permanent error, the platform becomes unusable".
    println!("\n-- permanent stuck bit, temporal redundancy (same PE) --");
    let mut stuck = StuckBitInjector::new(0, FaultSite::Multiplier, 30, true);
    match hybrid.classify_under_faults(&image, &mut stuck) {
        Ok(v) => {
            println!(
                "completed with class {} (clean run gave {}) and {} detections:",
                v.class(),
                clean.class(),
                v.guarantee().detected
            );
            println!(
                "the defect is common-mode across temporal replicas — DMR is\n\
                 BLIND to it. Only the independent shape qualifier still stands\n\
                 between this corruption and the application (qualified = {}).",
                v.is_qualified()
            );
        }
        Err(HybridError::ReliablePathFailed(e)) => println!("escalated: {e}"),
        Err(e) => return Err(e.into()),
    }

    // Spatial redundancy (replica-pinned fault, i.e. distinct hardware per
    // replica): the same permanent defect now hits only replica 0, every
    // comparison fails, and the leaky bucket escalates.
    println!("\n-- same defect, spatial redundancy (replica-pinned) --");
    use relcnn::faults::{FaultDuration, FaultKind, ScriptedFault};
    let mut spatial =
        relcnn::faults::ScriptedInjector::new((0..500_000u64).map(|op| ScriptedFault {
            op_index: op,
            replica: Some(0),
            site: Some(FaultSite::Multiplier),
            kind: FaultKind::StuckBit {
                bit: 30,
                high: true,
            },
            duration: FaultDuration::Permanent,
        }));
    match hybrid.classify_under_faults(&image, &mut spatial) {
        Err(HybridError::ReliablePathFailed(e)) => {
            println!("explicitly reported, as the paper requires: {e}");
        }
        Ok(_) => println!("unexpected completion"),
        Err(e) => return Err(e.into()),
    }
    println!(
        "\nsummary: transient SEUs are detected and rolled back at one-\n\
         operation distance; permanent defects are escalated when replicas\n\
         are spatially independent, and require the architecture's second\n\
         diverse channel (the deterministic qualifier) when they are not."
    );
    Ok(())
}
