//! Exports the deployment manifest — the platform-agnostic description of
//! a hybrid CNN that the paper's future work calls for ("extensions to
//! the ONNX standard to facilitate the platform-agnostic description of
//! hybrid-CNNs").
//!
//! ```text
//! cargo run --release --example deployment_manifest
//! ```
//!
//! The manifest carries everything a safety assessor needs: the
//! architecture, the reliable partition and its redundancy policy, the
//! qualifier's a-priori bounds, and the quantified silent-corruption
//! guarantee at a declared reference bit error rate.

use relcnn::core::manifest::DeploymentManifest;
use relcnn::core::{HybridCnn, HybridConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hybrid = HybridCnn::untrained(&HybridConfig::standard(42))?;

    // A Jetson-class soft-error assumption for the guarantee statement.
    let reference_ber = 1e-9;
    let manifest = hybrid.deployment_manifest(reference_ber)?;

    println!("{}", manifest.to_json());

    let g = &manifest.reliability.conv1_guarantee;
    eprintln!("\n--- guarantee summary (stderr) ---");
    eprintln!(
        "conv-1: {} qualified ops under {}, reference BER {:.0e}",
        g.ops, g.mode, manifest.reliability.reference_ber
    );
    eprintln!(
        "silent-corruption bound per inference: {:.3e}",
        g.silent_bound
    );
    eprintln!(
        "expected detections per inference: {:.3e} (each recovered by a one-op rollback)",
        g.expected_detections
    );
    eprintln!("BCET {} / WCET {} cycles", g.bcet_cycles, g.wcet_cycles);

    // Round-trip: the JSON is the interchange artefact.
    let parsed = DeploymentManifest::from_json(&manifest.to_json())?;
    assert_eq!(parsed, manifest);
    Ok(())
}
