//! The full stop-sign pipeline: generate a synthetic GTSRB dataset, train
//! the hybrid CNN (Sobel filters pinned in conv-1, §III-B), then evaluate
//! with qualification — reporting, per class, how often the CNN was right
//! and how often the qualifier allowed the result to be *trusted*.
//!
//! ```text
//! cargo run --release --example stop_sign_pipeline
//! ```

use relcnn::core::{HybridCnn, HybridConfig};
use relcnn::gtsrb::{DatasetConfig, SignClass, SyntheticGtsrb};
use relcnn::nn::train::TrainConfig;
use relcnn::nn::SgdConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SyntheticGtsrb::generate(&DatasetConfig {
        image_size: 48,
        train_per_class: 16,
        test_per_class: 6,
        seed: 11,
        classes: SignClass::ALL.to_vec(),
    })?;
    println!(
        "dataset: {} train / {} test samples",
        data.train().len(),
        data.test().len()
    );

    let mut hybrid = HybridCnn::untrained(&HybridConfig::tiny(23))?;
    let train_config = TrainConfig {
        epochs: 6,
        batch_size: 16,
        sgd: SgdConfig::alexnet(0.02),
        seed: 31,
    };
    println!("training {} epochs…", train_config.epochs);
    let matrix = hybrid.train_on(&data, &train_config)?;
    println!("\ntest results:\n{matrix}\n");

    // Qualified evaluation: count, per class, correct classifications and
    // how many results the fusion block released as trustworthy.
    println!(
        "{:<16}{:>10}{:>12}{:>12}",
        "class", "correct", "qualified", "critical?"
    );
    for class in SignClass::ALL {
        let mut correct = 0usize;
        let mut qualified = 0usize;
        let mut total = 0usize;
        for sample in data.test_of(class) {
            let verdict = hybrid.classify(&sample.image)?;
            total += 1;
            if verdict.class() == class.index() {
                correct += 1;
            }
            if verdict.is_qualified() {
                qualified += 1;
            }
        }
        println!(
            "{:<16}{:>7}/{:<3}{:>9}/{:<3}{:>10}",
            class.to_string(),
            correct,
            total,
            qualified,
            total,
            if class.is_safety_critical() {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!(
        "\nnon-critical classes are always released; critical classes are\n\
         released only when the deterministic shape qualifier agrees."
    );
    Ok(())
}
