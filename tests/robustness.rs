//! Robustness tests: malformed inputs must produce errors, never panics
//! or silent misbehaviour — the API contract a safety-critical caller
//! relies on.

use relcnn::core::experiments::{fig4_filter_sweep, train_gtsrb_model, SweepDepth};
use relcnn::core::{HybridCnn, HybridConfig};
use relcnn::gtsrb::{DatasetConfig, SignClass, SyntheticGtsrb};
use relcnn::nn::train::TrainConfig;
use relcnn::nn::SgdConfig;
use relcnn::tensor::{Shape, Tensor};

#[test]
fn wrong_image_sizes_error_gracefully() {
    let mut hybrid = HybridCnn::untrained(&HybridConfig::tiny(1)).expect("hybrid");
    // Too small for the 11x11 stride-4 conv of the tiny CNN's geometry:
    // must be a structured error, not a panic.
    for dims in [
        Shape::d3(3, 8, 8),
        Shape::d3(3, 32, 48), // mismatched tail flatten size
        Shape::d3(1, 48, 48), // wrong channel count
        Shape::d2(48, 48),    // wrong rank
    ] {
        let img = Tensor::zeros(dims.clone());
        assert!(
            hybrid.classify(&img).is_err(),
            "dims {dims} must be rejected"
        );
    }
    // And the hybrid still works after rejected inputs.
    let good = Tensor::full(Shape::d3(3, 48, 48), 0.5);
    assert!(hybrid.classify(&good).is_ok());
}

#[test]
fn extreme_pixel_values_do_not_poison_the_pipeline() {
    let mut hybrid = HybridCnn::untrained(&HybridConfig::tiny(2)).expect("hybrid");
    // All-black, all-white and out-of-gamut images all classify without
    // panicking, with finite confidences.
    for value in [0.0f32, 1.0, 10.0, -3.0] {
        let img = Tensor::full(Shape::d3(3, 48, 48), value);
        let v = hybrid.classify(&img).expect("classify");
        assert!(v.confidence().is_finite());
        assert!(v.confidence() > 0.0);
    }
}

#[test]
fn confidence_only_sweep_skips_accuracy() {
    let data = SyntheticGtsrb::generate(&DatasetConfig {
        image_size: 64,
        train_per_class: 3,
        test_per_class: 2,
        seed: 3,
        classes: SignClass::ALL.to_vec(),
    })
    .expect("dataset");
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 8,
        sgd: SgdConfig::plain(0.02),
        seed: 4,
    };
    let (mut net, _) = train_gtsrb_model(&data, &tc, 5).expect("training");
    let (points, baseline) =
        fig4_filter_sweep(&mut net, &data, SignClass::Stop, SweepDepth::ConfidenceOnly)
            .expect("sweep");
    assert_eq!(points.len(), 96);
    assert!(baseline.accuracy.is_finite(), "baseline always evaluated");
    for p in &points {
        assert!(p.stop_confidence.is_finite());
        assert!(p.accuracy.is_nan(), "per-filter accuracy skipped");
    }
}

#[test]
fn zero_epoch_training_is_a_noop() {
    let data = SyntheticGtsrb::generate(&DatasetConfig::tiny(6)).expect("dataset");
    let mut hybrid = HybridCnn::untrained(&HybridConfig::tiny(7)).expect("hybrid");
    let before = hybrid.network_mut().state();
    let tc = TrainConfig {
        epochs: 0,
        batch_size: 8,
        sgd: SgdConfig::plain(0.02),
        seed: 8,
    };
    hybrid.train_on(&data, &tc).expect("evaluation still runs");
    assert_eq!(hybrid.network_mut().state(), before, "no weight changed");
}
