//! Cross-crate serialisation tests: model checkpoints through the hybrid
//! wrapper, JSON round-trips of the public result/report types, and the
//! experiment artefact types.

use relcnn::core::experiments::{fig3_series, SweepPoint};
use relcnn::core::{HybridCnn, HybridConfig};
use relcnn::gtsrb::{DatasetConfig, RenderParams, SignClass, SyntheticGtsrb};
use relcnn::nn::serial;
use relcnn::nn::train::TrainConfig;
use relcnn::nn::SgdConfig;
use relcnn::sax::SaxConfig;
use relcnn::tensor::init::Rand;

#[test]
fn hybrid_checkpoint_roundtrip_preserves_verdicts() {
    let data = SyntheticGtsrb::generate(&DatasetConfig::tiny(5)).expect("dataset");
    let mut hybrid = HybridCnn::untrained(&HybridConfig::tiny(6)).expect("hybrid");
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 8,
        sgd: SgdConfig::plain(0.02),
        seed: 7,
    };
    hybrid.train_on(&data, &tc).expect("training");

    let dir = std::env::temp_dir().join("relcnn_integration");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("hybrid.ckpt");
    serial::save(hybrid.network_mut(), &path).expect("save");

    let mut restored = HybridCnn::untrained(&HybridConfig::tiny(999)).expect("hybrid");
    serial::load(restored.network_mut(), &path).expect("load");

    for sample in data.test().iter().take(4) {
        let a = hybrid.classify(&sample.image).expect("a");
        let b = restored.classify(&sample.image).expect("b");
        assert_eq!(a.class(), b.class());
        assert_eq!(a.confidence().to_bits(), b.confidence().to_bits());
        assert_eq!(a.is_qualified(), b.is_qualified());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn verdict_serialises_to_json_and_back() {
    let mut hybrid = HybridCnn::untrained(&HybridConfig::tiny(8)).expect("hybrid");
    let image = relcnn::gtsrb::SignRenderer::new(48).render(
        SignClass::Stop,
        &RenderParams::nominal(),
        &mut Rand::seeded(9),
    );
    let verdict = hybrid.classify(&image).expect("classification");
    let json = serde_json::to_string(&verdict).expect("serialize");
    let back: relcnn::core::QualifiedClassification =
        serde_json::from_str(&json).expect("deserialize");
    assert_eq!(verdict, back);
    assert!(json.contains("confidence"));
}

#[test]
fn experiment_artefacts_serialise() {
    let fig3 = fig3_series(96, 0.1, 128, SaxConfig::default(), 10).expect("fig3");
    let json = serde_json::to_string(&fig3).expect("serialize");
    assert!(json.contains("word"));

    let point = SweepPoint {
        filter: 3,
        stop_confidence: 0.82,
        accuracy: 0.9,
    };
    let json = serde_json::to_string(&point).expect("serialize");
    let back: SweepPoint = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(point, back);
}

#[test]
fn dataset_config_roundtrip() {
    let config = DatasetConfig::standard(42);
    let json = serde_json::to_string(&config).expect("serialize");
    let back: DatasetConfig = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(config, back);
    // Same config, same dataset.
    let a = SyntheticGtsrb::generate(&DatasetConfig::tiny(3)).expect("a");
    let b = SyntheticGtsrb::generate(&DatasetConfig::tiny(3)).expect("b");
    assert_eq!(a.train()[0].image, b.train()[0].image);
}
