//! Baseline comparison: activation-range supervision ("caging", paper
//! §II-D / reference [28]) vs the paper's qualified redundant execution.
//!
//! The experiment quantifies the trade the paper describes in prose:
//! range supervision costs almost nothing but only masks *large*
//! corruption; small in-range corruption passes silently. Qualified DMR
//! detects any single-replica corruption regardless of magnitude.

use relcnn::faults::{bits, FaultSite, ScriptedFault, ScriptedInjector};
use relcnn::nn::ranger::{ActivationRange, RangeSupervisor};
use relcnn::nn::{alexnet, Mode};
use relcnn::relexec::conv::{reliable_conv2d, ReliableConvConfig};
use relcnn::relexec::{BucketConfig, DmrAlu, PlainAlu, RetryPolicy};
use relcnn::tensor::conv::{conv2d, ConvGeometry};
use relcnn::tensor::init::{Init, Rand};
use relcnn::tensor::{Shape, Tensor};

struct Setup {
    input: Tensor,
    weights: Tensor,
    geom: ConvGeometry,
    golden: Tensor,
    range: ActivationRange,
}

fn setup() -> Setup {
    let mut rng = Rand::seeded(21);
    let input = rng.tensor(Shape::d3(2, 8, 8), Init::Uniform { lo: 0.0, hi: 1.0 });
    let weights = rng.tensor(Shape::d4(3, 2, 3, 3), Init::HeNormal { fan_in: 18 });
    let geom = ConvGeometry::new(8, 8, 3, 3, 1, 0).expect("geometry");
    let golden = conv2d(&input, &weights, None, &geom).expect("golden");
    // Calibrated bounds of the clean output, with margin — exactly how a
    // Ranger-style deployment would fit them.
    let range = ActivationRange::of(&golden).with_margin(0.1);
    Setup {
        input,
        weights,
        geom,
        golden,
        range,
    }
}

/// Runs a plain (unprotected) convolution with one scripted fault, then
/// applies range supervision. Returns (caught_by_range, residual_error).
fn plain_with_ranger(s: &Setup, fault: ScriptedFault) -> (bool, f32) {
    let mut alu = PlainAlu::new(ScriptedInjector::new([fault]));
    let config = ReliableConvConfig {
        bucket: BucketConfig::new(1, u32::MAX),
        retry: RetryPolicy::none(),
        pe_count: 4,
    };
    let out = reliable_conv2d(&s.input, &s.weights, None, &s.geom, &mut alu, &config)
        .expect("plain run completes");
    let mut caught = false;
    let mut residual = 0.0f32;
    for (o, g) in out.output.iter().zip(s.golden.iter()) {
        let (clamped, hit) = s.range.clamp_value(*o);
        caught |= hit;
        residual = residual.max((clamped - g).abs());
    }
    (caught, residual)
}

#[test]
fn ranger_masks_exponent_upsets() {
    let s = setup();
    // Exponent MSB flip on a multiplier output: value explodes far out of
    // range — the case range supervision exists for.
    let fault = ScriptedFault::transient_flip(10, 30).at_site(FaultSite::Multiplier);
    let (caught, residual) = plain_with_ranger(&s, fault);
    assert!(caught, "huge corruption must violate the fitted range");
    // Masked: the residual is bounded by the range width, not by the
    // corrupted magnitude.
    let width = s.range.max - s.range.min;
    assert!(
        residual <= width * 1.5,
        "residual {residual} not bounded by range width {width}"
    );
}

#[test]
fn ranger_blind_to_mantissa_upsets_dmr_is_not() {
    let s = setup();
    // Mantissa mid-bit flip: small, in-range corruption.
    let fault = ScriptedFault::transient_flip(10, 12).at_site(FaultSite::Multiplier);
    let (caught, residual) = plain_with_ranger(&s, fault);
    assert!(
        !caught,
        "in-range corruption passes range supervision silently"
    );
    // It is real corruption nonetheless (just small).
    assert!(residual >= 0.0);

    // The same fault pinned to one replica under qualified DMR: detected
    // and rolled back, output golden.
    let fault = ScriptedFault::transient_flip(10, 12)
        .on_replica(1)
        .at_site(FaultSite::Multiplier);
    let mut alu = DmrAlu::new(ScriptedInjector::new([fault]));
    let out = reliable_conv2d(
        &s.input,
        &s.weights,
        None,
        &s.geom,
        &mut alu,
        &ReliableConvConfig::default(),
    )
    .expect("recovered");
    assert_eq!(out.stats.recovered, 1, "DMR caught what the cage missed");
    for (o, g) in out.output.iter().zip(s.golden.iter()) {
        assert!((o - g).abs() < 1e-4);
    }
}

#[test]
fn ranger_calibration_on_real_network() {
    // End-to-end: fit a supervisor on a CNN over calibration images and
    // verify a corrupted intermediate activation is caught at the layer
    // where it exceeds the envelope.
    let mut rng = Rand::seeded(33);
    let mut net = alexnet::tiny_cnn(4, 16, &mut rng).unwrap();
    let calibration: Vec<Tensor> = (0..5)
        .map(|_| rng.tensor(Shape::d3(3, 16, 16), Init::Uniform { lo: 0.0, hi: 1.0 }))
        .collect();
    let sup = RangeSupervisor::fit(&mut net, &calibration, 0.1).unwrap();

    let probe = rng.tensor(Shape::d3(3, 16, 16), Init::Uniform { lo: 0.0, hi: 1.0 });
    let mut conv_out = net.forward_trace(&probe, Mode::Eval).unwrap().remove(0);
    // Inject an exponent upset into the conv output.
    let v = conv_out.as_slice()[7];
    conv_out.as_mut_slice()[7] = bits::flip_bit(if v == 0.0 { 0.1 } else { v }, 30);
    let supervised = sup.supervise(0, &conv_out).unwrap();
    assert!(supervised.violations >= 1, "envelope violation detected");
}
