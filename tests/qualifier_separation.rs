//! Statistical separation test of the shape qualifier over the rendered
//! dataset: genuine octagons must (almost) always qualify, impostor
//! shapes must never qualify as octagons — the property that makes the
//! qualification sound rather than decorative.

use relcnn::core::{QualifierConfig, ShapeQualifier};
use relcnn::gtsrb::{DatasetConfig, ShapeKind, SignClass, SyntheticGtsrb};
use relcnn::vision::rgb_to_gray;

#[test]
fn strict_qualifier_separates_on_96px_dataset() {
    let data = SyntheticGtsrb::generate(&DatasetConfig {
        image_size: 96,
        train_per_class: 0,
        test_per_class: 12,
        seed: 71,
        classes: SignClass::ALL.to_vec(),
    })
    .expect("dataset");
    let qualifier = ShapeQualifier::new(QualifierConfig::strict());

    let mut stop_accepts = 0usize;
    let mut stop_total = 0usize;
    let mut impostor_accepts = 0usize;
    let mut impostor_total = 0usize;
    for sample in data.test() {
        let gray = rgb_to_gray(&sample.image).expect("gray");
        let verdict = qualifier
            .assess_image(&gray, ShapeKind::Octagon)
            .expect("verdict");
        if sample.label == SignClass::Stop {
            stop_total += 1;
            if verdict.accepted {
                stop_accepts += 1;
            }
        } else {
            impostor_total += 1;
            if verdict.accepted {
                impostor_accepts += 1;
            }
        }
    }
    assert_eq!(
        impostor_accepts, 0,
        "no non-octagon may ever qualify as a stop-sign shape ({impostor_accepts}/{impostor_total})"
    );
    // Rendered signs include blur, noise, clutter and extreme poses; the
    // qualifier is deliberately conservative, so some true rejections are
    // expected — but the majority must qualify.
    assert!(
        stop_accepts * 10 >= stop_total * 6,
        "stop acceptance too low: {stop_accepts}/{stop_total}"
    );
}

#[test]
fn yield_triangle_separation() {
    let data = SyntheticGtsrb::generate(&DatasetConfig {
        image_size: 96,
        train_per_class: 0,
        test_per_class: 10,
        seed: 72,
        classes: vec![SignClass::Yield, SignClass::Stop, SignClass::Parking],
    })
    .expect("dataset");
    let qualifier = ShapeQualifier::new(QualifierConfig::strict());

    let mut false_accepts = 0usize;
    for sample in data.test() {
        let gray = rgb_to_gray(&sample.image).expect("gray");
        let verdict = qualifier
            .assess_image(&gray, ShapeKind::TriangleDown)
            .expect("verdict");
        if sample.label != SignClass::Yield && verdict.accepted {
            false_accepts += 1;
        }
    }
    assert_eq!(false_accepts, 0, "non-triangles qualified as yield");
}

#[test]
fn qualifier_determinism_over_dataset() {
    let data = SyntheticGtsrb::generate(&DatasetConfig {
        image_size: 96,
        train_per_class: 0,
        test_per_class: 3,
        seed: 73,
        classes: vec![SignClass::Stop, SignClass::Warning],
    })
    .expect("dataset");
    let qualifier = ShapeQualifier::new(QualifierConfig::strict());
    for sample in data.test() {
        let gray = rgb_to_gray(&sample.image).expect("gray");
        let a = qualifier
            .assess_image(&gray, ShapeKind::Octagon)
            .expect("a");
        let b = qualifier
            .assess_image(&gray, ShapeKind::Octagon)
            .expect("b");
        assert_eq!(a, b, "verdicts must be bit-identical across runs");
    }
}
