//! End-to-end integration tests: dataset → training → hybrid
//! classification with qualification, fault injection and failure
//! escalation, across crate boundaries.

use relcnn::core::{HybridCnn, HybridConfig, HybridError, QualificationMode};
use relcnn::faults::{BerInjector, FaultInjector, FaultSite, ScriptedFault, ScriptedInjector};
use relcnn::gtsrb::{DatasetConfig, RenderParams, SignClass, SignRenderer, SyntheticGtsrb};
use relcnn::nn::train::TrainConfig;
use relcnn::nn::SgdConfig;
use relcnn::relexec::RedundancyMode;
use relcnn::tensor::init::Rand;

fn trained_hybrid(seed: u64) -> (HybridCnn, SyntheticGtsrb) {
    let data = SyntheticGtsrb::generate(&DatasetConfig {
        image_size: 48,
        train_per_class: 10,
        test_per_class: 4,
        seed,
        classes: SignClass::ALL.to_vec(),
    })
    .expect("dataset");
    let mut hybrid = HybridCnn::untrained(&HybridConfig::tiny(seed ^ 0xA5)).expect("hybrid");
    let tc = TrainConfig {
        epochs: 4,
        batch_size: 16,
        sgd: SgdConfig::alexnet(0.02),
        seed: seed ^ 0x5A,
    };
    hybrid.train_on(&data, &tc).expect("training");
    (hybrid, data)
}

#[test]
fn trained_pipeline_classifies_and_qualifies() {
    let (mut hybrid, data) = trained_hybrid(100);

    let mut correct = 0usize;
    let mut total = 0usize;
    let mut stop_qualified = 0usize;
    let mut stop_total = 0usize;
    for sample in data.test() {
        let verdict = hybrid.classify(&sample.image).expect("classification");
        total += 1;
        if verdict.class() == sample.label.index() {
            correct += 1;
        }
        if sample.label == SignClass::Stop && verdict.class() == SignClass::Stop.index() {
            stop_total += 1;
            if verdict.is_qualified() {
                stop_qualified += 1;
            }
        }
        // Fault-free runs never report detections.
        assert!(verdict.guarantee().is_clean());
    }
    let accuracy = correct as f64 / total as f64;
    assert!(
        accuracy > 0.5,
        "trained model should beat chance comfortably, got {accuracy}"
    );
    if stop_total > 0 {
        assert!(
            stop_qualified * 2 >= stop_total,
            "most correctly recognised stop signs should qualify: {stop_qualified}/{stop_total}"
        );
    }
}

#[test]
fn misrendered_stop_is_never_qualified_as_octagon() {
    // A triangle that the CNN might call "stop" must fail qualification:
    // feed yield-sign images and check no octagon confirmation happens.
    let (mut hybrid, data) = trained_hybrid(200);
    for sample in data.test_of(SignClass::Yield) {
        let verdict = hybrid.classify(&sample.image).expect("classification");
        if verdict.class() == SignClass::Stop.index() {
            assert!(
                !verdict.is_qualified(),
                "a triangle qualified as an octagonal stop sign"
            );
        }
    }
}

#[test]
fn fault_injection_recovers_and_matches_clean_run() {
    let (mut hybrid, data) = trained_hybrid(300);
    let image = &data.test()[0].image;
    let clean = hybrid.classify(image).expect("clean");
    let mut injector =
        BerInjector::new(77, 1e-5).with_sites(vec![FaultSite::Multiplier, FaultSite::Accumulator]);
    let noisy = hybrid
        .classify_under_faults(image, &mut injector)
        .expect("recovered classification");
    assert_eq!(
        clean.class(),
        noisy.class(),
        "DMR + rollback masks transients"
    );
    assert_eq!(noisy.guarantee().detected, noisy.guarantee().recovered);
    assert!(injector.stats().exposures > 0, "injector state advanced");
}

#[test]
fn permanent_fault_escalates_not_corrupts() {
    let (mut hybrid, data) = trained_hybrid(400);
    let image = &data.test()[0].image;
    let mut injector = ScriptedInjector::new([ScriptedFault::transient_flip(40, 30)
        .on_replica(0)
        .at_site(FaultSite::Multiplier)
        .permanent()]);
    match hybrid.classify_under_faults(image, &mut injector) {
        Err(HybridError::ReliablePathFailed(e)) => {
            assert!(e.to_string().contains("persistent"));
        }
        other => panic!("expected persistent-failure escalation, got {other:?}"),
    }
}

#[test]
fn classification_is_deterministic() {
    let image = SignRenderer::new(48).render(
        SignClass::Stop,
        &RenderParams::nominal(),
        &mut Rand::seeded(1),
    );
    let run = |seed: u64| {
        let mut hybrid = HybridCnn::untrained(&HybridConfig::tiny(seed)).expect("hybrid");
        let v = hybrid.classify(&image).expect("classification");
        (v.class(), v.confidence().to_bits(), v.is_qualified())
    };
    assert_eq!(run(9), run(9));
}

#[test]
fn figure1_and_figure2_modes_both_work_at_96px() {
    let image = SignRenderer::new(96).render(
        SignClass::Stop,
        &RenderParams::nominal(),
        &mut Rand::seeded(2),
    );
    for (mode, config) in [
        (QualificationMode::Parallel, HybridConfig::standard(50)),
        (QualificationMode::Hybrid, HybridConfig::hybrid_path(50)),
    ] {
        let mut config = config;
        config.redundancy = RedundancyMode::Plain; // keep runtime down
        assert_eq!(config.qualification, mode);
        let mut hybrid = HybridCnn::untrained(&config).expect("hybrid");
        let verdict = hybrid.classify(&image).expect("classification");
        if verdict.is_safety_critical() {
            assert!(
                verdict.qualifier().is_some(),
                "{mode:?}: qualifier must run for critical classes"
            );
        }
    }
}

#[test]
fn all_redundancy_modes_agree_on_class() {
    let image = SignRenderer::new(48).render(
        SignClass::Mandatory,
        &RenderParams::nominal(),
        &mut Rand::seeded(3),
    );
    let mut classes = Vec::new();
    for mode in RedundancyMode::ALL {
        let mut config = HybridConfig::tiny(60);
        config.redundancy = mode;
        let mut hybrid = HybridCnn::untrained(&config).expect("hybrid");
        classes.push(hybrid.classify(&image).expect("classification").class());
    }
    assert_eq!(classes[0], classes[1]);
    assert_eq!(classes[1], classes[2]);
}
