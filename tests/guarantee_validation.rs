//! Validates the analytic reliability guarantee against measured
//! fault-injection campaigns — the title's "guarantee" made falsifiable.
//!
//! For each redundancy mode and BER, a campaign of seeded trials runs a
//! small reliable convolution under random multiplier/accumulator SEUs;
//! the measured silent-corruption rate must not exceed the analytic bound
//! (plus sampling error), and DMR/TMR detection coverage of
//! single-replica faults must be total.

use relcnn::core::guarantee::{conv_layer_guarantee, silent_layer_bound, silent_op_probability};
use relcnn::faults::campaign::{CampaignConfig, TrialOutcome, TrialResult};
use relcnn::faults::{BerInjector, FaultInjector, FaultSite};
use relcnn::relexec::conv::{reliable_conv2d, ConvOutput, ReliableConvConfig};
use relcnn::relexec::{
    BucketConfig, DmrAlu, ExecError, PlainAlu, RedundancyMode, RetryPolicy, TmrAlu,
};
use relcnn::runtime::run_campaign;
use relcnn::tensor::conv::{conv2d, ConvGeometry};
use relcnn::tensor::init::{Init, Rand};
use relcnn::tensor::{Shape, Tensor};

struct Problem {
    input: Tensor,
    weights: Tensor,
    geom: ConvGeometry,
    golden: Tensor,
    ops: u64,
}

fn problem() -> Problem {
    let mut rng = Rand::seeded(11);
    let input = rng.tensor(Shape::d3(2, 8, 8), Init::Uniform { lo: -1.0, hi: 1.0 });
    let weights = rng.tensor(Shape::d4(3, 2, 3, 3), Init::HeNormal { fan_in: 18 });
    let geom = ConvGeometry::new(8, 8, 3, 3, 1, 0).expect("geometry");
    let golden = conv2d(&input, &weights, None, &geom).expect("golden");
    let ops = 2 * geom.mac_count(2, 3);
    Problem {
        input,
        weights,
        geom,
        golden,
        ops,
    }
}

fn lenient_config() -> ReliableConvConfig {
    ReliableConvConfig {
        bucket: BucketConfig::new(1, u32::MAX),
        retry: RetryPolicy::with_retries(4),
        pe_count: 4,
    }
}

fn classify_outcome(result: Result<ConvOutput, ExecError>, golden: &Tensor) -> TrialOutcome {
    match result {
        Err(_) => TrialOutcome::DetectedAborted,
        Ok(out) => {
            let silent = out
                .output
                .iter()
                .zip(golden.iter())
                .any(|(a, b)| (a - b).abs() > 1e-4);
            if silent {
                TrialOutcome::SilentCorruption
            } else if out.stats.retries > 0 {
                TrialOutcome::DetectedRecovered
            } else {
                TrialOutcome::Correct
            }
        }
    }
}

fn campaign_for(
    mode: RedundancyMode,
    ber: f64,
    trials: u64,
) -> relcnn::faults::campaign::CampaignReport {
    let p = problem();
    let config = lenient_config();
    run_campaign(&CampaignConfig::new(trials, 0xBEEF), |seed| {
        let injector = BerInjector::new(seed, ber)
            .with_sites(vec![FaultSite::Multiplier, FaultSite::Accumulator]);
        let (outcome, stats) = match mode {
            RedundancyMode::Plain => {
                let mut alu = PlainAlu::new(injector);
                let r = reliable_conv2d(&p.input, &p.weights, None, &p.geom, &mut alu, &config);
                (classify_outcome(r, &p.golden), alu.into_injector().stats())
            }
            RedundancyMode::Dmr => {
                let mut alu = DmrAlu::new(injector);
                let r = reliable_conv2d(&p.input, &p.weights, None, &p.geom, &mut alu, &config);
                (classify_outcome(r, &p.golden), alu.into_injector().stats())
            }
            RedundancyMode::Tmr => {
                let mut alu = TmrAlu::new(injector);
                let r = reliable_conv2d(&p.input, &p.weights, None, &p.geom, &mut alu, &config);
                (classify_outcome(r, &p.golden), alu.into_injector().stats())
            }
        };
        TrialResult {
            outcome,
            injector: stats,
        }
    })
}

#[test]
fn dmr_campaign_has_no_silent_corruption_at_realistic_ber() {
    let report = campaign_for(RedundancyMode::Dmr, 1e-4, 150);
    assert_eq!(
        report.silent, 0,
        "DMR silent corruptions at ber 1e-4 (bound predicts ~1e-7 per layer)"
    );
    assert!(report.injected > 0, "faults actually fired");
    assert_eq!(report.detection_coverage(), Some(1.0));
}

#[test]
fn tmr_campaign_corrects_everything_without_aborts() {
    let report = campaign_for(RedundancyMode::Tmr, 1e-4, 150);
    assert_eq!(report.silent, 0);
    assert_eq!(
        report.detected_aborted, 0,
        "TMR corrects single faults in place; no retries needed"
    );
    assert!(report.injected > 0);
}

#[test]
fn plain_campaign_matches_analytic_rate() {
    let p = problem();
    let ber = 1e-4;
    let trials = 300u64;
    let report = campaign_for(RedundancyMode::Plain, ber, trials);
    let silent_rate = report.silent as f64 / report.trials as f64;
    let bound = silent_layer_bound(RedundancyMode::Plain, ber, p.ops);
    // Three-sigma sampling slack on top of the bound (the bound is an
    // upper bound: masked corruption keeps the measured rate below it).
    let sigma = (bound.min(1.0) * (1.0 - bound.min(1.0)) / trials as f64).sqrt();
    assert!(
        silent_rate <= bound + 3.0 * sigma + 0.02,
        "plain silent rate {silent_rate} exceeds bound {bound}"
    );
    assert!(
        silent_rate > 0.0,
        "plain execution at ber {ber} over {} ops must corrupt sometimes",
        p.ops
    );
}

#[test]
fn mode_ordering_plain_worse_than_dmr_worse_equal_tmr() {
    // BER low enough that the plain layer bound stays unclamped (< 1.0),
    // so the quadratic-suppression ratio is visible.
    let ber = 1e-6;
    for ops in [1_000u64, 100_000] {
        let plain = silent_layer_bound(RedundancyMode::Plain, ber, ops);
        let dmr = silent_layer_bound(RedundancyMode::Dmr, ber, ops);
        let tmr = silent_layer_bound(RedundancyMode::Tmr, ber, ops);
        assert!(plain < 1.0, "test precondition: unclamped bound");
        assert!(plain > dmr * 1e3, "quadratic suppression: {plain} vs {dmr}");
        assert!(tmr >= dmr, "TMR pairs 3 ways: {tmr} vs {dmr}");
        assert!(tmr < plain);
    }
}

#[test]
fn alexnet_conv1_static_guarantee_is_publishable() {
    // The end-to-end statement a safety case would cite: AlexNet conv-1
    // under DMR at a Jetson-class BER.
    let geom = ConvGeometry::new(227, 227, 11, 11, 4, 0).expect("geometry");
    let g = conv_layer_guarantee(
        &geom,
        3,
        96,
        RedundancyMode::Dmr,
        1e-9,
        RetryPolicy::paper(),
    );
    assert!(g.silent_bound < 1e-10, "bound {:.3e}", g.silent_bound);
    assert!(g.expected_detections < 1.0);
    assert!(g.wcet_cycles > g.bcet_cycles);
    // And the per-op statement that grounds it.
    assert!(silent_op_probability(RedundancyMode::Dmr, 1e-9) < 1e-19);
}
