//! Property-based tests for the CNN substrate: gradient correctness on
//! random configurations (the property that makes training trustworthy)
//! and training-loop invariants.

use proptest::prelude::*;
use relcnn_nn::{Conv2d, CrossEntropyLoss, Dense, Layer, LocalResponseNorm, MaxPool2d, Mode, ReLU};
use relcnn_tensor::init::{Init, Rand};
use relcnn_tensor::{Shape, Tensor};

/// Central-difference input-gradient check against `backward`.
fn input_grad_matches(layer: &mut dyn Layer, input: &Tensor, probes: &[usize], tol: f32) -> bool {
    let out = layer.forward(input, Mode::Train).unwrap();
    let dy = Tensor::ones(out.shape().clone());
    let dx = layer.backward(&dy).unwrap();
    let eps = 1e-2f32;
    for &i in probes {
        let i = i % input.len();
        let mut plus = input.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = input.clone();
        minus.as_mut_slice()[i] -= eps;
        let f_plus = layer.forward(&plus, Mode::Eval).unwrap().sum();
        let f_minus = layer.forward(&minus, Mode::Eval).unwrap().sum();
        let numeric = (f_plus - f_minus) / (2.0 * eps);
        let analytic = dx.as_slice()[i];
        if (numeric - analytic).abs() > tol * (1.0 + numeric.abs()) {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conv2d input gradients are correct for random geometries.
    #[test]
    fn conv_gradients_correct(
        seed in 0u64..1000,
        in_c in 1usize..3,
        out_c in 1usize..4,
        k in 2usize..4,
        stride in 1usize..3,
    ) {
        let size = 7usize;
        let mut rng = Rand::seeded(seed);
        let mut conv = Conv2d::new(in_c, out_c, k, stride, 1, &mut rng);
        let input = rng.tensor(
            Shape::d3(in_c, size, size),
            Init::Uniform { lo: -1.0, hi: 1.0 },
        );
        prop_assert!(input_grad_matches(&mut conv, &input, &[0, 7, 19, 40], 3e-2));
    }

    /// Dense input gradients are correct for random sizes.
    #[test]
    fn dense_gradients_correct(
        seed in 0u64..1000,
        in_dim in 2usize..24,
        out_dim in 1usize..12,
    ) {
        let mut rng = Rand::seeded(seed);
        let mut dense = Dense::new(in_dim, out_dim, &mut rng);
        let input = rng.tensor(Shape::d1(in_dim), Init::Uniform { lo: -1.0, hi: 1.0 });
        prop_assert!(input_grad_matches(&mut dense, &input, &[0, 1, in_dim / 2], 2e-2));
    }

    /// LRN gradients are correct for random channel counts and constants.
    #[test]
    fn lrn_gradients_correct(
        seed in 0u64..1000,
        c in 2usize..6,
        alpha in 0.01f32..0.5,
    ) {
        let mut rng = Rand::seeded(seed);
        let mut lrn = LocalResponseNorm::new(3, 2.0, alpha, 0.75);
        let input = rng.tensor(Shape::d3(c, 3, 3), Init::Uniform { lo: -1.0, hi: 1.0 });
        prop_assert!(input_grad_matches(&mut lrn, &input, &[0, 3, 8], 3e-2));
    }

    /// ReLU and MaxPool gradients route correctly on random inputs.
    #[test]
    fn routing_layer_gradients(seed in 0u64..1000) {
        let mut rng = Rand::seeded(seed);
        let mut relu = ReLU::new();
        let mut input = rng.tensor(Shape::d1(32), Init::Uniform { lo: -1.0, hi: 1.0 });
        // Central differences are invalid within eps of the ReLU kink;
        // push such samples away from zero (the analytic gradient there is
        // a subgradient choice, not a finite-difference mismatch).
        input.map_inplace(|v| if v.abs() < 0.05 { 0.1 + v } else { v });
        prop_assert!(input_grad_matches(&mut relu, &input, &[0, 11, 31], 1e-2));

        // MaxPool: ties at window boundaries break the finite-difference
        // assumption, so probe away from exact ties via noise.
        let mut pool = MaxPool2d::new(2, 2);
        let input = rng.tensor(Shape::d3(1, 6, 6), Init::Uniform { lo: 0.0, hi: 1.0 });
        let out = pool.forward(&input, Mode::Train).unwrap();
        let dx = pool.backward(&Tensor::ones(out.shape().clone())).unwrap();
        // Pool gradient conserves mass: one unit per output element.
        prop_assert!((dx.sum() - out.len() as f32).abs() < 1e-4);
    }

    /// Softmax cross-entropy gradient sums to zero (probability mass
    /// conservation) for random logits.
    #[test]
    fn loss_gradient_sums_to_zero(
        logits in proptest::collection::vec(-5.0f32..5.0, 2..12),
        target_raw in 0usize..12,
    ) {
        let n = logits.len();
        let target = target_raw % n;
        let loss = CrossEntropyLoss::new();
        let t = Tensor::from_vec(Shape::d1(n), logits).unwrap();
        let (l, probs) = loss.forward(&t, target).unwrap();
        prop_assert!(l >= 0.0);
        let g = loss.backward(&probs, target).unwrap();
        prop_assert!(g.sum().abs() < 1e-5);
        prop_assert!(g.as_slice()[target] <= 0.0);
    }

    /// One SGD step on a single sample always reduces that sample's loss
    /// (for a small enough learning rate).
    #[test]
    fn sgd_step_reduces_sample_loss(seed in 0u64..200) {
        use relcnn_nn::{alexnet, Sgd, SgdConfig};
        let mut rng = Rand::seeded(seed);
        let mut net = alexnet::tiny_cnn(3, 8, &mut rng).unwrap();
        let x = rng.tensor(Shape::d3(3, 8, 8), Init::Uniform { lo: 0.0, hi: 1.0 });
        let target = (seed % 3) as usize;
        let loss = CrossEntropyLoss::new();

        let logits = net.forward(&x, Mode::Train).unwrap();
        let (l0, probs) = loss.forward(&logits, target).unwrap();
        net.zero_grads();
        let g = loss.backward(&probs, target).unwrap();
        net.backward(&g).unwrap();
        let mut sgd = Sgd::new(SgdConfig::plain(0.01));
        sgd.step(&mut net.params(), 1).unwrap();

        let logits = net.forward(&x, Mode::Eval).unwrap();
        let (l1, _) = loss.forward(&logits, target).unwrap();
        prop_assert!(l1 <= l0 + 1e-5, "loss rose: {} -> {}", l0, l1);
    }
}
