//! Proves the arena claim mechanically: after a warmup image has sized
//! the scratch buffers and the weight-matrix cache, steady-state
//! inference through `Network::forward_scratch` performs **zero heap
//! allocations per image**.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! runs ≥3 batches through one worker's arena and asserts the allocation
//! counter does not move. This file deliberately contains a single test:
//! the harness runs tests in one process, and a sibling test allocating
//! on another thread would poison the counter.

use relcnn_nn::scratch::InferScratch;
use relcnn_nn::{alexnet, Mode};
use relcnn_tensor::init::{Init, Rand};
use relcnn_tensor::{Shape, Tensor};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// System allocator with an allocation-event counter. `dealloc` is not
/// counted: the invariant under test is "no new memory is requested",
/// and frees of warmup memory would only ever happen alongside a
/// matching (counted) allocation.
struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_inference_allocates_nothing() {
    // The serving model: the scaled AlexNet over 96×96 RGB images.
    let mut rng = Rand::seeded(42);
    let mut net = alexnet::alexnet_gtsrb(8, 96, &mut rng).expect("network");
    let images: Vec<Tensor> = (0..4)
        .map(|i| {
            let mut r = Rand::seeded(1000 + i);
            r.tensor(Shape::d3(3, 96, 96), Init::Uniform { lo: -1.0, hi: 1.0 })
        })
        .collect();

    // Reference logits through the allocating path (before warmup so its
    // allocations stay outside the measured window).
    let oracles: Vec<Tensor> = images
        .iter()
        .map(|img| net.forward(img, Mode::Eval).expect("oracle forward"))
        .collect();

    // Warmup: one batch sizes the arena and the conv weight-matrix cache.
    let mut arena = InferScratch::new();
    for img in &images {
        net.forward_scratch(img, &mut arena).expect("warmup");
    }
    let warmed_grows = arena.grow_events();
    assert!(warmed_grows > 0, "warmup sized the arena");

    // Steady state: ≥3 batches through the same worker's scratch.
    let before = ALLOCS.load(Ordering::Relaxed);
    for batch in 0..3 {
        for (img, oracle) in images.iter().zip(&oracles) {
            net.forward_scratch(img, &mut arena).expect("steady state");
            // Output checked against the oracle bits — allocation-free
            // AND still correct, batch after batch.
            let out = arena.front().as_slice();
            assert_eq!(out.len(), oracle.len(), "batch {batch}");
            for (a, b) in out.iter().zip(oracle.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "batch {batch}");
            }
        }
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "steady-state inference performed {delta} heap allocations over 3 batches"
    );
    assert_eq!(
        arena.grow_events(),
        warmed_grows,
        "arena never regrew after warmup"
    );
}
