//! Pins the zero-allocation scratch inference path to the allocating
//! `Mode::Eval` forward, **bit for bit** — every byte-diffed artefact and
//! every `confidence_bits` verdict in the workspace depends on the two
//! paths being indistinguishable.

use relcnn_nn::scratch::{InferScratch, ScratchBuf};
use relcnn_nn::{
    alexnet, Conv2d, Dense, Dropout, Flatten, Layer, LocalResponseNorm, MaxPool2d, Mode, Network,
    NnError, ReLU,
};
use relcnn_tensor::init::{Init, Rand};
use relcnn_tensor::{Shape, Tensor};

fn assert_bit_identical(net: &mut Network, input: &Tensor, arena: &mut InferScratch) {
    let oracle = net.forward(input, Mode::Eval).expect("allocating forward");
    net.forward_scratch(input, arena).expect("scratch forward");
    assert_eq!(
        arena.front().dims(),
        oracle.shape().dims(),
        "output shape drift"
    );
    for (i, (a, b)) in arena
        .front()
        .as_slice()
        .iter()
        .zip(oracle.iter())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "output element {i}: scratch {a} vs oracle {b}"
        );
    }
}

#[test]
fn tiny_cnn_scratch_matches_eval_forward() {
    let mut rng = Rand::seeded(101);
    let mut net = alexnet::tiny_cnn(4, 32, &mut rng).unwrap();
    let mut arena = InferScratch::new();
    for seed in 0..6u64 {
        let mut r = Rand::seeded(seed);
        let img = r.tensor(Shape::d3(3, 32, 32), Init::Uniform { lo: -1.0, hi: 1.0 });
        assert_bit_identical(&mut net, &img, &mut arena);
    }
}

#[test]
fn alexnet_gtsrb_scratch_matches_eval_forward() {
    let mut rng = Rand::seeded(202);
    let mut net = alexnet::alexnet_gtsrb(8, 96, &mut rng).unwrap();
    let mut arena = InferScratch::new();
    for seed in 0..3u64 {
        let mut r = Rand::seeded(seed);
        let img = r.tensor(Shape::d3(3, 96, 96), Init::Uniform { lo: -1.0, hi: 1.0 });
        assert_bit_identical(&mut net, &img, &mut arena);
    }
}

#[test]
fn all_layer_kinds_scratch_match_including_lrn_and_padding() {
    // A network that touches every specialised `infer` impl: padded and
    // strided convolutions, LRN, overlapping pooling, dropout, dense.
    let mut rng = Rand::seeded(303);
    let mut net = Network::new();
    net.push(Conv2d::new(3, 6, 5, 2, 2, &mut rng)); // padded, strided
    net.push(ReLU::new());
    net.push(LocalResponseNorm::alexnet());
    net.push(MaxPool2d::new(3, 2)); // overlapping windows
    net.push(Conv2d::new(6, 4, 3, 1, 0, &mut rng)); // pad-free
    net.push(ReLU::new());
    net.push(Flatten::new());
    net.push(Dropout::new(0.4, &mut rng));
    // 17×17 → conv(5,s2,p2) 9×9 → pool(3,s2) 4×4 → conv(3,s1) 2×2.
    net.push(Dense::new(4 * 2 * 2, 5, &mut rng));
    let mut arena = InferScratch::new();
    for seed in 10..15u64 {
        let mut r = Rand::seeded(seed);
        let img = r.tensor(Shape::d3(3, 17, 17), Init::Uniform { lo: -2.0, hi: 2.0 });
        assert_bit_identical(&mut net, &img, &mut arena);
    }
}

#[test]
fn forward_from_scratch_matches_forward_from() {
    let mut rng = Rand::seeded(404);
    let mut net = alexnet::tiny_cnn(4, 32, &mut rng).unwrap();
    let mut r = Rand::seeded(7);
    let img = r.tensor(Shape::d3(3, 32, 32), Init::Uniform { lo: -1.0, hi: 1.0 });
    // Execute conv-1 through the allocating path, then resume the tail
    // both ways — the hybrid network's exact access pattern.
    let conv_out = {
        let conv = net.conv2d_at_mut(0).unwrap();
        conv.forward(&img, Mode::Eval).unwrap()
    };
    let oracle = net.forward_from(&conv_out, 1, Mode::Eval).unwrap();
    let mut arena = InferScratch::new();
    net.forward_from_scratch(&conv_out, 1, &mut arena).unwrap();
    for (a, b) in arena.front().as_slice().iter().zip(oracle.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    // Bounds checking carries over.
    assert!(net.forward_from_scratch(&img, 99, &mut arena).is_err());
    // start == len leaves the input untouched in the front buffer.
    net.forward_from_scratch(&conv_out, net.len(), &mut arena)
        .unwrap();
    for (a, b) in arena.front().as_slice().iter().zip(conv_out.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn default_infer_fallback_round_trips_through_forward() {
    /// A layer with no specialised `infer` — exercises the allocating
    /// trait-default fallback that keeps exotic layers correct.
    #[derive(Debug, Clone)]
    struct Scale(f32);

    impl Layer for Scale {
        fn name(&self) -> &'static str {
            "scale"
        }
        fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor, NnError> {
            Ok(input.map(|v| v * self.0))
        }
        fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
            Ok(grad_output.map(|v| v * self.0))
        }
        fn clone_box(&self) -> Box<dyn Layer> {
            Box::new(self.clone())
        }
    }

    let mut net = Network::new();
    net.push(Scale(2.5));
    net.push(ReLU::new());
    let mut r = Rand::seeded(11);
    let img = r.tensor(Shape::d3(2, 4, 4), Init::Uniform { lo: -1.0, hi: 1.0 });
    let mut arena = InferScratch::new();
    assert_bit_identical(&mut net, &img, &mut arena);
}

#[test]
fn arena_reuse_across_geometries_stays_bit_exact() {
    // One arena serving two different networks/geometries back and forth:
    // buffers shrink and regrow logically without corrupting results.
    let mut rng = Rand::seeded(505);
    let mut small = alexnet::tiny_cnn(4, 32, &mut rng).unwrap();
    let mut big = alexnet::alexnet_gtsrb(8, 96, &mut rng).unwrap();
    let mut arena = InferScratch::new();
    let mut r = Rand::seeded(1);
    let small_img = r.tensor(Shape::d3(3, 32, 32), Init::Uniform { lo: -1.0, hi: 1.0 });
    let big_img = r.tensor(Shape::d3(3, 96, 96), Init::Uniform { lo: -1.0, hi: 1.0 });
    for _ in 0..2 {
        assert_bit_identical(&mut big, &big_img, &mut arena);
        assert_bit_identical(&mut small, &small_img, &mut arena);
    }
    let warmed = arena.grow_events();
    assert_bit_identical(&mut big, &big_img, &mut arena);
    assert_eq!(arena.grow_events(), warmed, "arena warmed up: no regrowth");
}

#[test]
fn scratch_buf_is_reexported() {
    // The arena building block is public API for custom layer authors.
    let mut buf = ScratchBuf::new();
    buf.set_dims(&[3]).unwrap();
    assert_eq!(buf.as_slice(), &[0.0, 0.0, 0.0]);
}
