//! Filter freezing, pinning and drift measurement (paper §III-B).
//!
//! "We then begin pre-initializing one of the three-dimensional AlexNet
//! filters to Sobel filters and train the network keeping this
//! initialisation constant. In theory the training tool … offers the
//! ability to freeze a filter during training. In practice, after every
//! epoch or batch, the filter values are minimally changed … It can be
//! shown the (learnt) filter undergoes subtle changes in the intensity,
//! statistical and spatial frequency domains."
//!
//! Three regimes are reproduced:
//!
//! * [`FreezePolicy::GradMask`] — gradient masking only (TensorFlow-style
//!   "freeze"); weight decay still drifts the values, reproducing the
//!   paper's observation;
//! * [`FreezePolicy::PinEachBatch`] / [`FreezePolicy::PinEachEpoch`] —
//!   hard re-pinning after each batch/epoch ("re-set after every epoch or
//!   batch");
//! * [`FreezePolicy::None`] — the filter trains freely.
//!
//! [`FilterDrift`] quantifies the drift in the three domains the paper
//! names: intensity (mean), statistics (standard deviation) and spatial
//! frequency (gradient-energy ratio).

use crate::error::NnError;
use crate::network::Network;
use relcnn_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// When (if ever) a pinned filter is forcibly restored to its target
/// values during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FreezePolicy {
    /// No freezing: the filter trains like any other.
    None,
    /// Gradient masking only — the optimiser's weight decay still applies
    /// (the drift the paper observed in TensorFlow).
    GradMask,
    /// Gradient masking + restore the exact values after every batch.
    PinEachBatch,
    /// Gradient masking + restore the exact values after every epoch.
    PinEachEpoch,
}

/// A filter pinned to fixed values in one convolution layer.
#[derive(Debug, Clone)]
pub struct FilterPin {
    /// Index of the convolution layer within the network.
    pub layer: usize,
    /// Filter (output-channel) index within the layer.
    pub filter: usize,
    /// The `[in_c, k, k]` values the filter is pinned to.
    pub values: Tensor,
    /// The pinning regime.
    pub policy: FreezePolicy,
}

impl FilterPin {
    /// Creates a pin and applies the initial values + gradient mask to the
    /// network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if `layer` is not a convolution layer
    /// or the filter index/shape is invalid.
    pub fn install(
        net: &mut Network,
        layer: usize,
        filter: usize,
        values: Tensor,
        policy: FreezePolicy,
    ) -> Result<FilterPin, NnError> {
        let conv = net.conv2d_at_mut(layer).ok_or(NnError::BadInput {
            layer: "filter_pin",
            reason: format!("layer {layer} is not a Conv2d"),
        })?;
        conv.set_filter(filter, &values)?;
        if policy != FreezePolicy::None {
            conv.set_frozen(filter, true)?;
        }
        Ok(FilterPin {
            layer,
            filter,
            values,
            policy,
        })
    }

    /// Re-applies the pinned values (no-op unless the policy requires it
    /// at this boundary).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the network changed shape.
    pub fn after_batch(&self, net: &mut Network) -> Result<(), NnError> {
        if self.policy == FreezePolicy::PinEachBatch {
            self.restore(net)?;
        }
        Ok(())
    }

    /// Re-applies the pinned values at an epoch boundary.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the network changed shape.
    pub fn after_epoch(&self, net: &mut Network) -> Result<(), NnError> {
        if self.policy == FreezePolicy::PinEachEpoch || self.policy == FreezePolicy::PinEachBatch {
            self.restore(net)?;
        }
        Ok(())
    }

    /// Unconditionally restores the pinned values.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the network changed shape.
    pub fn restore(&self, net: &mut Network) -> Result<(), NnError> {
        let conv = net.conv2d_at_mut(self.layer).ok_or(NnError::BadInput {
            layer: "filter_pin",
            reason: format!("layer {} is not a Conv2d", self.layer),
        })?;
        conv.set_filter(self.filter, &self.values)
    }

    /// Measures how far the filter has drifted from its pinned values.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the network changed shape.
    pub fn drift(&self, net: &Network) -> Result<FilterDrift, NnError> {
        let conv = net.conv2d_at(self.layer).ok_or(NnError::BadInput {
            layer: "filter_pin",
            reason: format!("layer {} is not a Conv2d", self.layer),
        })?;
        let current = conv.filter(self.filter)?;
        Ok(FilterDrift::between(&self.values, &current))
    }
}

/// Drift of a filter in the three domains the paper names.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterDrift {
    /// Euclidean distance between the tensors.
    pub l2: f32,
    /// Intensity-domain drift: |Δ mean|.
    pub mean_shift: f32,
    /// Statistical-domain drift: |Δ standard deviation|.
    pub std_shift: f32,
    /// Spatial-frequency drift: |Δ gradient-energy fraction| where
    /// gradient energy is the squared first-difference sum along both
    /// spatial axes, normalised by total energy.
    pub highfreq_shift: f32,
}

impl FilterDrift {
    /// Measures drift between a reference filter and its current values
    /// (both `[c, k, k]`).
    pub fn between(reference: &Tensor, current: &Tensor) -> FilterDrift {
        let l2 = reference
            .iter()
            .zip(current.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        FilterDrift {
            l2,
            mean_shift: (reference.mean() - current.mean()).abs(),
            std_shift: (reference.std_dev() - current.std_dev()).abs(),
            highfreq_shift: (gradient_energy_fraction(reference)
                - gradient_energy_fraction(current))
            .abs(),
        }
    }

    /// Whether the filter is unchanged to within `tol` in every domain.
    pub fn is_unchanged(&self, tol: f32) -> bool {
        self.l2 <= tol
    }
}

/// Fraction of a `[c, k, k]` filter's energy in first differences — a
/// cheap spatial-frequency probe (high for edge-like filters, low for
/// blobs).
fn gradient_energy_fraction(filter: &Tensor) -> f32 {
    if filter.shape().rank() != 3 {
        return 0.0;
    }
    let (c, h, w) = (
        filter.shape().dim(0),
        filter.shape().dim(1),
        filter.shape().dim(2),
    );
    let x = filter.as_slice();
    let mut grad_energy = 0.0f32;
    for ch in 0..c {
        let base = ch * h * w;
        for y in 0..h {
            for xx in 0..w {
                let v = x[base + y * w + xx];
                if xx + 1 < w {
                    let d = x[base + y * w + xx + 1] - v;
                    grad_energy += d * d;
                }
                if y + 1 < h {
                    let d = x[base + (y + 1) * w + xx] - v;
                    grad_energy += d * d;
                }
            }
        }
    }
    let total: f32 = filter.norm_sq();
    if total <= f32::MIN_POSITIVE {
        0.0
    } else {
        grad_energy / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Mode};
    use relcnn_tensor::init::Rand;
    use relcnn_tensor::Shape;

    fn net_with_conv(rng: &mut Rand) -> Network {
        let mut net = Network::new();
        net.push(Conv2d::new(3, 4, 3, 1, 1, rng));
        net
    }

    fn sobel_values() -> Tensor {
        Tensor::from_fn(Shape::d3(3, 3, 3), |i| {
            [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]][i[1]][i[2]]
        })
    }

    #[test]
    fn install_sets_values_and_mask() {
        let mut rng = Rand::seeded(1);
        let mut net = net_with_conv(&mut rng);
        let pin =
            FilterPin::install(&mut net, 0, 2, sobel_values(), FreezePolicy::GradMask).unwrap();
        let conv = net.conv2d_at(0).unwrap();
        assert_eq!(conv.filter(2).unwrap(), sobel_values());
        assert!(conv.is_frozen(2));
        assert!(!conv.is_frozen(0));
        assert_eq!(pin.filter, 2);
    }

    #[test]
    fn policy_none_does_not_mask() {
        let mut rng = Rand::seeded(2);
        let mut net = net_with_conv(&mut rng);
        FilterPin::install(&mut net, 0, 1, sobel_values(), FreezePolicy::None).unwrap();
        assert!(!net.conv2d_at(0).unwrap().is_frozen(1));
    }

    #[test]
    fn install_validates() {
        let mut rng = Rand::seeded(3);
        let mut net = net_with_conv(&mut rng);
        assert!(
            FilterPin::install(&mut net, 5, 0, sobel_values(), FreezePolicy::GradMask).is_err()
        );
        assert!(
            FilterPin::install(&mut net, 0, 9, sobel_values(), FreezePolicy::GradMask).is_err()
        );
        let bad_shape = Tensor::zeros(Shape::d3(3, 2, 2));
        assert!(FilterPin::install(&mut net, 0, 0, bad_shape, FreezePolicy::GradMask).is_err());
    }

    #[test]
    fn pin_each_batch_restores_after_perturbation() {
        let mut rng = Rand::seeded(4);
        let mut net = net_with_conv(&mut rng);
        let pin =
            FilterPin::install(&mut net, 0, 0, sobel_values(), FreezePolicy::PinEachBatch).unwrap();
        // Simulate optimiser drift.
        let noisy = sobel_values().shift(0.01);
        net.conv2d_at_mut(0).unwrap().set_filter(0, &noisy).unwrap();
        assert!(pin.drift(&net).unwrap().l2 > 0.0);
        pin.after_batch(&mut net).unwrap();
        assert_eq!(pin.drift(&net).unwrap().l2, 0.0);
        // Epoch boundary also restores for batch policy.
        net.conv2d_at_mut(0).unwrap().set_filter(0, &noisy).unwrap();
        pin.after_epoch(&mut net).unwrap();
        assert_eq!(pin.drift(&net).unwrap().l2, 0.0);
    }

    #[test]
    fn pin_each_epoch_ignores_batch_boundary() {
        let mut rng = Rand::seeded(5);
        let mut net = net_with_conv(&mut rng);
        let pin =
            FilterPin::install(&mut net, 0, 0, sobel_values(), FreezePolicy::PinEachEpoch).unwrap();
        let noisy = sobel_values().shift(0.02);
        net.conv2d_at_mut(0).unwrap().set_filter(0, &noisy).unwrap();
        pin.after_batch(&mut net).unwrap();
        assert!(pin.drift(&net).unwrap().l2 > 0.0, "batch does not restore");
        pin.after_epoch(&mut net).unwrap();
        assert_eq!(pin.drift(&net).unwrap().l2, 0.0);
    }

    #[test]
    fn grad_mask_never_restores() {
        let mut rng = Rand::seeded(6);
        let mut net = net_with_conv(&mut rng);
        let pin =
            FilterPin::install(&mut net, 0, 0, sobel_values(), FreezePolicy::GradMask).unwrap();
        let noisy = sobel_values().scale(0.99);
        net.conv2d_at_mut(0).unwrap().set_filter(0, &noisy).unwrap();
        pin.after_batch(&mut net).unwrap();
        pin.after_epoch(&mut net).unwrap();
        assert!(
            pin.drift(&net).unwrap().l2 > 0.0,
            "grad-mask drift persists (the paper's TensorFlow observation)"
        );
    }

    #[test]
    fn drift_domains_behave() {
        let reference = sobel_values();
        // Intensity shift only.
        let shifted = reference.shift(0.5);
        let d = FilterDrift::between(&reference, &shifted);
        assert!(d.mean_shift > 0.49);
        assert!(d.std_shift < 1e-5, "shift does not change std");
        // Scale changes std but not the frequency fraction.
        let scaled = reference.scale(2.0);
        let d = FilterDrift::between(&reference, &scaled);
        assert!(d.std_shift > 0.0);
        assert!(d.highfreq_shift < 1e-5, "scaling is frequency-neutral");
        // Smoothing (constant filter) kills high frequency content.
        let flat = Tensor::full(Shape::d3(3, 3, 3), 0.5);
        let d = FilterDrift::between(&reference, &flat);
        assert!(d.highfreq_shift > 0.1);
        // Identity.
        let d = FilterDrift::between(&reference, &reference);
        assert!(d.is_unchanged(1e-9));
    }

    #[test]
    fn frozen_filter_survives_training_step_exactly_under_pin() {
        use crate::loss::CrossEntropyLoss;
        use crate::optim::{Sgd, SgdConfig};
        let mut rng = Rand::seeded(7);
        let mut net = Network::new();
        net.push(Conv2d::new(3, 4, 3, 2, 1, &mut rng));
        net.push(crate::layers::ReLU::new());
        net.push(crate::layers::Flatten::new());
        net.push(crate::layers::Dense::new(4 * 8 * 8, 3, &mut rng));
        let pin =
            FilterPin::install(&mut net, 0, 1, sobel_values(), FreezePolicy::PinEachBatch).unwrap();

        let x = rng.tensor(
            Shape::d3(3, 16, 16),
            relcnn_tensor::init::Init::Uniform { lo: 0.0, hi: 1.0 },
        );
        let loss = CrossEntropyLoss::new();
        // Weight decay ON: without pinning this would drift the filter.
        let mut sgd = Sgd::new(SgdConfig {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-2,
        });
        for _ in 0..3 {
            net.zero_grads();
            let logits = net.forward(&x, Mode::Train).unwrap();
            let (_, probs) = loss.forward(&logits, 0).unwrap();
            let g = loss.backward(&probs, 0).unwrap();
            net.backward(&g).unwrap();
            sgd.step(&mut net.params(), 1).unwrap();
            pin.after_batch(&mut net).unwrap();
        }
        assert_eq!(
            pin.drift(&net).unwrap().l2,
            0.0,
            "hard pinning keeps the filter bit-exact"
        );

        // Same setup under GradMask only: weight decay drifts it.
        let mut net2 = Network::new();
        net2.push(Conv2d::new(3, 4, 3, 2, 1, &mut rng));
        net2.push(crate::layers::ReLU::new());
        net2.push(crate::layers::Flatten::new());
        net2.push(crate::layers::Dense::new(4 * 8 * 8, 3, &mut rng));
        let pin2 =
            FilterPin::install(&mut net2, 0, 1, sobel_values(), FreezePolicy::GradMask).unwrap();
        let mut sgd2 = Sgd::new(SgdConfig {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-2,
        });
        for _ in 0..3 {
            net2.zero_grads();
            let logits = net2.forward(&x, Mode::Train).unwrap();
            let (_, probs) = loss.forward(&logits, 0).unwrap();
            let g = loss.backward(&probs, 0).unwrap();
            net2.backward(&g).unwrap();
            sgd2.step(&mut net2.params(), 1).unwrap();
            pin2.after_batch(&mut net2).unwrap();
        }
        let drift = pin2.drift(&net2).unwrap();
        assert!(
            drift.l2 > 0.0,
            "gradient-masked filter still drifts under weight decay (paper §III-B)"
        );
    }
}
