//! Model checkpointing: save/load a network's parameter state to disk.
//!
//! The Figure-4 sweep trains one model and then evaluates 96 filter
//! replacements against it; checkpointing lets the expensive training run
//! happen once. Format: a JSON manifest line (layer names, tensor count)
//! followed by the raw `RCNT` tensor records of `relcnn-tensor::serial`.

use crate::error::NnError;
use crate::network::Network;
use bytes::{Buf, BufMut, BytesMut};
use relcnn_tensor::serial::{from_bytes, to_bytes};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

#[derive(Debug, Serialize, Deserialize)]
struct Manifest {
    format: String,
    layer_names: Vec<String>,
    tensor_count: usize,
}

const FORMAT: &str = "relcnn-checkpoint-v1";

/// Serialises the network's parameters into a byte buffer.
pub fn to_checkpoint_bytes(net: &mut Network) -> Vec<u8> {
    let state = net.state();
    let manifest = Manifest {
        format: FORMAT.to_string(),
        layer_names: net.layer_names().iter().map(|s| s.to_string()).collect(),
        tensor_count: state.len(),
    };
    let manifest_json = serde_json::to_vec(&manifest).expect("manifest serialises");
    let mut buf = BytesMut::new();
    buf.put_u64_le(manifest_json.len() as u64);
    buf.put_slice(&manifest_json);
    for t in &state {
        buf.put_slice(&to_bytes(t));
    }
    buf.to_vec()
}

/// Restores parameters from a checkpoint buffer into a structurally
/// matching network.
///
/// # Errors
///
/// Returns [`NnError::Checkpoint`] for malformed buffers or structural
/// mismatches (different layers or tensor shapes).
pub fn load_checkpoint_bytes(net: &mut Network, bytes: &[u8]) -> Result<(), NnError> {
    let mut buf = bytes;
    if buf.remaining() < 8 {
        return Err(NnError::Checkpoint {
            reason: "truncated manifest header".into(),
        });
    }
    let manifest_len = buf.get_u64_le() as usize;
    if buf.remaining() < manifest_len {
        return Err(NnError::Checkpoint {
            reason: "truncated manifest".into(),
        });
    }
    let manifest: Manifest =
        serde_json::from_slice(&buf[..manifest_len]).map_err(|e| NnError::Checkpoint {
            reason: format!("manifest parse: {e}"),
        })?;
    buf.advance(manifest_len);
    if manifest.format != FORMAT {
        return Err(NnError::Checkpoint {
            reason: format!("unknown format {:?}", manifest.format),
        });
    }
    let names: Vec<String> = net.layer_names().iter().map(|s| s.to_string()).collect();
    if manifest.layer_names != names {
        return Err(NnError::Checkpoint {
            reason: format!(
                "layer mismatch: checkpoint {:?} vs network {:?}",
                manifest.layer_names, names
            ),
        });
    }
    let mut state = Vec::with_capacity(manifest.tensor_count);
    for i in 0..manifest.tensor_count {
        let t = from_bytes(&mut buf).map_err(|e| NnError::Checkpoint {
            reason: format!("tensor {i}: {e}"),
        })?;
        state.push(t);
    }
    net.load_state(&state)
}

/// Saves a checkpoint to a file.
///
/// # Errors
///
/// Returns [`NnError::Checkpoint`] on I/O failure.
pub fn save(net: &mut Network, path: impl AsRef<Path>) -> Result<(), NnError> {
    fs::write(path.as_ref(), to_checkpoint_bytes(net)).map_err(|e| NnError::Checkpoint {
        reason: format!("write {}: {e}", path.as_ref().display()),
    })
}

/// Loads a checkpoint from a file into a structurally matching network.
///
/// # Errors
///
/// Returns [`NnError::Checkpoint`] on I/O failure or structural mismatch.
pub fn load(net: &mut Network, path: impl AsRef<Path>) -> Result<(), NnError> {
    let bytes = fs::read(path.as_ref()).map_err(|e| NnError::Checkpoint {
        reason: format!("read {}: {e}", path.as_ref().display()),
    })?;
    load_checkpoint_bytes(net, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alexnet::tiny_cnn;
    use crate::layers::Mode;
    use relcnn_tensor::init::Rand;
    use relcnn_tensor::{Shape, Tensor};

    #[test]
    fn roundtrip_preserves_behaviour() {
        let mut rng = Rand::seeded(1);
        let mut net = tiny_cnn(4, 16, &mut rng).unwrap();
        let bytes = to_checkpoint_bytes(&mut net);

        let mut other = tiny_cnn(4, 16, &mut Rand::seeded(999)).unwrap();
        load_checkpoint_bytes(&mut other, &bytes).unwrap();

        let x = rng.tensor(
            Shape::d3(3, 16, 16),
            relcnn_tensor::init::Init::Uniform { lo: 0.0, hi: 1.0 },
        );
        let y1 = net.forward(&x, Mode::Eval).unwrap();
        let y2 = other.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn rejects_structural_mismatch() {
        let mut rng = Rand::seeded(2);
        let mut net = tiny_cnn(4, 16, &mut rng).unwrap();
        let bytes = to_checkpoint_bytes(&mut net);
        let mut different = tiny_cnn(5, 16, &mut rng).unwrap();
        assert!(matches!(
            load_checkpoint_bytes(&mut different, &bytes),
            Err(NnError::Checkpoint { .. })
        ));
    }

    #[test]
    fn rejects_corruption() {
        let mut rng = Rand::seeded(3);
        let mut net = tiny_cnn(4, 16, &mut rng).unwrap();
        let bytes = to_checkpoint_bytes(&mut net);
        // Truncations at various points.
        for cut in [0usize, 4, 12, bytes.len() / 2] {
            assert!(load_checkpoint_bytes(&mut net, &bytes[..cut]).is_err());
        }
        // Corrupted manifest.
        let mut bad = bytes.clone();
        bad[9] = b'X';
        assert!(load_checkpoint_bytes(&mut net, &bad).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("relcnn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.ckpt");
        let mut rng = Rand::seeded(4);
        let mut net = tiny_cnn(3, 16, &mut rng).unwrap();
        save(&mut net, &path).unwrap();
        let mut other = tiny_cnn(3, 16, &mut Rand::seeded(5)).unwrap();
        load(&mut other, &path).unwrap();
        let x = Tensor::zeros(Shape::d3(3, 16, 16));
        assert_eq!(
            net.forward(&x, Mode::Eval).unwrap(),
            other.forward(&x, Mode::Eval).unwrap()
        );
        std::fs::remove_file(&path).ok();
        assert!(load(&mut other, dir.join("missing.ckpt")).is_err());
    }
}
