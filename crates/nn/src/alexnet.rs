//! AlexNet architecture builders.
//!
//! Three variants:
//!
//! * [`alexnet_227`] — the full AlexNet of Krizhevsky et al. (paper
//!   reference \[51\]) for 227×227×3 inputs, exactly the network whose
//!   first convolution layer ("96 11×11×3 filters") the paper instruments.
//!   CPU-forwardable; training it is not attempted here.
//! * [`alexnet_gtsrb`] — the scaled, CPU-trainable variant used by the
//!   Figure-4 and confusion-matrix experiments. **Conv-1 is identical to
//!   AlexNet's** (96 filters, 11×11×3, stride 4) because conv-1 is what
//!   every experiment manipulates; the tail is shrunk to keep training on
//!   synthetic 96×96 GTSRB tractable in seconds.
//! * [`tiny_cnn`] — a minimal CNN for unit tests and doctests.

use crate::error::NnError;
use crate::layers::{Conv2d, Dense, Dropout, Flatten, LocalResponseNorm, MaxPool2d, ReLU};
use crate::network::Network;
use relcnn_tensor::init::Rand;

/// Number of first-layer filters in every AlexNet variant (the paper's
/// "96 feature maps by 96 11*11*3 filters").
pub const CONV1_FILTERS: usize = 96;

/// First-layer kernel size.
pub const CONV1_KERNEL: usize = 11;

/// First-layer stride.
pub const CONV1_STRIDE: usize = 4;

/// Computes the spatial output size of a conv/pool stage.
fn out_size(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    (input + 2 * padding - kernel) / stride + 1
}

/// Full AlexNet for `[3, 227, 227]` inputs.
///
/// Grouped convolutions of the original are implemented ungrouped (the
/// grouping was a dual-GPU memory workaround, not a modelling choice);
/// LRN uses the published constants.
///
/// # Errors
///
/// Returns [`NnError::BadTraining`] when `num_classes == 0`.
pub fn alexnet_227(num_classes: usize, rng: &mut Rand) -> Result<Network, NnError> {
    if num_classes == 0 {
        return Err(NnError::BadTraining {
            reason: "network needs at least one class".into(),
        });
    }
    let mut net = Network::new();
    net.push(Conv2d::new(
        3,
        CONV1_FILTERS,
        CONV1_KERNEL,
        CONV1_STRIDE,
        0,
        rng,
    )); // 96x55x55
    net.push(ReLU::new());
    net.push(LocalResponseNorm::alexnet());
    net.push(MaxPool2d::new(3, 2)); // 96x27x27
    net.push(Conv2d::new(96, 256, 5, 1, 2, rng)); // 256x27x27
    net.push(ReLU::new());
    net.push(LocalResponseNorm::alexnet());
    net.push(MaxPool2d::new(3, 2)); // 256x13x13
    net.push(Conv2d::new(256, 384, 3, 1, 1, rng)); // 384x13x13
    net.push(ReLU::new());
    net.push(Conv2d::new(384, 384, 3, 1, 1, rng)); // 384x13x13
    net.push(ReLU::new());
    net.push(Conv2d::new(384, 256, 3, 1, 1, rng)); // 256x13x13
    net.push(ReLU::new());
    net.push(MaxPool2d::new(3, 2)); // 256x6x6
    net.push(Flatten::new()); // 9216
    net.push(Dense::new(256 * 6 * 6, 4096, rng));
    net.push(ReLU::new());
    net.push(Dropout::new(0.5, rng));
    net.push(Dense::new(4096, 4096, rng));
    net.push(ReLU::new());
    net.push(Dropout::new(0.5, rng));
    net.push(Dense::new(4096, num_classes, rng));
    Ok(net)
}

/// Scaled AlexNet for `[3, input_size, input_size]` synthetic-GTSRB inputs
/// (default experiments use 96×96). Conv-1 matches full AlexNet exactly.
///
/// # Errors
///
/// Returns [`NnError::BadTraining`] when `num_classes == 0` or the input
/// is too small for the conv-1 geometry.
pub fn alexnet_gtsrb(
    num_classes: usize,
    input_size: usize,
    rng: &mut Rand,
) -> Result<Network, NnError> {
    if num_classes == 0 {
        return Err(NnError::BadTraining {
            reason: "network needs at least one class".into(),
        });
    }
    if input_size < 32 {
        return Err(NnError::BadTraining {
            reason: format!("input size {input_size} too small for 11x11 stride-4 conv"),
        });
    }
    let c1 = out_size(input_size, CONV1_KERNEL, CONV1_STRIDE, 0); // 96 -> 22
    let p1 = out_size(c1, 3, 2, 0); // 22 -> 10
    let c2 = out_size(p1, 3, 1, 1); // 10 -> 10
    let p2 = out_size(c2, 2, 2, 0); // 10 -> 5
    let flat = 64 * p2 * p2;

    let mut net = Network::new();
    net.push(Conv2d::new(
        3,
        CONV1_FILTERS,
        CONV1_KERNEL,
        CONV1_STRIDE,
        0,
        rng,
    ));
    net.push(ReLU::new());
    net.push(MaxPool2d::new(3, 2));
    net.push(Conv2d::new(CONV1_FILTERS, 64, 3, 1, 1, rng));
    net.push(ReLU::new());
    net.push(MaxPool2d::new(2, 2));
    net.push(Flatten::new());
    net.push(Dense::new(flat, 128, rng));
    net.push(ReLU::new());
    net.push(Dropout::new(0.3, rng));
    net.push(Dense::new(128, num_classes, rng));
    Ok(net)
}

/// Minimal CNN (8 3×3 filters, one dense head) for tests and doctests.
///
/// # Errors
///
/// Returns [`NnError::BadTraining`] when `num_classes == 0` or
/// `input_size < 8`.
pub fn tiny_cnn(num_classes: usize, input_size: usize, rng: &mut Rand) -> Result<Network, NnError> {
    if num_classes == 0 {
        return Err(NnError::BadTraining {
            reason: "network needs at least one class".into(),
        });
    }
    if input_size < 8 {
        return Err(NnError::BadTraining {
            reason: format!("input size {input_size} too small"),
        });
    }
    let c1 = out_size(input_size, 3, 2, 1);
    let p1 = out_size(c1, 2, 2, 0);
    let mut net = Network::new();
    net.push(Conv2d::new(3, 8, 3, 2, 1, rng));
    net.push(ReLU::new());
    net.push(MaxPool2d::new(2, 2));
    net.push(Flatten::new());
    net.push(Dense::new(8 * p1 * p1, num_classes, rng));
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Mode;
    use relcnn_tensor::{Shape, Tensor};

    #[test]
    fn alexnet_227_forward_shape() {
        let mut rng = Rand::seeded(0);
        let mut net = alexnet_227(43, &mut rng).unwrap();
        // Forward one image through the full network: the expensive part
        // is conv2 (256x27x27x96x25 ≈ 450M MACs) — acceptable once.
        let x = Tensor::zeros(Shape::d3(3, 227, 227));
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[43]);
        // Conv-1 is the paper's: 96 filters of 11x11x3 stride 4.
        let conv1 = net.conv2d_at(0).unwrap();
        assert_eq!(conv1.out_channels(), 96);
        assert_eq!(conv1.kernel_size(), 11);
        assert_eq!(conv1.stride(), 4);
        assert_eq!(conv1.filters().shape().dims(), &[96, 3, 11, 11]);
    }

    #[test]
    fn alexnet_227_param_count_plausible() {
        let mut rng = Rand::seeded(1);
        let mut net = alexnet_227(1000, &mut rng).unwrap();
        let count = net.param_count();
        // Ungrouped AlexNet ≈ 62.4M parameters at 1000 classes.
        assert!(
            (55_000_000..70_000_000).contains(&count),
            "param count {count}"
        );
    }

    #[test]
    fn alexnet_gtsrb_trains_shape_and_conv1_identity() {
        let mut rng = Rand::seeded(2);
        let mut net = alexnet_gtsrb(8, 96, &mut rng).unwrap();
        let x = Tensor::zeros(Shape::d3(3, 96, 96));
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[8]);
        let conv1 = net.conv2d_at(0).unwrap();
        assert_eq!(
            (
                conv1.out_channels(),
                conv1.kernel_size(),
                conv1.stride(),
                conv1.in_channels()
            ),
            (96, 11, 4, 3),
            "conv-1 must match full AlexNet"
        );
    }

    #[test]
    fn gtsrb_variant_backward_works() {
        let mut rng = Rand::seeded(3);
        let mut net = alexnet_gtsrb(4, 48, &mut rng).unwrap();
        let x = Tensor::zeros(Shape::d3(3, 48, 48));
        let y = net.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(y.shape().clone());
        net.backward(&g).unwrap();
    }

    #[test]
    fn tiny_cnn_works() {
        let mut rng = Rand::seeded(4);
        let mut net = tiny_cnn(4, 16, &mut rng).unwrap();
        let x = Tensor::zeros(Shape::d3(3, 16, 16));
        assert_eq!(net.forward(&x, Mode::Eval).unwrap().len(), 4);
    }

    #[test]
    fn builders_validate() {
        let mut rng = Rand::seeded(5);
        assert!(alexnet_227(0, &mut rng).is_err());
        assert!(alexnet_gtsrb(0, 96, &mut rng).is_err());
        assert!(alexnet_gtsrb(8, 16, &mut rng).is_err());
        assert!(tiny_cnn(0, 16, &mut rng).is_err());
        assert!(tiny_cnn(4, 4, &mut rng).is_err());
    }

    #[test]
    fn out_size_formula() {
        assert_eq!(out_size(227, 11, 4, 0), 55);
        assert_eq!(out_size(96, 11, 4, 0), 22);
        assert_eq!(out_size(22, 3, 2, 0), 10);
    }
}
