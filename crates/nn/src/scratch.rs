//! Reusable per-worker scratch arenas for the zero-allocation inference
//! path.
//!
//! The training path allocates freely — every `forward` returns a fresh
//! [`Tensor`] — but steady-state inference runs the same geometry over and
//! over, so all of its buffers can be sized once and recycled. A
//! [`ScratchBuf`] is a growable flat `f32` buffer with explicit dims; an
//! [`InferScratch`] bundles the three buffers one forward pass needs:
//!
//! * **ping/pong** — activation buffers. Each layer reads the *front*
//!   buffer and writes the *back* buffer; the arena swaps them between
//!   layers, so the whole network runs in two buffers regardless of depth.
//! * **cols** — the im2col lowering buffer shared by every convolution.
//!
//! Buffers only ever grow (`grow_events` counts how often), so after a
//! warmup pass through the largest geometry, inference performs **zero
//! heap allocations per image** — pinned by the `zero_alloc` integration
//! test with a counting global allocator.
//!
//! Cloning an [`InferScratch`] yields a *fresh, empty* arena: the runtime
//! hands each worker its own clone of a network, and sharing scratch
//! memory across workers would be both a data race and a cache-line
//! pessimisation. The clone re-warms on its first image.

use crate::error::NnError;
use relcnn_tensor::{Shape, Tensor};

/// Maximum tensor rank a scratch buffer can describe.
pub const MAX_SCRATCH_RANK: usize = 4;

/// A growable flat buffer with explicit dimensions — a [`Tensor`] without
/// the allocation-per-op lifecycle.
#[derive(Debug, Default)]
pub struct ScratchBuf {
    data: Vec<f32>,
    dims: [usize; MAX_SCRATCH_RANK],
    rank: usize,
    grows: u64,
}

impl ScratchBuf {
    /// Creates an empty buffer (rank 0, no backing storage).
    pub fn new() -> Self {
        ScratchBuf::default()
    }

    /// Sets the logical dims, growing the backing storage if (and only
    /// if) the new volume exceeds what has ever been requested. Shrinking
    /// dims never releases memory — that is the whole point.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] for rank 0 or rank >
    /// [`MAX_SCRATCH_RANK`].
    pub fn set_dims(&mut self, dims: &[usize]) -> Result<(), NnError> {
        if dims.is_empty() || dims.len() > MAX_SCRATCH_RANK {
            return Err(NnError::BadInput {
                layer: "scratch",
                reason: format!("unsupported scratch rank {}", dims.len()),
            });
        }
        let volume: usize = dims.iter().product();
        if volume > self.data.len() {
            self.data.resize(volume, 0.0);
            self.grows += 1;
        }
        self.dims[..dims.len()].copy_from_slice(dims);
        self.rank = dims.len();
        Ok(())
    }

    /// The current logical dims.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Product of the current dims (0 for a never-sized buffer).
    pub fn volume(&self) -> usize {
        if self.rank == 0 {
            0
        } else {
            self.dims().iter().product()
        }
    }

    /// The live elements (the first `volume()` of the backing storage).
    pub fn as_slice(&self) -> &[f32] {
        &self.data[..self.volume()]
    }

    /// Mutable view of the live elements.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        let volume = self.volume();
        &mut self.data[..volume]
    }

    /// How many times the backing storage has grown — stable after
    /// warmup, which is what the zero-allocation test asserts.
    pub fn grow_events(&self) -> u64 {
        self.grows
    }

    /// Copies a tensor's shape and contents in.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] for unsupported ranks.
    pub fn copy_from_tensor(&mut self, t: &Tensor) -> Result<(), NnError> {
        self.set_dims(t.shape().dims())?;
        self.as_mut_slice().copy_from_slice(t.as_slice());
        Ok(())
    }

    /// Materialises the live contents as an owned [`Tensor`] — the
    /// allocating escape hatch used by the default [`Layer::infer`]
    /// fallback, never by the specialised hot-path kernels.
    ///
    /// [`Layer::infer`]: crate::Layer::infer
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the buffer was never sized.
    pub fn to_tensor(&self) -> Result<Tensor, NnError> {
        if self.rank == 0 {
            return Err(NnError::BadInput {
                layer: "scratch",
                reason: "scratch buffer has no dims".into(),
            });
        }
        Ok(Tensor::from_vec(
            Shape::new(self.dims().to_vec()),
            self.as_slice().to_vec(),
        )?)
    }
}

/// The per-worker inference arena: two activation buffers run the whole
/// network ping-pong style, plus one im2col buffer shared by every
/// convolution layer.
#[derive(Debug, Default)]
pub struct InferScratch {
    ping: ScratchBuf,
    pong: ScratchBuf,
    cols: ScratchBuf,
    front_is_ping: bool,
}

impl Clone for InferScratch {
    /// A cloned arena starts fresh: scratch memory is per-worker by
    /// construction, so the clone re-warms on its first image instead of
    /// copying another worker's buffers.
    fn clone(&self) -> Self {
        InferScratch::default()
    }
}

impl InferScratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        InferScratch::default()
    }

    /// Loads the network input into the front buffer, resetting the
    /// ping-pong orientation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] for unsupported input ranks.
    pub fn load_input(&mut self, input: &Tensor) -> Result<(), NnError> {
        self.front_is_ping = true;
        self.ping.copy_from_tensor(input)
    }

    /// Splits the arena into `(front, back, cols)` for one layer step:
    /// the layer reads `front`, writes `back`, and may use `cols` as
    /// lowering scratch.
    pub fn frames(&mut self) -> (&ScratchBuf, &mut ScratchBuf, &mut ScratchBuf) {
        if self.front_is_ping {
            (&self.ping, &mut self.pong, &mut self.cols)
        } else {
            (&self.pong, &mut self.ping, &mut self.cols)
        }
    }

    /// Makes the buffer just written the new front.
    pub fn swap(&mut self) {
        self.front_is_ping = !self.front_is_ping;
    }

    /// The front buffer — after a full forward pass, the network output.
    pub fn front(&self) -> &ScratchBuf {
        if self.front_is_ping {
            &self.ping
        } else {
            &self.pong
        }
    }

    /// Applies softmax to the front buffer in place and returns the
    /// resulting probabilities — bit-identical to
    /// [`softmax`](crate::loss::softmax) of the same logits.
    pub fn softmax_front(&mut self) -> &[f32] {
        let front = if self.front_is_ping {
            &mut self.ping
        } else {
            &mut self.pong
        };
        crate::loss::softmax_in_place(front.as_mut_slice());
        front.as_slice()
    }

    /// Total grow events across all buffers — stable once warmed up.
    pub fn grow_events(&self) -> u64 {
        self.ping.grow_events() + self.pong.grow_events() + self.cols.grow_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_buf_grows_monotonically() {
        let mut buf = ScratchBuf::new();
        assert_eq!(buf.volume(), 0);
        buf.set_dims(&[2, 3]).unwrap();
        assert_eq!(buf.grow_events(), 1);
        assert_eq!(buf.dims(), &[2, 3]);
        assert_eq!(buf.as_slice().len(), 6);
        // Shrinking keeps the storage; regrowing within it is free.
        buf.set_dims(&[4]).unwrap();
        assert_eq!(buf.grow_events(), 1);
        assert_eq!(buf.volume(), 4);
        buf.set_dims(&[2, 3]).unwrap();
        assert_eq!(buf.grow_events(), 1);
        // Growing past the high-water mark counts.
        buf.set_dims(&[2, 3, 4]).unwrap();
        assert_eq!(buf.grow_events(), 2);
    }

    #[test]
    fn scratch_buf_rejects_bad_ranks() {
        let mut buf = ScratchBuf::new();
        assert!(buf.set_dims(&[]).is_err());
        assert!(buf.set_dims(&[1, 1, 1, 1, 1]).is_err());
        assert!(buf.to_tensor().is_err());
    }

    #[test]
    fn tensor_roundtrip_preserves_bits() {
        let t = Tensor::from_vec(
            Shape::d2(2, 2),
            vec![1.5, f32::NAN, f32::NEG_INFINITY, -0.0],
        )
        .unwrap();
        let mut buf = ScratchBuf::new();
        buf.copy_from_tensor(&t).unwrap();
        let back = buf.to_tensor().unwrap();
        assert_eq!(back.shape(), t.shape());
        for (a, b) in back.iter().zip(t.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn ping_pong_swaps_and_clone_is_fresh() {
        let mut arena = InferScratch::new();
        let t = Tensor::from_vec(Shape::d1(3), vec![1.0, 2.0, 3.0]).unwrap();
        arena.load_input(&t).unwrap();
        assert_eq!(arena.front().as_slice(), &[1.0, 2.0, 3.0]);
        {
            let (front, back, _cols) = arena.frames();
            back.set_dims(front.dims()).unwrap();
            for (o, &v) in back.as_mut_slice().iter_mut().zip(front.as_slice()) {
                *o = v * 2.0;
            }
        }
        arena.swap();
        assert_eq!(arena.front().as_slice(), &[2.0, 4.0, 6.0]);
        assert!(arena.grow_events() > 0);
        let fresh = arena.clone();
        assert_eq!(fresh.grow_events(), 0, "clone starts empty");
        assert_eq!(fresh.front().volume(), 0);
    }

    #[test]
    fn softmax_front_matches_loss_softmax() {
        let logits = Tensor::from_vec(Shape::d1(4), vec![0.5, -1.25, 3.0, 0.5]).unwrap();
        let oracle = crate::loss::softmax(&logits);
        let mut arena = InferScratch::new();
        arena.load_input(&logits).unwrap();
        let probs = arena.softmax_front();
        for (a, b) in probs.iter().zip(oracle.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
