use crate::error::NnError;
use crate::layers::{Conv2d, Layer, Mode, Param};
use crate::loss::softmax;
use crate::scratch::InferScratch;
use relcnn_tensor::Tensor;

/// A sequential network: layers applied in order, single-sample tensors.
#[derive(Debug)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl Clone for Network {
    fn clone(&self) -> Self {
        Network {
            layers: self.layers.iter().map(|l| l.clone_box()).collect(),
        }
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the forward pass.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Runs the backward pass from an output gradient, accumulating
    /// parameter gradients; returns the input gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] if no training-mode forward
    /// preceded this call.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Runs the forward pass starting at layer `start` — used by the
    /// hybrid network, which executes the layers before `start` through
    /// the *reliable* path and hands the feature maps back to the
    /// unprotected remainder (Figure 2's bifurcation point).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when `start > len()`; propagates
    /// layer shape errors.
    pub fn forward_from(
        &mut self,
        input: &Tensor,
        start: usize,
        mode: Mode,
    ) -> Result<Tensor, NnError> {
        if start > self.layers.len() {
            return Err(NnError::BadInput {
                layer: "network",
                reason: format!("start layer {start} > {} layers", self.layers.len()),
            });
        }
        let mut x = input.clone();
        for layer in &mut self.layers[start..] {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Runs the zero-allocation inference forward pass through a
    /// reusable scratch arena. After the call, `scratch.front()` holds
    /// the network output — **bit-identical** to
    /// `forward(input, Mode::Eval)`, pinned by the `scratch_parity`
    /// integration tests. After a warmup pass sized the arena, repeated
    /// calls perform zero heap allocations.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_scratch(
        &mut self,
        input: &Tensor,
        scratch: &mut InferScratch,
    ) -> Result<(), NnError> {
        self.forward_from_scratch(input, 0, scratch)
    }

    /// Scratch-arena variant of [`Network::forward_from`] — the hybrid
    /// network's tail executes through this after the reliable partition.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when `start > len()`; propagates
    /// layer shape errors.
    pub fn forward_from_scratch(
        &mut self,
        input: &Tensor,
        start: usize,
        scratch: &mut InferScratch,
    ) -> Result<(), NnError> {
        if start > self.layers.len() {
            return Err(NnError::BadInput {
                layer: "network",
                reason: format!("start layer {start} > {} layers", self.layers.len()),
            });
        }
        scratch.load_input(input)?;
        for layer in &mut self.layers[start..] {
            let (front, back, cols) = scratch.frames();
            layer.infer(front, back, cols)?;
            scratch.swap();
        }
        Ok(())
    }

    /// Runs the forward pass, returning every layer's output (the input
    /// to layer `i+1`) — used by activation-range calibration and by
    /// debugging tools.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_trace(&mut self, input: &Tensor, mode: Mode) -> Result<Vec<Tensor>, NnError> {
        let mut outs = Vec::with_capacity(self.layers.len());
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
            outs.push(x.clone());
        }
        Ok(outs)
    }

    /// Softmax class probabilities for one input (inference mode).
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn predict(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let logits = self.forward(input, Mode::Eval)?;
        Ok(softmax(&logits))
    }

    /// The predicted class index for one input.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors; errors on empty outputs.
    pub fn classify(&mut self, input: &Tensor) -> Result<usize, NnError> {
        let logits = self.forward(input, Mode::Eval)?;
        logits.argmax().ok_or(NnError::BadInput {
            layer: "network",
            reason: "empty output layer".into(),
        })
    }

    /// All learnable parameters across layers.
    pub fn params(&mut self) -> Vec<Param<'_>> {
        self.layers.iter_mut().flat_map(|l| l.params()).collect()
    }

    /// Total learnable scalar count.
    pub fn param_count(&mut self) -> usize {
        self.params().iter().map(|p| p.value.len()).sum()
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Layer names in order (for summaries and checkpoints).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Borrows the `idx`-th layer as a [`Conv2d`], if it is one — the hook
    /// the filter-replacement workflow uses to reach conv-1.
    pub fn conv2d_at(&self, idx: usize) -> Option<&Conv2d> {
        self.layers.get(idx).and_then(|l| l.as_conv2d())
    }

    /// Mutable variant of [`Network::conv2d_at`].
    pub fn conv2d_at_mut(&mut self, idx: usize) -> Option<&mut Conv2d> {
        self.layers.get_mut(idx).and_then(|l| l.as_conv2d_mut())
    }

    /// Index of the first convolution layer, if any.
    pub fn first_conv_index(&self) -> Option<usize> {
        self.layers.iter().position(|l| l.as_conv2d().is_some())
    }

    /// Copies all parameter tensors out (checkpoint state).
    pub fn state(&mut self) -> Vec<Tensor> {
        self.params().iter().map(|p| p.value.clone()).collect()
    }

    /// Loads parameter tensors produced by [`Network::state`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Checkpoint`] on count or shape mismatch.
    pub fn load_state(&mut self, state: &[Tensor]) -> Result<(), NnError> {
        let mut params = self.params();
        if params.len() != state.len() {
            return Err(NnError::Checkpoint {
                reason: format!(
                    "state has {} tensors, network has {} parameters",
                    state.len(),
                    params.len()
                ),
            });
        }
        for (p, s) in params.iter_mut().zip(state.iter()) {
            if p.value.shape() != s.shape() {
                return Err(NnError::Checkpoint {
                    reason: format!(
                        "shape mismatch for {}: {} vs {}",
                        p.name,
                        p.value.shape(),
                        s.shape()
                    ),
                });
            }
            *p.value = s.clone();
        }
        Ok(())
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten, ReLU};
    use crate::loss::CrossEntropyLoss;
    use relcnn_tensor::init::{Init, Rand};
    use relcnn_tensor::Shape;

    fn tiny_net(rng: &mut Rand) -> Network {
        let mut net = Network::new();
        net.push(Flatten::new());
        net.push(Dense::new(8, 6, rng));
        net.push(ReLU::new());
        net.push(Dense::new(6, 3, rng));
        net
    }

    #[test]
    fn forward_shapes_compose() {
        let mut rng = Rand::seeded(1);
        let mut net = tiny_net(&mut rng);
        let x = rng.tensor(Shape::d3(2, 2, 2), Init::Uniform { lo: -1.0, hi: 1.0 });
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[3]);
        assert_eq!(net.len(), 4);
        assert!(!net.is_empty());
        assert_eq!(net.layer_names(), vec!["flatten", "dense", "relu", "dense"]);
    }

    #[test]
    fn forward_from_matches_split_execution() {
        let mut rng = Rand::seeded(21);
        let mut net = tiny_net(&mut rng);
        let x = rng.tensor(Shape::d3(2, 2, 2), Init::Uniform { lo: -1.0, hi: 1.0 });
        let full = net.forward(&x, Mode::Eval).unwrap();
        // Execute layer 0 manually, then resume from layer 1.
        let mid = net.forward_from(&x, 0, Mode::Eval).unwrap();
        assert_eq!(mid, full);
        let after_flatten = x.reshape(vec![8]).unwrap();
        let resumed = net.forward_from(&after_flatten, 1, Mode::Eval).unwrap();
        assert_eq!(resumed, full);
        assert!(net.forward_from(&x, 9, Mode::Eval).is_err());
        // start == len is identity.
        let id = net.forward_from(&x, 4, Mode::Eval).unwrap();
        assert_eq!(id, x);
    }

    #[test]
    fn predict_gives_probabilities() {
        let mut rng = Rand::seeded(2);
        let mut net = tiny_net(&mut rng);
        let x = rng.tensor(Shape::d3(2, 2, 2), Init::Uniform { lo: -1.0, hi: 1.0 });
        let p = net.predict(&x).unwrap();
        assert!((p.sum() - 1.0).abs() < 1e-5);
        let c = net.classify(&x).unwrap();
        assert_eq!(Some(c), p.argmax());
    }

    #[test]
    fn param_count_and_state_roundtrip() {
        let mut rng = Rand::seeded(3);
        let mut net = tiny_net(&mut rng);
        // dense(8->6): 48+6, dense(6->3): 18+3 = 75.
        assert_eq!(net.param_count(), 75);
        let state = net.state();
        let mut net2 = tiny_net(&mut Rand::seeded(99));
        net2.load_state(&state).unwrap();
        let x = rng.tensor(Shape::d3(2, 2, 2), Init::Uniform { lo: -1.0, hi: 1.0 });
        let y1 = net.forward(&x, Mode::Eval).unwrap();
        let y2 = net2.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn load_state_validates() {
        let mut rng = Rand::seeded(4);
        let mut net = tiny_net(&mut rng);
        assert!(net.load_state(&[]).is_err());
        let mut bad = net.state();
        bad[0] = Tensor::zeros(Shape::d1(5));
        assert!(net.load_state(&bad).is_err());
    }

    #[test]
    fn one_sgd_like_step_reduces_loss() {
        // End-to-end sanity: manual gradient step on one sample.
        let mut rng = Rand::seeded(5);
        let mut net = tiny_net(&mut rng);
        let x = rng.tensor(Shape::d3(2, 2, 2), Init::Uniform { lo: -1.0, hi: 1.0 });
        let target = 1usize;
        let loss = CrossEntropyLoss::new();

        let logits = net.forward(&x, Mode::Train).unwrap();
        let (l0, probs) = loss.forward(&logits, target).unwrap();
        net.zero_grads();
        let g = loss.backward(&probs, target).unwrap();
        net.backward(&g).unwrap();
        for p in net.params() {
            for (v, gr) in p.value.iter_mut().zip(p.grad.iter()) {
                *v -= 0.1 * gr;
            }
        }
        let logits = net.forward(&x, Mode::Eval).unwrap();
        let (l1, _) = loss.forward(&logits, target).unwrap();
        assert!(l1 < l0, "loss must drop: {l0} -> {l1}");
    }

    #[test]
    fn conv_lookup_helpers() {
        let mut rng = Rand::seeded(6);
        let mut net = Network::new();
        net.push(crate::layers::Conv2d::new(3, 4, 3, 1, 1, &mut rng));
        net.push(ReLU::new());
        assert_eq!(net.first_conv_index(), Some(0));
        assert!(net.conv2d_at(0).is_some());
        assert!(net.conv2d_at(1).is_none());
        assert!(net.conv2d_at_mut(0).is_some());
        let mut no_conv = tiny_net(&mut rng);
        assert_eq!(no_conv.first_conv_index(), None);
        let _ = no_conv.params();
    }
}
