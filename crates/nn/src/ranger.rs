//! Activation-range supervision — the "caging" baseline (paper §II-D,
//! reference \[28\]: Geissler et al., *Towards a Safety Case for Hardware
//! Fault Tolerance in CNNs Using Activation Range Supervision*).
//!
//! "Another caging variant checks the outputs of operations and if they
//! are larger or smaller than some preset and operation specific
//! saturation limit, the output saturates to that value. Whilst this
//! approach preserves computing power vis a vis redundant execution, the
//! required memory bandwidth is substantially increased."
//!
//! This module implements that comparator so the repository can measure
//! the trade the paper describes: range supervision is nearly free
//! computationally but only *masks* out-of-range corruption — in-range
//! corruption passes silently, whereas the paper's qualified operations
//! detect any single-replica corruption regardless of magnitude.

use crate::error::NnError;
use crate::layers::Mode;
use crate::network::Network;
use relcnn_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Per-tensor saturation bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationRange {
    /// Lower saturation limit.
    pub min: f32,
    /// Upper saturation limit.
    pub max: f32,
}

impl ActivationRange {
    /// Fits the range of one tensor.
    pub fn of(tensor: &Tensor) -> ActivationRange {
        ActivationRange {
            min: tensor.min(),
            max: tensor.max(),
        }
    }

    /// Widens to cover another tensor.
    pub fn absorb(&mut self, tensor: &Tensor) {
        self.min = self.min.min(tensor.min());
        self.max = self.max.max(tensor.max());
    }

    /// Expands both bounds by a relative safety margin (e.g. `0.1` for
    /// ±10% of the range width), so calibration-set extremes do not
    /// saturate legitimate inference activations.
    pub fn with_margin(mut self, fraction: f32) -> ActivationRange {
        let width = (self.max - self.min).max(f32::MIN_POSITIVE);
        self.min -= width * fraction;
        self.max += width * fraction;
        self
    }

    /// Saturates one value into the range, reporting whether it was out
    /// of bounds.
    pub fn clamp_value(&self, v: f32) -> (f32, bool) {
        if v < self.min {
            (self.min, true)
        } else if v > self.max {
            (self.max, true)
        } else if v.is_nan() {
            // NaN from an exponent-field upset: saturate to the midpoint.
            (0.5 * (self.min + self.max), true)
        } else {
            (v, false)
        }
    }
}

/// Result of supervising one tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedTensor {
    /// The saturated tensor.
    pub tensor: Tensor,
    /// Number of out-of-range (clamped) elements.
    pub violations: usize,
}

/// A fitted range supervisor for the output of one network layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeSupervisor {
    ranges: Vec<ActivationRange>,
}

impl RangeSupervisor {
    /// Calibrates per-layer output ranges over a calibration set —
    /// the "additional workflow step to determine the output bounding
    /// set" the paper notes both caging and its own approach require.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadTraining`] for an empty calibration set and
    /// propagates forward-pass errors.
    pub fn fit(
        net: &mut Network,
        calibration: &[Tensor],
        margin: f32,
    ) -> Result<RangeSupervisor, NnError> {
        let first = calibration.first().ok_or(NnError::BadTraining {
            reason: "empty calibration set".into(),
        })?;
        let mut ranges: Vec<ActivationRange> = net
            .forward_trace(first, Mode::Eval)?
            .iter()
            .map(ActivationRange::of)
            .collect();
        for sample in &calibration[1..] {
            for (range, out) in ranges
                .iter_mut()
                .zip(net.forward_trace(sample, Mode::Eval)?.iter())
            {
                range.absorb(out);
            }
        }
        for r in &mut ranges {
            *r = r.with_margin(margin);
        }
        Ok(RangeSupervisor { ranges })
    }

    /// The fitted per-layer ranges.
    pub fn ranges(&self) -> &[ActivationRange] {
        &self.ranges
    }

    /// Saturates a layer output against its fitted range.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] for an out-of-range layer index.
    pub fn supervise(&self, layer: usize, output: &Tensor) -> Result<SupervisedTensor, NnError> {
        let range = self.ranges.get(layer).ok_or(NnError::BadInput {
            layer: "range_supervisor",
            reason: format!("layer {layer} beyond fitted {} layers", self.ranges.len()),
        })?;
        let mut violations = 0usize;
        let data = output
            .iter()
            .map(|&v| {
                let (c, hit) = range.clamp_value(v);
                if hit {
                    violations += 1;
                }
                c
            })
            .collect();
        Ok(SupervisedTensor {
            tensor: Tensor::from_vec(output.shape().clone(), data)?,
            violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alexnet::tiny_cnn;
    use relcnn_tensor::init::{Init, Rand};
    use relcnn_tensor::Shape;

    fn calibration(rng: &mut Rand, n: usize) -> Vec<Tensor> {
        (0..n)
            .map(|_| rng.tensor(Shape::d3(3, 16, 16), Init::Uniform { lo: 0.0, hi: 1.0 }))
            .collect()
    }

    #[test]
    fn range_fitting_and_margin() {
        let t = Tensor::from_vec(Shape::d1(4), vec![-1.0, 0.0, 2.0, 1.0]).unwrap();
        let mut r = ActivationRange::of(&t);
        assert_eq!((r.min, r.max), (-1.0, 2.0));
        let t2 = Tensor::from_vec(Shape::d1(2), vec![-3.0, 0.5]).unwrap();
        r.absorb(&t2);
        assert_eq!((r.min, r.max), (-3.0, 2.0));
        let wide = r.with_margin(0.1);
        assert!(wide.min < -3.0 && wide.max > 2.0);
    }

    #[test]
    fn clamp_value_semantics() {
        let r = ActivationRange {
            min: -1.0,
            max: 1.0,
        };
        assert_eq!(r.clamp_value(0.5), (0.5, false));
        assert_eq!(r.clamp_value(3.0), (1.0, true));
        assert_eq!(r.clamp_value(-9.0), (-1.0, true));
        let (v, hit) = r.clamp_value(f32::NAN);
        assert!(hit);
        assert_eq!(v, 0.0, "NaN saturates to midpoint");
    }

    #[test]
    fn fit_covers_calibration_set() {
        let mut rng = Rand::seeded(1);
        let mut net = tiny_cnn(4, 16, &mut rng).unwrap();
        let cal = calibration(&mut rng, 6);
        let sup = RangeSupervisor::fit(&mut net, &cal, 0.0).unwrap();
        assert_eq!(sup.ranges().len(), net.len());
        // Every calibration activation is in range: zero violations.
        for sample in &cal {
            let outs = net.forward_trace(sample, Mode::Eval).unwrap();
            for (i, out) in outs.iter().enumerate() {
                let s = sup.supervise(i, out).unwrap();
                assert_eq!(s.violations, 0, "layer {i}");
                assert_eq!(&s.tensor, out);
            }
        }
        assert!(RangeSupervisor::fit(&mut net, &[], 0.1).is_err());
    }

    #[test]
    fn catches_large_corruption_misses_small() {
        let mut rng = Rand::seeded(2);
        let mut net = tiny_cnn(4, 16, &mut rng).unwrap();
        let cal = calibration(&mut rng, 4);
        let sup = RangeSupervisor::fit(&mut net, &cal, 0.05).unwrap();

        let out = net.forward_trace(&cal[0], Mode::Eval).unwrap().remove(0);
        // Exponent-bit corruption: huge value — caught and masked.
        let mut big = out.clone();
        big.as_mut_slice()[3] = 1e20;
        let s = sup.supervise(0, &big).unwrap();
        assert_eq!(s.violations, 1);
        assert!(s.tensor.as_slice()[3].abs() < 1e6);

        // Mantissa-LSB corruption: tiny in-range perturbation — the
        // fundamental blind spot the paper's qualified operations close.
        let mut small = out.clone();
        small.as_mut_slice()[3] += 1e-4;
        let s = sup.supervise(0, &small).unwrap();
        assert_eq!(s.violations, 0, "in-range corruption passes silently");
    }

    #[test]
    fn supervise_validates_layer_index() {
        let mut rng = Rand::seeded(3);
        let mut net = tiny_cnn(4, 16, &mut rng).unwrap();
        let cal = calibration(&mut rng, 2);
        let sup = RangeSupervisor::fit(&mut net, &cal, 0.1).unwrap();
        let t = Tensor::zeros(Shape::d1(4));
        assert!(sup.supervise(99, &t).is_err());
    }

    #[test]
    fn serialises() {
        let mut rng = Rand::seeded(4);
        let mut net = tiny_cnn(3, 16, &mut rng).unwrap();
        let cal = calibration(&mut rng, 2);
        let sup = RangeSupervisor::fit(&mut net, &cal, 0.1).unwrap();
        let json = serde_json::to_string(&sup).unwrap();
        let back: RangeSupervisor = serde_json::from_str(&json).unwrap();
        assert_eq!(sup, back);
    }
}
