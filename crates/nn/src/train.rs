//! The training loop.

use crate::error::NnError;
use crate::freeze::FilterPin;
use crate::layers::Mode;
use crate::loss::CrossEntropyLoss;
use crate::metrics::ConfusionMatrix;
use crate::network::Network;
use crate::optim::{Sgd, SgdConfig};
use relcnn_tensor::init::Rand;
use relcnn_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One labelled training sample (borrowed image + class index).
#[derive(Debug, Clone, Copy)]
pub struct LabelledRef<'a> {
    /// Input tensor (CHW image).
    pub input: &'a Tensor,
    /// Target class index.
    pub target: usize,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (gradient accumulation granularity).
    pub batch_size: usize,
    /// Optimiser configuration.
    pub sgd: SgdConfig,
    /// Shuffle seed (shuffling is per-epoch, deterministic).
    pub seed: u64,
}

impl TrainConfig {
    /// A quick configuration for experiments: 5 epochs, batch 16.
    pub fn quick(seed: u64) -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 16,
            sgd: SgdConfig::alexnet(0.01),
            seed,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch number (0-based).
    pub epoch: usize,
    /// Mean cross-entropy loss over the epoch.
    pub mean_loss: f64,
    /// Training accuracy over the epoch.
    pub accuracy: f64,
}

/// Trains `net` on `samples`, honouring any [`FilterPin`]s, and returns
/// per-epoch statistics.
///
/// # Errors
///
/// Returns [`NnError::BadTraining`] for an empty dataset or zero batch
/// size, and propagates layer errors.
pub fn train(
    net: &mut Network,
    samples: &[(Tensor, usize)],
    config: &TrainConfig,
    pins: &[FilterPin],
) -> Result<Vec<EpochStats>, NnError> {
    if samples.is_empty() {
        return Err(NnError::BadTraining {
            reason: "empty training set".into(),
        });
    }
    if config.batch_size == 0 {
        return Err(NnError::BadTraining {
            reason: "batch size must be positive".into(),
        });
    }
    let loss = CrossEntropyLoss::new();
    let mut sgd = Sgd::new(config.sgd);
    let mut shuffle_rng = Rand::seeded(config.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut stats = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        shuffle_rng.shuffle(&mut order);
        let mut epoch_loss = 0.0f64;
        let mut correct = 0usize;

        for batch in order.chunks(config.batch_size) {
            net.zero_grads();
            for &i in batch {
                let (image, target) = &samples[i];
                let logits = net.forward(image, Mode::Train)?;
                let (l, probs) = loss.forward(&logits, *target)?;
                epoch_loss += l as f64;
                if probs.argmax() == Some(*target) {
                    correct += 1;
                }
                let grad = loss.backward(&probs, *target)?;
                net.backward(&grad)?;
            }
            sgd.step(&mut net.params(), batch.len())?;
            for pin in pins {
                pin.after_batch(net)?;
            }
        }
        for pin in pins {
            pin.after_epoch(net)?;
        }
        stats.push(EpochStats {
            epoch,
            mean_loss: epoch_loss / samples.len() as f64,
            accuracy: correct as f64 / samples.len() as f64,
        });
    }
    Ok(stats)
}

/// Evaluates `net` on labelled samples, producing a confusion matrix.
///
/// # Errors
///
/// Returns [`NnError::BadTraining`] for an empty evaluation set and
/// propagates layer errors.
pub fn evaluate(
    net: &mut Network,
    samples: &[(Tensor, usize)],
    num_classes: usize,
) -> Result<ConfusionMatrix, NnError> {
    if samples.is_empty() {
        return Err(NnError::BadTraining {
            reason: "empty evaluation set".into(),
        });
    }
    let mut matrix = ConfusionMatrix::new(num_classes);
    for (image, target) in samples {
        let predicted = net.classify(image)?;
        matrix.record(*target, predicted)?;
    }
    Ok(matrix)
}

/// Mean softmax probability assigned to `class` over the given samples —
/// the "confidence value" metric plotted in Figure 4.
///
/// # Errors
///
/// Returns [`NnError::BadTraining`] for an empty sample set and
/// propagates layer errors.
pub fn mean_class_confidence(
    net: &mut Network,
    samples: &[&Tensor],
    class: usize,
) -> Result<f64, NnError> {
    if samples.is_empty() {
        return Err(NnError::BadTraining {
            reason: "empty confidence sample set".into(),
        });
    }
    let mut acc = 0.0f64;
    for image in samples {
        let probs = net.predict(image)?;
        let p = probs
            .as_slice()
            .get(class)
            .copied()
            .ok_or(NnError::BadInput {
                layer: "confidence",
                reason: format!("class {class} out of range"),
            })?;
        acc += p as f64;
    }
    Ok(acc / samples.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alexnet::tiny_cnn;
    use relcnn_tensor::init::Rand;
    use relcnn_tensor::{Shape, Tensor};

    /// A linearly separable toy problem: class = brightest channel.
    fn toy_dataset(n_per_class: usize, seed: u64) -> Vec<(Tensor, usize)> {
        let mut rng = Rand::seeded(seed);
        let mut data = Vec::new();
        for class in 0..3usize {
            for _ in 0..n_per_class {
                let mut img = Tensor::zeros(Shape::d3(3, 16, 16));
                for c in 0..3 {
                    let base = if c == class { 0.8 } else { 0.2 };
                    for v in img.as_mut_slice().iter_mut().skip(c * 256).take(256) {
                        *v = base + rng.uniform(-0.1, 0.1);
                    }
                }
                data.push((img, class));
            }
        }
        data
    }

    #[test]
    fn training_converges_on_separable_toy() {
        let mut rng = Rand::seeded(1);
        let mut net = tiny_cnn(3, 16, &mut rng).unwrap();
        let data = toy_dataset(12, 2);
        let config = TrainConfig {
            epochs: 8,
            batch_size: 6,
            sgd: SgdConfig::plain(0.05),
            seed: 3,
        };
        let stats = train(&mut net, &data, &config, &[]).unwrap();
        assert_eq!(stats.len(), 8);
        let first = stats.first().unwrap();
        let last = stats.last().unwrap();
        assert!(
            last.mean_loss < first.mean_loss,
            "loss must fall: {} -> {}",
            first.mean_loss,
            last.mean_loss
        );
        assert!(last.accuracy > 0.9, "final accuracy {}", last.accuracy);

        // Held-out evaluation.
        let test = toy_dataset(5, 99);
        let matrix = evaluate(&mut net, &test, 3).unwrap();
        assert!(
            matrix.accuracy() > 0.8,
            "test accuracy {}",
            matrix.accuracy()
        );
    }

    #[test]
    fn confidence_tracks_training() {
        let mut rng = Rand::seeded(4);
        let mut net = tiny_cnn(3, 16, &mut rng).unwrap();
        let data = toy_dataset(10, 5);
        let class0: Vec<&Tensor> = data
            .iter()
            .filter(|(_, t)| *t == 0)
            .map(|(i, _)| i)
            .collect();
        let before = mean_class_confidence(&mut net, &class0, 0).unwrap();
        let config = TrainConfig {
            epochs: 6,
            batch_size: 5,
            sgd: SgdConfig::plain(0.05),
            seed: 6,
        };
        train(&mut net, &data, &config, &[]).unwrap();
        let after = mean_class_confidence(&mut net, &class0, 0).unwrap();
        assert!(after > before, "confidence {before} -> {after}");
        assert!(after > 0.6);
    }

    #[test]
    fn validation_errors() {
        let mut rng = Rand::seeded(7);
        let mut net = tiny_cnn(3, 16, &mut rng).unwrap();
        let config = TrainConfig::quick(0);
        assert!(train(&mut net, &[], &config, &[]).is_err());
        let data = toy_dataset(1, 0);
        let mut bad = TrainConfig::quick(0);
        bad.batch_size = 0;
        assert!(train(&mut net, &data, &bad, &[]).is_err());
        assert!(evaluate(&mut net, &[], 3).is_err());
        assert!(mean_class_confidence(&mut net, &[], 0).is_err());
        let img = Tensor::zeros(Shape::d3(3, 16, 16));
        assert!(mean_class_confidence(&mut net, &[&img], 9).is_err());
    }

    #[test]
    fn training_is_deterministic() {
        let data = toy_dataset(6, 8);
        let run = || {
            let mut rng = Rand::seeded(10);
            let mut net = tiny_cnn(3, 16, &mut rng).unwrap();
            let config = TrainConfig {
                epochs: 2,
                batch_size: 4,
                sgd: SgdConfig::plain(0.05),
                seed: 11,
            };
            let stats = train(&mut net, &data, &config, &[]).unwrap();
            (stats, net.state())
        };
        let (s1, w1) = run();
        let (s2, w2) = run();
        assert_eq!(s1, s2);
        assert_eq!(w1, w2);
    }

    #[test]
    fn pinned_filter_held_during_training() {
        use crate::freeze::{FilterPin, FreezePolicy};
        let mut rng = Rand::seeded(12);
        let mut net = tiny_cnn(3, 16, &mut rng).unwrap();
        let sobel = Tensor::from_fn(Shape::d3(3, 3, 3), |i| {
            [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]][i[1]][i[2]]
        });
        let pin = FilterPin::install(&mut net, 0, 0, sobel, FreezePolicy::PinEachBatch).unwrap();
        let data = toy_dataset(6, 13);
        let config = TrainConfig {
            epochs: 3,
            batch_size: 4,
            sgd: SgdConfig::alexnet(0.05),
            seed: 14,
        };
        train(&mut net, &data, &config, std::slice::from_ref(&pin)).unwrap();
        assert_eq!(pin.drift(&net).unwrap().l2, 0.0);
    }
}
