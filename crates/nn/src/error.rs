use relcnn_tensor::TensorError;
use std::fmt;

/// Error type for network construction, training and inference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A layer received an input of the wrong shape.
    BadInput {
        /// Layer that rejected the input.
        layer: &'static str,
        /// Description of the expectation.
        reason: String,
    },
    /// `backward` was called without a preceding `forward` (no cache).
    NoForwardCache {
        /// Layer that was asked to run backward.
        layer: &'static str,
    },
    /// Training-loop configuration error (zero batch, empty dataset…).
    BadTraining {
        /// Description of the violation.
        reason: String,
    },
    /// Checkpoint (de)serialisation failure.
    Checkpoint {
        /// Description of the corruption or mismatch.
        reason: String,
    },
    /// Error propagated from the tensor substrate.
    Tensor(TensorError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::BadInput { layer, reason } => {
                write!(f, "bad input to {layer}: {reason}")
            }
            NnError::NoForwardCache { layer } => {
                write!(f, "backward before forward in {layer}")
            }
            NnError::BadTraining { reason } => write!(f, "bad training setup: {reason}"),
            NnError::Checkpoint { reason } => write!(f, "checkpoint error: {reason}"),
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_source() {
        let errs: Vec<NnError> = vec![
            NnError::BadInput {
                layer: "conv2d",
                reason: "expected CHW".into(),
            },
            NnError::NoForwardCache { layer: "relu" },
            NnError::BadTraining {
                reason: "batch size 0".into(),
            },
            NnError::Checkpoint {
                reason: "tensor count mismatch".into(),
            },
            NnError::Tensor(TensorError::LengthMismatch {
                expected: 1,
                actual: 2,
            }),
        ];
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
        assert!(std::error::Error::source(&errs[4]).is_some());
        assert!(std::error::Error::source(&errs[0]).is_none());
    }
}
