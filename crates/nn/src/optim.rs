//! Stochastic gradient descent with momentum and weight decay.

use crate::error::NnError;
use crate::layers::Param;
use relcnn_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay coefficient (0 disables decay).
    ///
    /// Note for experiment X2: weight decay applies to *all* parameters,
    /// including gradient-masked ("frozen") filters — this is exactly the
    /// mechanism by which the paper's frozen Sobel filters still drift
    /// "after every epoch or batch" under TensorFlow.
    pub weight_decay: f32,
}

impl SgdConfig {
    /// Plain SGD with the given learning rate.
    pub fn plain(lr: f32) -> Self {
        SgdConfig {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }

    /// AlexNet-style configuration: momentum 0.9, weight decay 5e-4.
    pub fn alexnet(lr: f32) -> Self {
        SgdConfig {
            lr,
            momentum: 0.9,
            weight_decay: 5e-4,
        }
    }
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig::alexnet(0.01)
    }
}

/// The SGD optimiser. Holds one velocity buffer per parameter tensor.
#[derive(Debug)]
pub struct Sgd {
    config: SgdConfig,
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Creates an optimiser.
    pub fn new(config: SgdConfig) -> Self {
        Sgd {
            config,
            velocities: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> SgdConfig {
        self.config
    }

    /// Changes the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Applies one update step to `params`, dividing accumulated gradients
    /// by `batch_size`.
    ///
    /// The parameter list must be stable across calls (same order, same
    /// shapes) — it always is when obtained from the same
    /// [`Network`](crate::Network).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadTraining`] for `batch_size == 0` or if the
    /// parameter list changed shape since the previous step.
    pub fn step(&mut self, params: &mut [Param<'_>], batch_size: usize) -> Result<(), NnError> {
        if batch_size == 0 {
            return Err(NnError::BadTraining {
                reason: "batch size must be positive".into(),
            });
        }
        if self.velocities.is_empty() {
            self.velocities = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape().clone()))
                .collect();
        }
        if self.velocities.len() != params.len() {
            return Err(NnError::BadTraining {
                reason: format!(
                    "parameter count changed: {} vs {}",
                    params.len(),
                    self.velocities.len()
                ),
            });
        }
        let scale = 1.0 / batch_size as f32;
        for (p, v) in params.iter_mut().zip(self.velocities.iter_mut()) {
            if p.value.shape() != v.shape() {
                return Err(NnError::BadTraining {
                    reason: format!("parameter {} changed shape", p.name),
                });
            }
            let vs = v.as_mut_slice();
            let ws = p.value.as_mut_slice();
            let gs = p.grad.as_slice();
            for i in 0..ws.len() {
                let g = gs[i] * scale + self.config.weight_decay * ws[i];
                vs[i] = self.config.momentum * vs[i] - self.config.lr * g;
                ws[i] += vs[i];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcnn_tensor::Shape;

    fn param_pair(value: Vec<f32>, grad: Vec<f32>) -> (Tensor, Tensor) {
        let n = value.len();
        (
            Tensor::from_vec(Shape::d1(n), value).unwrap(),
            Tensor::from_vec(Shape::d1(n), grad).unwrap(),
        )
    }

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let (mut w, mut g) = param_pair(vec![1.0, -1.0], vec![2.0, -4.0]);
        let mut sgd = Sgd::new(SgdConfig::plain(0.5));
        let mut params = vec![Param {
            name: "w",
            value: &mut w,
            grad: &mut g,
        }];
        sgd.step(&mut params, 1).unwrap();
        assert_eq!(w.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn batch_size_scales_gradient() {
        let (mut w, mut g) = param_pair(vec![0.0], vec![8.0]);
        let mut sgd = Sgd::new(SgdConfig::plain(1.0));
        sgd.step(
            &mut [Param {
                name: "w",
                value: &mut w,
                grad: &mut g,
            }],
            4,
        )
        .unwrap();
        assert_eq!(w.as_slice(), &[-2.0]);
    }

    #[test]
    fn momentum_accumulates() {
        let (mut w, mut g) = param_pair(vec![0.0], vec![1.0]);
        let mut sgd = Sgd::new(SgdConfig {
            lr: 1.0,
            momentum: 0.5,
            weight_decay: 0.0,
        });
        for _ in 0..2 {
            let mut params = vec![Param {
                name: "w",
                value: &mut w,
                grad: &mut g,
            }];
            sgd.step(&mut params, 1).unwrap();
        }
        // Step 1: v=-1, w=-1. Step 2: v=-0.5-1=-1.5, w=-2.5.
        assert_eq!(w.as_slice(), &[-2.5]);
    }

    #[test]
    fn weight_decay_shrinks_even_without_gradient() {
        // The drift mechanism of experiment X2: zero gradient (masked
        // "frozen" filter) but nonzero decay.
        let (mut w, mut g) = param_pair(vec![1.0], vec![0.0]);
        let mut sgd = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.5,
        });
        sgd.step(
            &mut [Param {
                name: "w",
                value: &mut w,
                grad: &mut g,
            }],
            1,
        )
        .unwrap();
        assert!((w.as_slice()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn rejects_zero_batch_and_changed_params() {
        let (mut w, mut g) = param_pair(vec![1.0], vec![1.0]);
        let mut sgd = Sgd::new(SgdConfig::plain(0.1));
        assert!(sgd
            .step(
                &mut [Param {
                    name: "w",
                    value: &mut w,
                    grad: &mut g
                }],
                0
            )
            .is_err());
        sgd.step(
            &mut [Param {
                name: "w",
                value: &mut w,
                grad: &mut g,
            }],
            1,
        )
        .unwrap();
        // Different parameter count on the next step.
        let (mut w2, mut g2) = param_pair(vec![1.0, 2.0], vec![0.0, 0.0]);
        let err = sgd.step(
            &mut [
                Param {
                    name: "w",
                    value: &mut w,
                    grad: &mut g,
                },
                Param {
                    name: "w2",
                    value: &mut w2,
                    grad: &mut g2,
                },
            ],
            1,
        );
        assert!(err.is_err());
    }

    #[test]
    fn lr_schedule_hook() {
        let mut sgd = Sgd::new(SgdConfig::plain(0.1));
        sgd.set_lr(0.01);
        assert_eq!(sgd.config().lr, 0.01);
    }
}
