use crate::error::NnError;
use crate::scratch::ScratchBuf;
use relcnn_tensor::conv::{col2im, im2col, im2col_into, max_pool2d, max_pool2d_into, ConvGeometry};
use relcnn_tensor::init::{Init, Rand};
use relcnn_tensor::ops::{gemm_bias_into, gemm_into};
use relcnn_tensor::{Shape, Tensor};
use std::fmt;

/// Whether a forward pass is part of training (caches activations, applies
/// dropout) or inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: stochastic layers active, activations cached for backprop.
    Train,
    /// Inference: deterministic, no caching requirements.
    Eval,
}

/// A mutable view of one learnable parameter tensor and its gradient.
pub struct Param<'a> {
    /// Parameter name (for logging and checkpoints), e.g. `conv2d.weight`.
    pub name: &'static str,
    /// The parameter values.
    pub value: &'a mut Tensor,
    /// The accumulated gradient (same shape as `value`).
    pub grad: &'a mut Tensor,
}

impl fmt::Debug for Param<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Param({}, {})", self.name, self.value.shape())
    }
}

/// A differentiable network layer operating on single-sample tensors.
///
/// `forward` in [`Mode::Train`] caches whatever `backward` needs;
/// `backward` consumes the cache, **accumulates** parameter gradients and
/// returns the gradient with respect to the layer input. Gradients
/// accumulate across samples of a batch; the optimiser divides by the
/// batch size.
pub trait Layer: fmt::Debug + Send + Sync {
    /// Short layer name for diagnostics.
    fn name(&self) -> &'static str;

    /// Computes the layer output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] for shape mismatches.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError>;

    /// Backpropagates `grad_output`, returning the input gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] when called without a prior
    /// training-mode forward.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError>;

    /// Zero-allocation inference step: reads `input`, writes the layer
    /// output into `out`, optionally using `cols` as lowering scratch.
    ///
    /// **Contract:** bit-identical to `forward(input, Mode::Eval)` on
    /// every output bit (the only exception is the codegen-defined
    /// payload of a NaN formed from two NaN operands, which no real
    /// input produces), with the same cache side-effects as an `Eval`
    /// forward. The hot-path layers override
    /// this with arena-backed kernels; the default falls back to the
    /// allocating forward so exotic layers stay correct.
    ///
    /// # Errors
    ///
    /// As for [`Layer::forward`].
    fn infer(
        &mut self,
        input: &ScratchBuf,
        out: &mut ScratchBuf,
        _cols: &mut ScratchBuf,
    ) -> Result<(), NnError> {
        let x = input.to_tensor()?;
        let y = self.forward(&x, Mode::Eval)?;
        out.copy_from_tensor(&y)
    }

    /// Learnable parameters (empty for stateless layers).
    fn params(&mut self) -> Vec<Param<'_>> {
        Vec::new()
    }

    /// Clears accumulated gradients.
    fn zero_grads(&mut self) {}

    /// Downcast hook for the filter-replacement workflow.
    fn as_conv2d(&self) -> Option<&Conv2d> {
        None
    }

    /// Mutable downcast hook for the filter-replacement workflow.
    fn as_conv2d_mut(&mut self) -> Option<&mut Conv2d> {
        None
    }

    /// Clones the layer behind the trait object — the hook that lets the
    /// runtime hand each worker its own copy of a network.
    fn clone_box(&self) -> Box<dyn Layer>;
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution layer (CHW in, CHW out, OIHW filters).
///
/// Supports per-filter gradient masking — the mechanism behind the paper's
/// §III-B "frozen" Sobel filter experiments.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    w_grad: Tensor,
    b_grad: Tensor,
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    /// Filters whose gradients are masked to zero ("frozen").
    frozen: Vec<bool>,
    cache: Option<ConvCache>,
    /// Cached `[out_c, in_c*k*k]` view of `weight` — the GEMM operand.
    /// Rebuilt lazily; invalidated whenever the weight can change
    /// ([`Conv2d::set_filter`] and [`Layer::params`], which hands out
    /// `&mut weight`).
    w_mat: Option<Tensor>,
}

#[derive(Debug, Clone)]
struct ConvCache {
    cols: Tensor,
    geom: ConvGeometry,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal weights and zero bias.
    pub fn new(
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rand,
    ) -> Self {
        let fan_in = in_c * kernel * kernel;
        let weight = rng.tensor(
            Shape::d4(out_c, in_c, kernel, kernel),
            Init::HeNormal { fan_in },
        );
        Conv2d {
            w_grad: Tensor::zeros(weight.shape().clone()),
            weight,
            bias: Tensor::zeros(Shape::d1(out_c)),
            b_grad: Tensor::zeros(Shape::d1(out_c)),
            in_c,
            out_c,
            kernel,
            stride,
            padding,
            frozen: vec![false; out_c],
            cache: None,
            w_mat: None,
        }
    }

    /// Number of output channels (filters).
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_c
    }

    /// Kernel side length.
    pub fn kernel_size(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// The full OIHW filter bank.
    pub fn filters(&self) -> &Tensor {
        &self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// One filter as an `[in_c, k, k]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when `index >= out_channels()`.
    pub fn filter(&self, index: usize) -> Result<Tensor, NnError> {
        if index >= self.out_c {
            return Err(NnError::BadInput {
                layer: "conv2d",
                reason: format!("filter index {index} >= {}", self.out_c),
            });
        }
        Ok(self.weight.index_axis0(index)?)
    }

    /// Overwrites one filter with an `[in_c, k, k]` tensor — the paper's
    /// filter-replacement primitive.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] for a bad index or shape.
    pub fn set_filter(&mut self, index: usize, values: &Tensor) -> Result<(), NnError> {
        if index >= self.out_c {
            return Err(NnError::BadInput {
                layer: "conv2d",
                reason: format!("filter index {index} >= {}", self.out_c),
            });
        }
        let expected = [self.in_c, self.kernel, self.kernel];
        if values.shape().dims() != expected {
            return Err(NnError::BadInput {
                layer: "conv2d",
                reason: format!(
                    "filter shape {:?} != expected {:?}",
                    values.shape().dims(),
                    expected
                ),
            });
        }
        let per_filter = self.in_c * self.kernel * self.kernel;
        let dst = &mut self.weight.as_mut_slice()[index * per_filter..(index + 1) * per_filter];
        dst.copy_from_slice(values.as_slice());
        self.w_mat = None;
        Ok(())
    }

    /// Marks a filter's gradient as masked (frozen) or not.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] for a bad index.
    pub fn set_frozen(&mut self, index: usize, frozen: bool) -> Result<(), NnError> {
        if index >= self.out_c {
            return Err(NnError::BadInput {
                layer: "conv2d",
                reason: format!("filter index {index} >= {}", self.out_c),
            });
        }
        self.frozen[index] = frozen;
        Ok(())
    }

    /// Whether a filter's gradient is masked.
    pub fn is_frozen(&self, index: usize) -> bool {
        self.frozen.get(index).copied().unwrap_or(false)
    }

    fn geometry_for(&self, input: &Tensor) -> Result<ConvGeometry, NnError> {
        if input.shape().rank() != 3 || input.shape().dim(0) != self.in_c {
            return Err(NnError::BadInput {
                layer: "conv2d",
                reason: format!("expected [{}, h, w], got {}", self.in_c, input.shape()),
            });
        }
        ConvGeometry::new(
            input.shape().dim(1),
            input.shape().dim(2),
            self.kernel,
            self.kernel,
            self.stride,
            self.padding,
        )
        .map_err(NnError::from)
    }

    /// The cached `[out_c, in_c*k*k]` weight matrix, rebuilding it if a
    /// weight update invalidated it. Both the training forward/backward
    /// and the scratch inference path go through here, so the reshape
    /// clone happens once per weight update instead of once per call.
    fn weight_matrix(&mut self) -> Result<&Tensor, NnError> {
        if self.w_mat.is_none() {
            self.w_mat = Some(
                self.weight
                    .reshape(vec![self.out_c, self.in_c * self.kernel * self.kernel])?,
            );
        }
        Ok(self.w_mat.as_ref().expect("just rebuilt"))
    }
}

impl Layer for Conv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        let geom = self.geometry_for(input)?;
        let cols = im2col(input, &geom)?;
        let mut out = self.weight_matrix()?.matmul(&cols)?;
        let positions = geom.positions();
        {
            let slice = out.as_mut_slice();
            for oc in 0..self.out_c {
                let b = self.bias.as_slice()[oc];
                for v in &mut slice[oc * positions..(oc + 1) * positions] {
                    *v += b;
                }
            }
        }
        if mode == Mode::Train {
            self.cache = Some(ConvCache { cols, geom });
        } else {
            self.cache = None;
        }
        Ok(out.into_reshaped(vec![self.out_c, geom.out_h(), geom.out_w()])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cache
            .take()
            .ok_or(NnError::NoForwardCache { layer: "conv2d" })?;
        let positions = cache.geom.positions();
        let dy = grad_output.reshape(vec![self.out_c, positions])?;

        // dW += dY · colsᵀ
        let dw = dy.matmul(&cache.cols.transpose()?)?;
        let per_filter = self.in_c * self.kernel * self.kernel;
        {
            let wg = self.w_grad.as_mut_slice();
            let dw_s = dw.as_slice();
            for oc in 0..self.out_c {
                if self.frozen[oc] {
                    continue; // gradient masked: the "frozen" filter
                }
                for i in 0..per_filter {
                    wg[oc * per_filter + i] += dw_s[oc * per_filter + i];
                }
            }
        }
        // db += row sums of dY
        {
            let bg = self.b_grad.as_mut_slice();
            let dy_s = dy.as_slice();
            for oc in 0..self.out_c {
                if self.frozen[oc] {
                    continue;
                }
                bg[oc] += dy_s[oc * positions..(oc + 1) * positions]
                    .iter()
                    .sum::<f32>();
            }
        }
        // dX = col2im(Wᵀ · dY)
        let dcols = self.weight_matrix()?.transpose()?.matmul(&dy)?;
        let dx = col2im(&dcols, self.in_c, &cache.geom)?;
        Ok(dx)
    }

    fn infer(
        &mut self,
        input: &ScratchBuf,
        out: &mut ScratchBuf,
        cols: &mut ScratchBuf,
    ) -> Result<(), NnError> {
        let dims = input.dims();
        if dims.len() != 3 || dims[0] != self.in_c {
            return Err(NnError::BadInput {
                layer: "conv2d",
                reason: format!("expected [{}, h, w], got {dims:?}", self.in_c),
            });
        }
        let geom = ConvGeometry::new(
            dims[1],
            dims[2],
            self.kernel,
            self.kernel,
            self.stride,
            self.padding,
        )?;
        let rows = self.in_c * self.kernel * self.kernel;
        let positions = geom.positions();
        cols.set_dims(&[rows, positions])?;
        im2col_into(input.as_slice(), self.in_c, &geom, cols.as_mut_slice())?;
        out.set_dims(&[self.out_c, geom.out_h(), geom.out_w()])?;
        let out_c = self.out_c;
        self.weight_matrix()?;
        let w = self
            .w_mat
            .as_ref()
            .expect("weight_matrix populated the cache");
        // Fused bias: added per element at GEMM store time, after that
        // element's k-accumulation completes — the same op order as the
        // separate "matmul, then add bias per row" pass, so the fusion is
        // bit-invisible (pinned by the scratch-parity tests).
        gemm_bias_into(
            out_c,
            rows,
            positions,
            w.as_slice(),
            cols.as_slice(),
            self.bias.as_slice(),
            out.as_mut_slice(),
        )?;
        self.cache = None;
        Ok(())
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        // The caller receives `&mut weight`: assume it changes.
        self.w_mat = None;
        vec![
            Param {
                name: "conv2d.weight",
                value: &mut self.weight,
                grad: &mut self.w_grad,
            },
            Param {
                name: "conv2d.bias",
                value: &mut self.bias,
                grad: &mut self.b_grad,
            },
        ]
    }

    fn zero_grads(&mut self) {
        self.w_grad.map_inplace(|_| 0.0);
        self.b_grad.map_inplace(|_| 0.0);
    }

    fn as_conv2d(&self) -> Option<&Conv2d> {
        Some(self)
    }

    fn as_conv2d_mut(&mut self) -> Option<&mut Conv2d> {
        Some(self)
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        ReLU::default()
    }
}

impl Layer for ReLU {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        if mode == Mode::Train {
            self.mask = Some(input.iter().map(|&v| v > 0.0).collect());
        }
        Ok(input.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let mask = self
            .mask
            .take()
            .ok_or(NnError::NoForwardCache { layer: "relu" })?;
        if mask.len() != grad_output.len() {
            return Err(NnError::BadInput {
                layer: "relu",
                reason: format!("grad length {} != cached {}", grad_output.len(), mask.len()),
            });
        }
        let data = grad_output
            .iter()
            .zip(mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Ok(Tensor::from_vec(grad_output.shape().clone(), data)?)
    }

    fn infer(
        &mut self,
        input: &ScratchBuf,
        out: &mut ScratchBuf,
        _cols: &mut ScratchBuf,
    ) -> Result<(), NnError> {
        out.set_dims(input.dims())?;
        for (o, &v) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *o = v.max(0.0);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// MaxPool2d
// ---------------------------------------------------------------------------

/// 2-D max pooling (padding-free, AlexNet-style overlapping windows
/// supported).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    cache: Option<PoolCache>,
}

#[derive(Debug, Clone)]
struct PoolCache {
    argmax: Vec<usize>,
    input_shape: Shape,
}

impl MaxPool2d {
    /// Creates a pooling layer with square windows.
    pub fn new(kernel: usize, stride: usize) -> Self {
        MaxPool2d {
            kernel,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "max_pool2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        if input.shape().rank() != 3 {
            return Err(NnError::BadInput {
                layer: "max_pool2d",
                reason: format!("expected CHW, got {}", input.shape()),
            });
        }
        let geom = ConvGeometry::new(
            input.shape().dim(1),
            input.shape().dim(2),
            self.kernel,
            self.kernel,
            self.stride,
            0,
        )?;
        let (out, argmax) = max_pool2d(input, &geom)?;
        if mode == Mode::Train {
            self.cache = Some(PoolCache {
                argmax,
                input_shape: input.shape().clone(),
            });
        } else {
            self.cache = None;
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let cache = self.cache.take().ok_or(NnError::NoForwardCache {
            layer: "max_pool2d",
        })?;
        if cache.argmax.len() != grad_output.len() {
            return Err(NnError::BadInput {
                layer: "max_pool2d",
                reason: "grad shape does not match cached pooling".into(),
            });
        }
        let mut dx = Tensor::zeros(cache.input_shape);
        let dxs = dx.as_mut_slice();
        for (&src, &g) in cache.argmax.iter().zip(grad_output.iter()) {
            dxs[src] += g;
        }
        Ok(dx)
    }

    fn infer(
        &mut self,
        input: &ScratchBuf,
        out: &mut ScratchBuf,
        _cols: &mut ScratchBuf,
    ) -> Result<(), NnError> {
        let dims = input.dims();
        if dims.len() != 3 {
            return Err(NnError::BadInput {
                layer: "max_pool2d",
                reason: format!("expected CHW, got {dims:?}"),
            });
        }
        let geom = ConvGeometry::new(dims[1], dims[2], self.kernel, self.kernel, self.stride, 0)?;
        out.set_dims(&[dims[0], geom.out_h(), geom.out_w()])?;
        max_pool2d_into(input.as_slice(), dims[0], &geom, out.as_mut_slice())?;
        self.cache = None;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------------

/// Flattens any tensor to rank 1.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_shape: Option<Shape>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        if mode == Mode::Train {
            self.input_shape = Some(input.shape().clone());
        }
        Ok(input.reshape(vec![input.len()])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let shape = self
            .input_shape
            .take()
            .ok_or(NnError::NoForwardCache { layer: "flatten" })?;
        Ok(grad_output.reshape(shape.dims().to_vec())?)
    }

    fn infer(
        &mut self,
        input: &ScratchBuf,
        out: &mut ScratchBuf,
        _cols: &mut ScratchBuf,
    ) -> Result<(), NnError> {
        out.set_dims(&[input.volume()])?;
        out.as_mut_slice().copy_from_slice(input.as_slice());
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

/// Fully connected layer: `y = W·x + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Tensor, // [out, in]
    bias: Tensor,   // [out]
    w_grad: Tensor,
    b_grad: Tensor,
    in_dim: usize,
    out_dim: usize,
    cache: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rand) -> Self {
        let weight = rng.tensor(
            Shape::d2(out_dim, in_dim),
            Init::XavierUniform {
                fan_in: in_dim,
                fan_out: out_dim,
            },
        );
        Dense {
            w_grad: Tensor::zeros(weight.shape().clone()),
            weight,
            bias: Tensor::zeros(Shape::d1(out_dim)),
            b_grad: Tensor::zeros(Shape::d1(out_dim)),
            in_dim,
            out_dim,
            cache: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The `[out, in]` weight matrix.
    pub fn weights(&self) -> &Tensor {
        &self.weight
    }
}

impl Layer for Dense {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        if input.len() != self.in_dim {
            return Err(NnError::BadInput {
                layer: "dense",
                reason: format!("expected {} inputs, got {}", self.in_dim, input.len()),
            });
        }
        let x = input.reshape(vec![self.in_dim, 1])?;
        let mut y = self.weight.matmul(&x)?.into_reshaped(vec![self.out_dim])?;
        for (v, b) in y.iter_mut().zip(self.bias.iter()) {
            *v += b;
        }
        if mode == Mode::Train {
            self.cache = Some(input.reshape(vec![input.len()])?);
        } else {
            self.cache = None;
        }
        Ok(y)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let x = self
            .cache
            .take()
            .ok_or(NnError::NoForwardCache { layer: "dense" })?;
        if grad_output.len() != self.out_dim {
            return Err(NnError::BadInput {
                layer: "dense",
                reason: format!("expected {} grads, got {}", self.out_dim, grad_output.len()),
            });
        }
        // dW += dy ⊗ x
        {
            let wg = self.w_grad.as_mut_slice();
            let xs = x.as_slice();
            for (o, &g) in grad_output.iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                let row = &mut wg[o * self.in_dim..(o + 1) * self.in_dim];
                for (w, &xv) in row.iter_mut().zip(xs.iter()) {
                    *w += g * xv;
                }
            }
        }
        // db += dy
        for (b, &g) in self.b_grad.iter_mut().zip(grad_output.iter()) {
            *b += g;
        }
        // dx = Wᵀ · dy
        let mut dx = vec![0.0f32; self.in_dim];
        let ws = self.weight.as_slice();
        for (o, &g) in grad_output.iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            let row = &ws[o * self.in_dim..(o + 1) * self.in_dim];
            for (d, &w) in dx.iter_mut().zip(row.iter()) {
                *d += g * w;
            }
        }
        Ok(Tensor::from_vec(Shape::d1(self.in_dim), dx)?)
    }

    fn infer(
        &mut self,
        input: &ScratchBuf,
        out: &mut ScratchBuf,
        _cols: &mut ScratchBuf,
    ) -> Result<(), NnError> {
        if input.volume() != self.in_dim {
            return Err(NnError::BadInput {
                layer: "dense",
                reason: format!("expected {} inputs, got {}", self.in_dim, input.volume()),
            });
        }
        out.set_dims(&[self.out_dim])?;
        // n = 1 GEMV through the same blocked kernel; bit-identical to
        // `weight.matmul(x)` because the per-element k order is the naive
        // order.
        gemm_into(
            self.out_dim,
            self.in_dim,
            1,
            self.weight.as_slice(),
            input.as_slice(),
            out.as_mut_slice(),
        )?;
        for (v, b) in out.as_mut_slice().iter_mut().zip(self.bias.iter()) {
            *v += b;
        }
        self.cache = None;
        Ok(())
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param {
                name: "dense.weight",
                value: &mut self.weight,
                grad: &mut self.w_grad,
            },
            Param {
                name: "dense.bias",
                value: &mut self.bias,
                grad: &mut self.b_grad,
            },
        ]
    }

    fn zero_grads(&mut self) {
        self.w_grad.map_inplace(|_| 0.0);
        self.b_grad.map_inplace(|_| 0.0);
    }
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

/// Inverted dropout: active only in training mode.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: Rand,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer dropping activations with probability `p`
    /// (clamped to `[0, 0.95]`).
    pub fn new(p: f32, rng: &mut Rand) -> Self {
        Dropout {
            p: p.clamp(0.0, 0.95),
            rng: rng.fork(0xD80),
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        if mode == Mode::Eval || self.p == 0.0 {
            self.mask = None;
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| {
                if self.rng.chance(keep as f64) {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let data = input
            .iter()
            .zip(mask.iter())
            .map(|(&v, &m)| v * m)
            .collect();
        let out = Tensor::from_vec(input.shape().clone(), data)?;
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let mask = self
            .mask
            .take()
            .ok_or(NnError::NoForwardCache { layer: "dropout" })?;
        let data = grad_output
            .iter()
            .zip(mask.iter())
            .map(|(&g, &m)| g * m)
            .collect();
        Ok(Tensor::from_vec(grad_output.shape().clone(), data)?)
    }

    fn infer(
        &mut self,
        input: &ScratchBuf,
        out: &mut ScratchBuf,
        _cols: &mut ScratchBuf,
    ) -> Result<(), NnError> {
        // Inference-mode dropout is the identity.
        out.set_dims(input.dims())?;
        out.as_mut_slice().copy_from_slice(input.as_slice());
        self.mask = None;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// LocalResponseNorm
// ---------------------------------------------------------------------------

/// AlexNet's local response normalisation across channels:
/// `y_i = x_i / (k + α/n · Σ_{j∈window} x_j²)^β`.
#[derive(Debug, Clone)]
pub struct LocalResponseNorm {
    n: usize,
    k: f32,
    alpha: f32,
    beta: f32,
    cache: Option<LrnCache>,
}

#[derive(Debug, Clone)]
struct LrnCache {
    input: Tensor,
    denom: Vec<f32>, // (k + α/n Σ x²) per element
}

impl LocalResponseNorm {
    /// Creates an LRN layer with AlexNet's published constants
    /// (`n = 5, k = 2, α = 1e-4, β = 0.75`).
    pub fn alexnet() -> Self {
        LocalResponseNorm {
            n: 5,
            k: 2.0,
            alpha: 1e-4,
            beta: 0.75,
            cache: None,
        }
    }

    /// Creates an LRN layer with explicit constants.
    pub fn new(n: usize, k: f32, alpha: f32, beta: f32) -> Self {
        LocalResponseNorm {
            n: n.max(1),
            k,
            alpha,
            beta,
            cache: None,
        }
    }

    fn denominators(&self, input: &Tensor) -> Vec<f32> {
        let (c, h, w) = (
            input.shape().dim(0),
            input.shape().dim(1),
            input.shape().dim(2),
        );
        let half = self.n / 2;
        let x = input.as_slice();
        let plane = h * w;
        let mut denom = vec![0.0f32; c * plane];
        for i in 0..c {
            let lo = i.saturating_sub(half);
            let hi = (i + half).min(c - 1);
            for p in 0..plane {
                let mut acc = 0.0f32;
                for j in lo..=hi {
                    let v = x[j * plane + p];
                    acc += v * v;
                }
                denom[i * plane + p] = self.k + self.alpha / self.n as f32 * acc;
            }
        }
        denom
    }
}

impl Layer for LocalResponseNorm {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "lrn"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        if input.shape().rank() != 3 {
            return Err(NnError::BadInput {
                layer: "lrn",
                reason: format!("expected CHW, got {}", input.shape()),
            });
        }
        let denom = self.denominators(input);
        let data = input
            .iter()
            .zip(denom.iter())
            .map(|(&v, &d)| v * d.powf(-self.beta))
            .collect();
        let out = Tensor::from_vec(input.shape().clone(), data)?;
        if mode == Mode::Train {
            self.cache = Some(LrnCache {
                input: input.clone(),
                denom,
            });
        } else {
            self.cache = None;
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cache
            .take()
            .ok_or(NnError::NoForwardCache { layer: "lrn" })?;
        let input = &cache.input;
        let (c, h, w) = (
            input.shape().dim(0),
            input.shape().dim(1),
            input.shape().dim(2),
        );
        let plane = h * w;
        let half = self.n / 2;
        let x = input.as_slice();
        let dy = grad_output.as_slice();
        let d = &cache.denom;
        // dx_j = dy_j d_j^{-β} − (2αβ/n) x_j Σ_{i ∋ j} dy_i x_i d_i^{-β-1}
        let coeff = 2.0 * self.alpha * self.beta / self.n as f32;
        let mut dx = vec![0.0f32; c * plane];
        for p in 0..plane {
            for j in 0..c {
                let jd = j * plane + p;
                let mut acc = 0.0f32;
                let lo = j.saturating_sub(half);
                let hi = (j + half).min(c - 1);
                for i in lo..=hi {
                    let id = i * plane + p;
                    acc += dy[id] * x[id] * d[id].powf(-self.beta - 1.0);
                }
                dx[jd] = dy[jd] * d[jd].powf(-self.beta) - coeff * x[jd] * acc;
            }
        }
        Ok(Tensor::from_vec(input.shape().clone(), dx)?)
    }

    fn infer(
        &mut self,
        input: &ScratchBuf,
        out: &mut ScratchBuf,
        _cols: &mut ScratchBuf,
    ) -> Result<(), NnError> {
        let dims = input.dims();
        if dims.len() != 3 {
            return Err(NnError::BadInput {
                layer: "lrn",
                reason: format!("expected CHW, got {dims:?}"),
            });
        }
        out.set_dims(dims)?;
        // Fused denominators: same accumulation order and the same
        // `k + α/n·Σ` / `x·d^(−β)` expressions as the allocating forward,
        // so every output bit matches.
        let (c, plane) = (dims[0], dims[1] * dims[2]);
        let half = self.n / 2;
        let x = input.as_slice();
        let o = out.as_mut_slice();
        for i in 0..c {
            let lo = i.saturating_sub(half);
            let hi = (i + half).min(c - 1);
            for p in 0..plane {
                let mut acc = 0.0f32;
                for j in lo..=hi {
                    let v = x[j * plane + p];
                    acc += v * v;
                }
                let d = self.k + self.alpha / self.n as f32 * acc;
                o[i * plane + p] = x[i * plane + p] * d.powf(-self.beta);
            }
        }
        self.cache = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rand {
        Rand::seeded(42)
    }

    /// Central-difference gradient check for a layer with respect to its
    /// input.
    fn grad_check_input(layer: &mut dyn Layer, input: &Tensor, tol: f32) {
        let out = layer.forward(input, Mode::Train).unwrap();
        // Loss = sum of outputs -> dL/dy = ones.
        let dy = Tensor::ones(out.shape().clone());
        let dx = layer.backward(&dy).unwrap();
        let eps = 1e-2f32;
        // Probe a handful of positions.
        let probes = [0usize, input.len() / 3, input.len() / 2, input.len() - 1];
        for &i in &probes {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;
            let f_plus = layer.forward(&plus, Mode::Eval).unwrap().sum();
            let f_minus = layer.forward(&minus, Mode::Eval).unwrap().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = dx.as_slice()[i];
            assert!(
                (numeric - analytic).abs() < tol * (1.0 + numeric.abs()),
                "index {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn conv2d_forward_matches_direct() {
        let mut r = rng();
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut r);
        let input = r.tensor(Shape::d3(2, 6, 6), Init::Uniform { lo: -1.0, hi: 1.0 });
        let out = conv.forward(&input, Mode::Eval).unwrap();
        let geom = ConvGeometry::new(6, 6, 3, 3, 1, 1).unwrap();
        let golden =
            relcnn_tensor::conv::conv2d(&input, conv.filters(), Some(conv.bias()), &geom).unwrap();
        assert_eq!(out.shape(), golden.shape());
        for (a, b) in out.iter().zip(golden.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn conv2d_input_gradient_checks() {
        let mut r = rng();
        let mut conv = Conv2d::new(2, 2, 3, 2, 1, &mut r);
        let input = r.tensor(Shape::d3(2, 7, 7), Init::Uniform { lo: -1.0, hi: 1.0 });
        grad_check_input(&mut conv, &input, 2e-2);
    }

    #[test]
    fn conv2d_weight_gradient_checks() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 2, 3, 1, 0, &mut r);
        let input = r.tensor(Shape::d3(1, 5, 5), Init::Uniform { lo: -1.0, hi: 1.0 });
        let out = conv.forward(&input, Mode::Train).unwrap();
        let dy = Tensor::ones(out.shape().clone());
        conv.backward(&dy).unwrap();
        let analytic = conv.w_grad.clone();
        let eps = 1e-2f32;
        for &i in &[0usize, 5, 11, 17] {
            // Mutating the weight field directly bypasses the public
            // invalidation points, so drop the cached view by hand.
            let orig = conv.weight.as_slice()[i];
            conv.weight.as_mut_slice()[i] = orig + eps;
            conv.w_mat = None;
            let f_plus = conv.forward(&input, Mode::Eval).unwrap().sum();
            conv.weight.as_mut_slice()[i] = orig - eps;
            conv.w_mat = None;
            let f_minus = conv.forward(&input, Mode::Eval).unwrap().sum();
            conv.weight.as_mut_slice()[i] = orig;
            conv.w_mat = None;
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            assert!(
                (numeric - a).abs() < 2e-2 * (1.0 + numeric.abs()),
                "weight {i}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    #[test]
    fn conv2d_filter_accessors() {
        let mut r = rng();
        let mut conv = Conv2d::new(3, 4, 3, 1, 0, &mut r);
        let sobel = Tensor::from_fn(Shape::d3(3, 3, 3), |i| (i[0] + i[1] + i[2]) as f32);
        conv.set_filter(2, &sobel).unwrap();
        assert_eq!(conv.filter(2).unwrap(), sobel);
        assert!(conv.filter(4).is_err());
        assert!(conv.set_filter(4, &sobel).is_err());
        let wrong = Tensor::zeros(Shape::d3(3, 2, 2));
        assert!(conv.set_filter(0, &wrong).is_err());
    }

    #[test]
    fn frozen_filter_gets_no_gradient() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 2, 2, 1, 0, &mut r);
        conv.set_frozen(0, true).unwrap();
        assert!(conv.is_frozen(0));
        assert!(!conv.is_frozen(1));
        let input = r.tensor(Shape::d3(1, 4, 4), Init::Uniform { lo: 0.1, hi: 1.0 });
        let out = conv.forward(&input, Mode::Train).unwrap();
        conv.backward(&Tensor::ones(out.shape().clone())).unwrap();
        let per_filter = 4;
        let wg = conv.w_grad.as_slice();
        assert!(wg[..per_filter].iter().all(|&g| g == 0.0), "frozen filter");
        assert!(wg[per_filter..].iter().any(|&g| g != 0.0), "live filter");
        assert_eq!(conv.b_grad.as_slice()[0], 0.0);
        assert_ne!(conv.b_grad.as_slice()[1], 0.0);
    }

    #[test]
    fn conv2d_backward_without_forward_errors() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut r);
        let dy = Tensor::zeros(Shape::d3(1, 3, 3));
        assert!(matches!(
            conv.backward(&dy),
            Err(NnError::NoForwardCache { .. })
        ));
    }

    #[test]
    fn relu_forward_backward() {
        let mut relu = ReLU::new();
        let input = Tensor::from_vec(Shape::d1(4), vec![-1.0, 2.0, -3.0, 4.0]).unwrap();
        let out = relu.forward(&input, Mode::Train).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let dy = Tensor::from_vec(Shape::d1(4), vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let dx = relu.backward(&dy).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
        assert!(relu.backward(&dy).is_err(), "cache consumed");
    }

    #[test]
    fn maxpool_forward_backward_routing() {
        let mut pool = MaxPool2d::new(2, 2);
        let input = Tensor::from_fn(Shape::d3(1, 4, 4), |i| (i[1] * 4 + i[2]) as f32);
        let out = pool.forward(&input, Mode::Train).unwrap();
        assert_eq!(out.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
        let dy = Tensor::from_vec(Shape::d3(1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let dx = pool.backward(&dy).unwrap();
        assert_eq!(dx.get(&[0, 1, 1]), 1.0);
        assert_eq!(dx.get(&[0, 1, 3]), 2.0);
        assert_eq!(dx.get(&[0, 3, 1]), 3.0);
        assert_eq!(dx.get(&[0, 3, 3]), 4.0);
        assert_eq!(dx.sum(), 10.0, "all other positions zero");
    }

    #[test]
    fn flatten_roundtrip() {
        let mut flat = Flatten::new();
        let input = Tensor::from_fn(Shape::d3(2, 3, 4), |i| i[2] as f32);
        let out = flat.forward(&input, Mode::Train).unwrap();
        assert_eq!(out.shape().dims(), &[24]);
        let dx = flat.backward(&out).unwrap();
        assert_eq!(dx.shape().dims(), &[2, 3, 4]);
    }

    #[test]
    fn dense_forward_backward_gradcheck() {
        let mut r = rng();
        let mut dense = Dense::new(6, 3, &mut r);
        let input = r.tensor(Shape::d1(6), Init::Uniform { lo: -1.0, hi: 1.0 });
        grad_check_input(&mut dense, &input, 1e-2);
        assert_eq!(dense.in_dim(), 6);
        assert_eq!(dense.out_dim(), 3);
        assert!(dense
            .forward(&Tensor::zeros(Shape::d1(5)), Mode::Eval)
            .is_err());
    }

    #[test]
    fn dense_weight_gradient_is_outer_product() {
        let mut r = rng();
        let mut dense = Dense::new(2, 2, &mut r);
        let input = Tensor::from_vec(Shape::d1(2), vec![3.0, 5.0]).unwrap();
        dense.forward(&input, Mode::Train).unwrap();
        let dy = Tensor::from_vec(Shape::d1(2), vec![1.0, 2.0]).unwrap();
        dense.backward(&dy).unwrap();
        assert_eq!(dense.w_grad.as_slice(), &[3.0, 5.0, 6.0, 10.0]);
        assert_eq!(dense.b_grad.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn dropout_eval_is_identity_train_scales() {
        let mut r = rng();
        let mut drop = Dropout::new(0.5, &mut r);
        let input = Tensor::ones(Shape::d1(1000));
        let eval = drop.forward(&input, Mode::Eval).unwrap();
        assert_eq!(eval, input);
        let train = drop.forward(&input, Mode::Train).unwrap();
        let zeros = train.iter().filter(|&&v| v == 0.0).count();
        assert!((300..700).contains(&zeros), "{zeros} dropped of 1000");
        // Surviving activations scaled by 1/keep.
        assert!(train.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        // Expectation preserved.
        assert!((train.mean() - 1.0).abs() < 0.15);
        // Backward routes through the same mask.
        let dx = drop.backward(&Tensor::ones(Shape::d1(1000))).unwrap();
        for (t, d) in train.iter().zip(dx.iter()) {
            assert_eq!(*t == 0.0, *d == 0.0);
        }
    }

    #[test]
    fn dropout_p_zero_is_identity_even_in_train() {
        let mut r = rng();
        let mut drop = Dropout::new(0.0, &mut r);
        let input = Tensor::ones(Shape::d1(64));
        assert_eq!(drop.forward(&input, Mode::Train).unwrap(), input);
    }

    #[test]
    fn lrn_forward_shrinks_towards_zero_and_preserves_sign() {
        let mut lrn = LocalResponseNorm::alexnet();
        let input = Tensor::from_fn(Shape::d3(8, 2, 2), |i| i[0] as f32 - 3.5);
        let out = lrn.forward(&input, Mode::Eval).unwrap();
        for (x, y) in input.iter().zip(out.iter()) {
            assert!(y.abs() <= x.abs() + 1e-6, "LRN never amplifies");
            assert!(x * y >= 0.0, "sign preserved");
        }
    }

    #[test]
    fn lrn_gradient_checks() {
        // Use large alpha so the normalisation actually matters.
        let mut lrn = LocalResponseNorm::new(3, 2.0, 0.5, 0.75);
        let mut r = rng();
        let input = r.tensor(Shape::d3(4, 3, 3), Init::Uniform { lo: -1.0, hi: 1.0 });
        grad_check_input(&mut lrn, &input, 2e-2);
    }

    #[test]
    fn lrn_rejects_non_chw() {
        let mut lrn = LocalResponseNorm::alexnet();
        assert!(lrn
            .forward(&Tensor::zeros(Shape::d1(4)), Mode::Eval)
            .is_err());
    }

    #[test]
    fn weight_matrix_cache_invalidates_on_update() {
        let mut r = rng();
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut r);
        let input = r.tensor(Shape::d3(2, 6, 6), Init::Uniform { lo: -1.0, hi: 1.0 });
        let before = conv.forward(&input, Mode::Eval).unwrap();
        assert!(conv.w_mat.is_some(), "forward populates the cache");
        // Repeated forwards reuse the cached view and stay bit-identical.
        let again = conv.forward(&input, Mode::Eval).unwrap();
        for (a, b) in again.iter().zip(before.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // set_filter invalidates, and the next forward sees the new weights.
        let new_filter = Tensor::from_fn(Shape::d3(2, 3, 3), |i| i[1] as f32 - 1.0);
        conv.set_filter(0, &new_filter).unwrap();
        assert!(conv.w_mat.is_none(), "set_filter drops the cache");
        let after = conv.forward(&input, Mode::Eval).unwrap();
        assert!(
            after.iter().zip(before.iter()).any(|(a, b)| a != b),
            "new filter changed the output"
        );
        // params() hands out &mut weight — the optimiser path — so it
        // must invalidate too, on the training path as well as eval.
        let _ = conv.forward(&input, Mode::Train).unwrap();
        assert!(conv.w_mat.is_some());
        for p in conv.params() {
            if p.name == "conv2d.weight" {
                for v in p.value.iter_mut() {
                    *v += 0.25;
                }
            }
        }
        assert!(conv.w_mat.is_none(), "params() drops the cache");
        let shifted = conv.forward(&input, Mode::Eval).unwrap();
        assert!(
            shifted.iter().zip(after.iter()).any(|(a, b)| a != b),
            "optimiser-updated weights reach the cached matrix"
        );
    }

    #[test]
    fn conv2d_infer_matches_eval_forward_bitwise() {
        use crate::scratch::InferScratch;
        let mut r = rng();
        // Padded, strided conv — exercises the zero-filled cols path.
        let mut conv = Conv2d::new(3, 4, 3, 2, 1, &mut r);
        let input = r.tensor(Shape::d3(3, 9, 9), Init::Uniform { lo: -1.0, hi: 1.0 });
        let oracle = conv.forward(&input, Mode::Eval).unwrap();
        let mut arena = InferScratch::new();
        arena.load_input(&input).unwrap();
        let (front, back, cols) = arena.frames();
        conv.infer(front, back, cols).unwrap();
        arena.swap();
        assert_eq!(arena.front().dims(), oracle.shape().dims());
        for (a, b) in arena.front().as_slice().iter().zip(oracle.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn params_expose_weight_and_bias() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut r);
        assert_eq!(conv.params().len(), 2);
        let mut dense = Dense::new(2, 2, &mut r);
        assert_eq!(dense.params().len(), 2);
        let mut relu = ReLU::new();
        assert!(relu.params().is_empty());
    }

    #[test]
    fn zero_grads_clears() {
        let mut r = rng();
        let mut dense = Dense::new(3, 2, &mut r);
        let input = Tensor::ones(Shape::d1(3));
        dense.forward(&input, Mode::Train).unwrap();
        dense.backward(&Tensor::ones(Shape::d1(2))).unwrap();
        assert!(dense.w_grad.iter().any(|&g| g != 0.0));
        dense.zero_grads();
        assert!(dense.w_grad.iter().all(|&g| g == 0.0));
        assert!(dense.b_grad.iter().all(|&g| g == 0.0));
    }
}
