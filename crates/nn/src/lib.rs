//! From-scratch CNN framework: the trainable substrate of the hybrid CNN.
//!
//! The paper uses TensorFlow + AlexNet; this crate is the documented
//! substitution (DESIGN.md §2): a small, dependency-free deep-learning
//! framework with exactly the pieces the experiments need —
//!
//! * layers: [`Conv2d`], [`ReLU`], [`MaxPool2d`], [`LocalResponseNorm`],
//!   [`Flatten`], [`Dense`], [`Dropout`] (all with exact backprop);
//! * [`Network`] — sequential composition with parameter visitation;
//! * [`alexnet::alexnet_227`] — the full AlexNet-227 architecture of the
//!   paper (96 11×11×3 stride-4 first-layer filters) and
//!   [`alexnet::alexnet_gtsrb`] — the scaled, CPU-trainable variant that
//!   keeps conv-1 *identical* (96 filters, 11×11×3, stride 4), because
//!   conv-1 is what every experiment manipulates;
//! * [`SgdConfig`]-driven training with momentum and weight decay;
//! * filter freezing/pinning (`freeze`) — the paper's §III-B
//!   pre-initialisation workflow, including measuring the drift that
//!   "freezing" still permits;
//! * metrics: accuracy and confusion matrices (compared in-text in §III-B).
//!
//! # Example
//!
//! ```rust
//! use relcnn_nn::{alexnet, Mode, Network};
//! use relcnn_tensor::{init::Rand, Shape, Tensor};
//!
//! # fn main() -> Result<(), relcnn_nn::NnError> {
//! let mut rng = Rand::seeded(0);
//! let mut net = alexnet::tiny_cnn(4, 32, &mut rng)?;
//! let image = Tensor::zeros(Shape::d3(3, 32, 32));
//! let logits = net.forward(&image, Mode::Eval)?;
//! assert_eq!(logits.len(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alexnet;
pub mod freeze;
pub mod metrics;
pub mod ranger;
pub mod serial;
pub mod train;

mod error;
mod layers;
pub mod loss;
mod network;
mod optim;
pub mod scratch;

pub use error::NnError;
pub use layers::{
    Conv2d, Dense, Dropout, Flatten, Layer, LocalResponseNorm, MaxPool2d, Mode, Param, ReLU,
};
pub use loss::{softmax, softmax_in_place, CrossEntropyLoss};
pub use network::Network;
pub use optim::{Sgd, SgdConfig};
pub use scratch::{InferScratch, ScratchBuf};

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, NnError>;
