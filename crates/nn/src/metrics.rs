//! Classification metrics: accuracy and confusion matrices.
//!
//! The paper compares "both the confusion matrices of the original and
//! replaced filters and the accuracy" (§III-B); this module provides the
//! artefacts for that comparison (experiment X1).

use crate::error::NnError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A square confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "confusion matrix needs at least one class");
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one observation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] for out-of-range class indices.
    pub fn record(&mut self, actual: usize, predicted: usize) -> Result<(), NnError> {
        if actual >= self.classes || predicted >= self.classes {
            return Err(NnError::BadInput {
                layer: "confusion_matrix",
                reason: format!(
                    "class pair ({actual}, {predicted}) out of range for {} classes",
                    self.classes
                ),
            });
        }
        self.counts[actual * self.classes + predicted] += 1;
        Ok(())
    }

    /// Count at `(actual, predicted)`.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual * self.classes + predicted]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (1.0 for an empty matrix).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let correct: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Recall (true-positive rate) of one class; `None` when the class has
    /// no observations.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / row as f64)
        }
    }

    /// Precision of one class; `None` when the class was never predicted.
    pub fn precision(&self, class: usize) -> Option<f64> {
        let col: u64 = (0..self.classes).map(|a| self.count(a, class)).sum();
        if col == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / col as f64)
        }
    }

    /// False-negative count for one class — for safety-critical classes
    /// (a missed stop sign) this is the number the qualifier architecture
    /// exists to bound.
    pub fn false_negatives(&self, class: usize) -> u64 {
        (0..self.classes)
            .filter(|&p| p != class)
            .map(|p| self.count(class, p))
            .sum()
    }

    /// False-positive count for one class.
    pub fn false_positives(&self, class: usize) -> u64 {
        (0..self.classes)
            .filter(|&a| a != class)
            .map(|a| self.count(a, class))
            .sum()
    }

    /// Element-wise absolute difference from another matrix — the
    /// "compare both confusion matrices" operation of §III-B.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when sizes differ.
    pub fn abs_diff(&self, other: &ConfusionMatrix) -> Result<u64, NnError> {
        if self.classes != other.classes {
            return Err(NnError::BadInput {
                layer: "confusion_matrix",
                reason: format!("class counts {} vs {}", self.classes, other.classes),
            });
        }
        Ok(self
            .counts
            .iter()
            .zip(other.counts.iter())
            .map(|(&a, &b)| a.abs_diff(b))
            .sum())
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "confusion matrix ({} classes, rows=actual):",
            self.classes
        )?;
        write!(f, "      ")?;
        for p in 0..self.classes {
            write!(f, "{p:>6}")?;
        }
        writeln!(f)?;
        for a in 0..self.classes {
            write!(f, "{a:>5}:")?;
            for p in 0..self.classes {
                write!(f, "{:>6}", self.count(a, p))?;
            }
            writeln!(f)?;
        }
        write!(f, "accuracy: {:.4}", self.accuracy())
    }
}

/// Plain accuracy over `(actual, predicted)` pairs (1.0 for empty input).
pub fn accuracy(pairs: &[(usize, usize)]) -> f64 {
    if pairs.is_empty() {
        return 1.0;
    }
    pairs.iter().filter(|(a, p)| a == p).count() as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new(3);
        // class 0: 8 correct, 2 -> class 1
        for _ in 0..8 {
            m.record(0, 0).unwrap();
        }
        for _ in 0..2 {
            m.record(0, 1).unwrap();
        }
        // class 1: 9 correct, 1 -> class 2
        for _ in 0..9 {
            m.record(1, 1).unwrap();
        }
        m.record(1, 2).unwrap();
        // class 2: all 10 correct
        for _ in 0..10 {
            m.record(2, 2).unwrap();
        }
        m
    }

    #[test]
    fn accuracy_and_counts() {
        let m = sample_matrix();
        assert_eq!(m.total(), 30);
        assert!((m.accuracy() - 27.0 / 30.0).abs() < 1e-12);
        assert_eq!(m.count(0, 1), 2);
        assert_eq!(m.classes(), 3);
    }

    #[test]
    fn per_class_metrics() {
        let m = sample_matrix();
        assert!((m.recall(0).unwrap() - 0.8).abs() < 1e-12);
        assert!((m.recall(2).unwrap() - 1.0).abs() < 1e-12);
        // Precision of class 1: 9 true / (9 + 2 from class 0) = 9/11.
        assert!((m.precision(1).unwrap() - 9.0 / 11.0).abs() < 1e-12);
        assert_eq!(m.false_negatives(0), 2);
        assert_eq!(m.false_positives(1), 2);
        assert_eq!(m.false_positives(0), 0);
    }

    #[test]
    fn empty_classes_give_none() {
        let m = ConfusionMatrix::new(2);
        assert_eq!(m.recall(0), None);
        assert_eq!(m.precision(0), None);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn record_validates() {
        let mut m = ConfusionMatrix::new(2);
        assert!(m.record(2, 0).is_err());
        assert!(m.record(0, 2).is_err());
        assert!(m.record(1, 1).is_ok());
    }

    #[test]
    fn abs_diff_measures_matrix_distance() {
        let a = sample_matrix();
        let mut b = sample_matrix();
        assert_eq!(a.abs_diff(&b).unwrap(), 0);
        b.record(0, 2).unwrap();
        assert_eq!(a.abs_diff(&b).unwrap(), 1);
        let c = ConfusionMatrix::new(2);
        assert!(a.abs_diff(&c).is_err());
    }

    #[test]
    fn display_contains_rows() {
        let m = sample_matrix();
        let s = m.to_string();
        assert!(s.contains("accuracy"));
        assert!(s.contains("rows=actual"));
    }

    #[test]
    fn plain_accuracy_helper() {
        assert_eq!(accuracy(&[]), 1.0);
        assert_eq!(accuracy(&[(0, 0), (1, 1), (1, 0), (2, 2)]), 0.75);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_panics() {
        ConfusionMatrix::new(0);
    }
}
