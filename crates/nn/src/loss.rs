//! Softmax cross-entropy loss with logits.

use crate::error::NnError;
use relcnn_tensor::Tensor;

/// Numerically stable softmax of a logit vector.
pub fn softmax(logits: &Tensor) -> Tensor {
    let max = logits.max();
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_vec(
        logits.shape().clone(),
        exps.into_iter()
            .map(|e| e / sum.max(f32::MIN_POSITIVE))
            .collect(),
    )
    .expect("same length")
}

/// In-place softmax over a mutable slice, bit-identical to [`softmax`]
/// applied to the same values — the zero-allocation variant the scratch
/// inference path uses.
///
/// Bit-identity holds because the operation sequence per element is the
/// same: max-fold over the inputs, `(v - max).exp()`, a left-to-right sum
/// of the exponentials, then one divide by `sum.max(f32::MIN_POSITIVE)`.
pub fn softmax_in_place(xs: &mut [f32]) {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    for v in xs.iter_mut() {
        *v = (*v - max).exp();
    }
    let sum: f32 = xs.iter().sum();
    let denom = sum.max(f32::MIN_POSITIVE);
    for v in xs.iter_mut() {
        *v /= denom;
    }
}

/// Softmax + cross-entropy against an integer class label.
///
/// Fusing the two keeps the backward pass the textbook `p - onehot`,
/// avoiding the numerically delicate softmax Jacobian.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropyLoss;

impl CrossEntropyLoss {
    /// Creates the loss.
    pub fn new() -> Self {
        CrossEntropyLoss
    }

    /// Computes `(loss, probabilities)` for one sample.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when `target` is out of range or the
    /// logits are empty.
    pub fn forward(&self, logits: &Tensor, target: usize) -> Result<(f32, Tensor), NnError> {
        if logits.is_empty() {
            return Err(NnError::BadInput {
                layer: "cross_entropy",
                reason: "empty logits".into(),
            });
        }
        if target >= logits.len() {
            return Err(NnError::BadInput {
                layer: "cross_entropy",
                reason: format!("target {target} >= {} classes", logits.len()),
            });
        }
        let probs = softmax(logits);
        let p = probs.as_slice()[target].max(1e-12);
        Ok((-p.ln(), probs))
    }

    /// Gradient of the loss with respect to the logits: `p - onehot`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when `target` is out of range.
    pub fn backward(&self, probs: &Tensor, target: usize) -> Result<Tensor, NnError> {
        if target >= probs.len() {
            return Err(NnError::BadInput {
                layer: "cross_entropy",
                reason: format!("target {target} >= {} classes", probs.len()),
            });
        }
        let mut grad = probs.clone();
        grad.as_mut_slice()[target] -= 1.0;
        Ok(grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcnn_tensor::Shape;

    fn logits(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(Shape::d1(n), v).unwrap()
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&logits(vec![1.0, 3.0, 2.0]));
        assert!((p.sum() - 1.0).abs() < 1e-6);
        assert_eq!(p.argmax(), Some(1));
        assert!(p.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&logits(vec![1.0, 2.0, 3.0]));
        let b = softmax(&logits(vec![1001.0, 1002.0, 1003.0]));
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
        let huge = softmax(&logits(vec![1e30, -1e30]));
        assert!(huge.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_in_place_bit_identical_to_softmax() {
        for raw in [
            vec![1.0, 3.0, 2.0],
            vec![-5.5, 0.0, 5.5, 17.25],
            vec![1e30, -1e30],
            vec![f32::NEG_INFINITY, 0.0, 1.0],
            vec![42.0],
        ] {
            let oracle = softmax(&logits(raw.clone()));
            let mut buf = raw;
            softmax_in_place(&mut buf);
            for (a, b) in buf.iter().zip(oracle.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn loss_zero_for_confident_correct() {
        let loss = CrossEntropyLoss::new();
        let (l, _) = loss.forward(&logits(vec![100.0, 0.0, 0.0]), 0).unwrap();
        assert!(l < 1e-3);
        let (l_bad, _) = loss.forward(&logits(vec![100.0, 0.0, 0.0]), 1).unwrap();
        assert!(l_bad > 10.0);
    }

    #[test]
    fn uniform_logits_give_log_n() {
        let loss = CrossEntropyLoss::new();
        let (l, _) = loss.forward(&logits(vec![0.0; 8]), 3).unwrap();
        assert!((l - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn backward_is_p_minus_onehot() {
        let loss = CrossEntropyLoss::new();
        let (_, p) = loss.forward(&logits(vec![1.0, 2.0, 0.5]), 1).unwrap();
        let g = loss.backward(&p, 1).unwrap();
        assert!((g.sum()).abs() < 1e-6, "gradient sums to zero");
        assert!(g.as_slice()[1] < 0.0);
        assert!(g.as_slice()[0] > 0.0 && g.as_slice()[2] > 0.0);
    }

    #[test]
    fn gradient_matches_numeric() {
        let loss = CrossEntropyLoss::new();
        let base = vec![0.3f32, -0.7, 1.2, 0.1];
        let target = 2;
        let (_, p) = loss.forward(&logits(base.clone()), target).unwrap();
        let analytic = loss.backward(&p, target).unwrap();
        let eps = 1e-3f32;
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let (lp, _) = loss.forward(&logits(plus), target).unwrap();
            let (lm, _) = loss.forward(&logits(minus), target).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.as_slice()[i]).abs() < 1e-3,
                "logit {i}: numeric {numeric} vs analytic {}",
                analytic.as_slice()[i]
            );
        }
    }

    #[test]
    fn validation_errors() {
        let loss = CrossEntropyLoss::new();
        assert!(loss.forward(&logits(vec![1.0]), 1).is_err());
        assert!(loss
            .forward(&Tensor::from_vec(Shape::new(vec![0]), vec![]).unwrap(), 0)
            .is_err());
        let (_, p) = loss.forward(&logits(vec![0.0, 0.0]), 0).unwrap();
        assert!(loss.backward(&p, 5).is_err());
    }
}
