//! Property tests of the histogram exposition invariants.
//!
//! For arbitrary sample sets (log-uniform over the full `u64` range so
//! every octave of the log-linear layout gets hit), the rendered page
//! must parse back with every `_bucket` series non-decreasing in `le`
//! order, `_count` equal to the `+Inf` bucket and to the number of
//! samples, and `_sum` equal to the wrapping sample sum. The format
//! validator checks most of this structurally; the test re-derives the
//! invariants from the raw parsed samples so a validator bug cannot mask
//! an encoder bug.

use proptest::prelude::*;
use relcnn_obs::Registry;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bucket_series_are_cumulative_and_count_matches(
        samples in collection::vec(
            // v >> s is log-uniform in magnitude: unit buckets through
            // the top octaves all occur.
            (any::<u64>(), 0u32..64).prop_map(|(v, s)| v >> s),
            0..200,
        )
    ) {
        let reg = Registry::new();
        let hist = reg.histogram("relcnn_prop_latency", "property histogram", &[]);
        let mut sum = 0u64;
        for &v in &samples {
            hist.record(v);
            sum = sum.wrapping_add(v);
        }
        let page = reg.render();
        let parsed = relcnn_obs::parse::validate(&page)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{page}")))?;

        // _count == +Inf bucket == number of samples.
        let count = parsed
            .value("relcnn_prop_latency_count", &[])
            .ok_or_else(|| TestCaseError::fail("missing _count"))?;
        let inf = parsed
            .value("relcnn_prop_latency_bucket", &[("le", "+Inf")])
            .ok_or_else(|| TestCaseError::fail("missing +Inf bucket"))?;
        prop_assert_eq!(count, samples.len() as f64);
        prop_assert_eq!(inf, count, "+Inf bucket must equal _count");

        // _sum renders the exact (wrapping) integer sum.
        prop_assert!(
            page.contains(&format!("relcnn_prop_latency_sum {sum}")),
            "missing `relcnn_prop_latency_sum {}` in:\n{}", sum, page
        );

        // Every _bucket series, taken in increasing le, is non-decreasing
        // and tops out at the +Inf value.
        let mut buckets: Vec<(f64, f64)> = parsed
            .samples
            .iter()
            .filter(|s| s.name == "relcnn_prop_latency_bucket")
            .map(|s| {
                let le = &s.labels.iter().find(|(k, _)| k == "le").expect("le label").1;
                let le = if le == "+Inf" { f64::INFINITY } else { le.parse().expect("le") };
                (le, s.value)
            })
            .collect();
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le ordering"));
        let mut prev = 0.0f64;
        for &(le, cum) in &buckets {
            prop_assert!(
                cum >= prev,
                "bucket le={} dropped: {} < {}\n{}", le, cum, prev, page
            );
            prev = cum;
        }
        prop_assert_eq!(
            buckets.last().map(|&(_, c)| c),
            Some(inf),
            "top bucket must be +Inf's value"
        );
    }

    #[test]
    fn quantiles_are_bracketed_by_min_and_max(
        samples in collection::vec(0u64..1_000_000, 1..100),
        q in 0.0f64..1.0,
    ) {
        let reg = Registry::new();
        let hist = reg.histogram("relcnn_prop_q", "quantile histogram", &[]);
        for &v in &samples {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let lo = *samples.iter().min().expect("non-empty");
        let hi = *samples.iter().max().expect("non-empty");
        let quant = snap.quantile(q);
        // Bucket midpoints never leave the recorded range's buckets, and
        // q=1 is exact-max by contract.
        prop_assert!(
            quant <= hi.saturating_mul(2).max(8),
            "quantile {} above any bucket containing max {}", quant, hi
        );
        prop_assert_eq!(snap.quantile(1.0), hi);
        prop_assert!(snap.quantile(0.0) <= snap.quantile(1.0).max(8));
        let _ = lo;
    }
}
