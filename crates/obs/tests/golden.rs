//! Golden-file test of the Prometheus text encoder.
//!
//! Populates a registry with every value kind — a negative gauge, a
//! labelled counter family with an escaping-needy label value, and a
//! histogram spanning unit buckets — and byte-compares the rendered page
//! against `golden.expected`. Pins family name ordering, label ordering,
//! HELP/label escaping, and histogram cumulativity (`_bucket` series,
//! `+Inf`, `_sum`, `_count`) in one place: any encoder change that moves
//! a byte must consciously update the golden file.

use relcnn_obs::Registry;

#[test]
fn rendered_page_matches_the_golden_file() {
    let reg = Registry::new();

    let depth = reg.gauge(
        "relcnn_golden_depth",
        "Queue depth (may go negative in tests)",
        &[],
    );
    depth.set(-3);

    // HELP escaping: backslash and newline.
    let hist = reg.histogram(
        "relcnn_golden_latency_microseconds",
        "Latency in \\ microseconds\nper request",
        &[],
    );
    // Unit buckets (v < 8) have le == v and the [8,16) octave has unit
    // sub-buckets too, so the expected cumulative series is exact:
    // le 1 -> 1, le 3 -> 3, le 7 -> 4, le 10 -> 5, +Inf 5, sum 24.
    for v in [1, 3, 3, 7, 10] {
        hist.record(v);
    }

    let ok = reg.counter(
        "relcnn_golden_requests_total",
        "Requests by path and status",
        &[("path", "/metrics"), ("status", "200")],
    );
    ok.add(7);
    // Label-value escaping: quote, backslash (and series ordering after
    // the /metrics series).
    let weird = reg.counter(
        "relcnn_golden_requests_total",
        "Requests by path and status",
        &[("path", "/weird\"\\"), ("status", "404")],
    );
    weird.add(2);

    let page = reg.render();
    let expected = include_str!("golden.expected");
    assert_eq!(
        page, expected,
        "rendered page drifted from golden.expected:\n--- rendered ---\n{page}"
    );
    // The golden page itself must satisfy the format validator — keeps
    // the two test layers from drifting apart.
    relcnn_obs::parse::validate(expected).expect("golden file is valid exposition");
}
