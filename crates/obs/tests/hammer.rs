//! Concurrency hammer: 8 writer threads vs a live scraper.
//!
//! Writers hammer shared counter, gauge and histogram handles while a
//! scraper thread snapshots and renders the registry concurrently. Every
//! scraped page must (a) validate structurally — in particular every
//! histogram's `_count` must equal its `+Inf` bucket, the torn-read
//! hazard the snapshot design eliminates by deriving both from one
//! bucket-vector read — and (b) show counters that never move backwards
//! between successive scrapes. After the writers join, the final page
//! must account for every recorded event exactly.

use relcnn_obs::Registry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: usize = 8;
const EVENTS_PER_WRITER: u64 = 40_000;

#[test]
fn concurrent_scrapes_see_monotone_untorn_metrics() {
    let reg = Registry::new();
    let done = Arc::new(AtomicBool::new(false));

    // The scraper validates pages as fast as it can render them.
    let scraper = {
        let reg = reg.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            let mut last_events = 0.0f64;
            let mut last_hist_count = 0.0f64;
            while !done.load(Ordering::Acquire) {
                let page = reg.render();
                let parsed = relcnn_obs::parse::validate(&page)
                    .unwrap_or_else(|e| panic!("scrape {scrapes}: invalid page: {e}\n{page}"));
                // Counters are monotone across scrapes. (A fresh page can
                // omit a family registered later; missing ⇒ 0.)
                let events = parsed.sum("relcnn_hammer_events_total");
                assert!(
                    events >= last_events,
                    "scrape {scrapes}: events went backwards: {events} < {last_events}"
                );
                last_events = events;
                let hist_count = parsed
                    .value("relcnn_hammer_value_count", &[])
                    .unwrap_or(0.0);
                assert!(
                    hist_count >= last_hist_count,
                    "scrape {scrapes}: histogram count went backwards"
                );
                last_hist_count = hist_count;
                // _count == +Inf is re-checked here explicitly — the
                // exact invariant a torn read would break.
                if let Some(inf) = parsed.value("relcnn_hammer_value_bucket", &[("le", "+Inf")]) {
                    assert_eq!(inf, hist_count, "scrape {scrapes}: torn histogram read");
                }
                scrapes += 1;
            }
            scrapes
        })
    };

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let reg = reg.clone();
            scope.spawn(move || {
                // Each writer registers its own labelled series plus the
                // shared (idempotent) histogram and gauge — exercising
                // registration racing scrapes too.
                let wid = w.to_string();
                let events = reg.counter(
                    "relcnn_hammer_events_total",
                    "events per writer",
                    &[("writer", &wid)],
                );
                let hist = reg.histogram("relcnn_hammer_value", "hammered histogram", &[]);
                let gauge = reg.gauge("relcnn_hammer_level", "hammered gauge", &[]);
                for i in 0..EVENTS_PER_WRITER {
                    events.inc();
                    // Spread across octaves so cumulative emission has
                    // many occupied buckets to get wrong.
                    hist.record((i ^ (w as u64) << 40) >> (i % 48));
                    gauge.set((i % 1000) as i64 - 500);
                }
            });
        }
    });
    done.store(true, Ordering::Release);
    let scrapes = scraper.join().expect("scraper thread");
    assert!(scrapes > 0, "scraper never completed a page");

    // Final accounting: nothing lost, nothing double-counted.
    let page = reg.render();
    let parsed = relcnn_obs::parse::validate(&page).expect("final page valid");
    let total = (WRITERS as u64 * EVENTS_PER_WRITER) as f64;
    assert_eq!(parsed.sum("relcnn_hammer_events_total"), total);
    assert_eq!(parsed.value("relcnn_hammer_value_count", &[]), Some(total));
    assert_eq!(
        parsed.value("relcnn_hammer_value_bucket", &[("le", "+Inf")]),
        Some(total)
    );
    println!("hammer: {scrapes} concurrent scrapes validated against {total} events");
}
