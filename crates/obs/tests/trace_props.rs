//! Property and stress tests of the flight-recorder ring invariants.
//!
//! The contracts under test are the two that make a bounded flight
//! recorder trustworthy: wrap-around never tears a span (a drained
//! snapshot holds only whole begin/end pairs, checked both on the
//! records and through the Chrome exporter + validator), and the drop
//! counter *exactly* equals the events lost — recorded minus drained is
//! accounted loss, not silent loss. A hammer test races eight writer
//! threads against a concurrent drainer to check the same accounting
//! under contention and across multiple drains.

use proptest::prelude::*;
use relcnn_obs::trace::{export_chrome, validate, Arg, TraceRecord, TraceRecorder};

/// One scripted ring operation: `true` records a span (2 events),
/// `false` an instant (1 event).
fn apply(ring: &relcnn_obs::TraceRing, op: bool, i: usize, ts: &mut u64) -> u64 {
    if op {
        let begin = *ts;
        *ts += 2;
        ring.span("work", "prop", begin, *ts, &[Arg::U("i", i as u64)]);
        2
    } else {
        *ts += 1;
        ring.instant("mark", "prop", *ts, &[Arg::U("i", i as u64)]);
        1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wrap_never_tears_a_span_and_drops_are_exact(
        ops in collection::vec(any::<bool>(), 0..300),
        capacity in 1usize..48,
    ) {
        let tr = TraceRecorder::with_capacity("prop", capacity);
        let ring = tr.ring("r");
        let mut ts = 0u64;
        let mut pushed_events = 0u64;
        for (i, &op) in ops.iter().enumerate() {
            pushed_events += apply(&ring, op, i, &mut ts);
        }
        let snap = tr.drain();
        // Ring registration is eager: the track exists even before any
        // record lands in it.
        prop_assert_eq!(snap.threads.len(), 1);
        let (recorded, dropped, drained_events, records) = match snap.threads.first() {
            Some(t) => (
                t.recorded_events,
                t.dropped_events,
                t.records.iter().map(TraceRecord::events).sum::<u64>(),
                t.records.clone(),
            ),
            None => (0, 0, 0, Vec::new()),
        };

        // The drop counter exactly equals events lost to eviction.
        prop_assert_eq!(recorded, pushed_events);
        prop_assert_eq!(dropped, pushed_events - drained_events);
        prop_assert!(records.len() <= capacity);

        // The retained window is exactly the newest suffix: contiguous,
        // strictly increasing seq, ending at the last pushed record.
        let seqs: Vec<u64> = records.iter().map(TraceRecord::seq).collect();
        for w in seqs.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1);
        }
        if let Some(&last) = seqs.last() {
            prop_assert_eq!(last, ops.len() as u64 - 1);
        }

        // Every span survives whole: the exported document balances its
        // B/E pairs, which the validator rejects otherwise.
        let json = export_chrome(&[snap]);
        let parsed = validate(&json)
            .map_err(|e| TestCaseError::fail(format!("torn export: {e}")))?;
        prop_assert_eq!(parsed.count('B', "work"), parsed.count('E', "work"));
    }
}

#[test]
fn hammer_eight_writers_racing_a_drainer() {
    const WRITERS: usize = 8;
    const OPS_PER_WRITER: u64 = 4_000;
    let tr = TraceRecorder::with_capacity("hammer", 64);
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

    // A drainer races the writers, repeatedly stealing whole windows.
    let drainer = {
        let tr = tr.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut drains = Vec::new();
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                drains.push(tr.drain());
                std::thread::yield_now();
            }
            drains
        })
    };

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let ring = tr.ring(&format!("writer-{w}"));
            scope.spawn(move || {
                let mut ts = 0u64;
                for i in 0..OPS_PER_WRITER {
                    if i % 3 == 0 {
                        ts += 1;
                        ring.instant("mark", "hammer", ts, &[Arg::U("i", i)]);
                    } else {
                        let begin = ts;
                        ts += 2;
                        ring.span("work", "hammer", begin, ts, &[Arg::U("i", i)]);
                    }
                }
            });
        }
    });
    stop.store(true, std::sync::atomic::Ordering::Release);
    let mut drains = drainer.join().expect("drainer");
    drains.push(tr.drain());

    // Per ring: seqs strictly increase across the concatenated drains
    // (no record is lost to a drain race, none duplicated), and the
    // final cumulative counters balance: recorded == drained + dropped.
    for w in 0..WRITERS {
        let label = format!("writer-{w}");
        let mut drained_events = 0u64;
        let mut last_seq: Option<u64> = None;
        let mut totals = (0u64, 0u64);
        for snap in &drains {
            for t in snap.threads.iter().filter(|t| t.label == label) {
                for rec in &t.records {
                    assert!(
                        last_seq.is_none_or(|p| rec.seq() > p),
                        "{label}: seq {} not increasing past {last_seq:?}",
                        rec.seq()
                    );
                    last_seq = Some(rec.seq());
                    drained_events += rec.events();
                }
                totals = (t.recorded_events, t.dropped_events);
            }
        }
        let (recorded, dropped) = totals;
        let expected: u64 = (0..OPS_PER_WRITER)
            .map(|i| if i % 3 == 0 { 1 } else { 2 })
            .sum();
        assert_eq!(recorded, expected, "{label}: recorded events");
        assert_eq!(
            recorded,
            drained_events + dropped,
            "{label}: accounting must balance exactly"
        );
    }

    // Every drained window still exports a validator-clean timeline.
    let json = export_chrome(&drains);
    validate(&json).expect("hammered export must validate");
}
