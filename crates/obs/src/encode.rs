//! Prometheus text exposition (format version 0.0.4).
//!
//! Encodes a frozen [`Snapshot`] — never live handles — so the output is
//! a consistent point-in-time view. Families are emitted in sorted name
//! order and series in sorted label order (both guaranteed by the
//! registry's `BTreeMap`s), making the page deterministic for a given
//! set of values: the golden-file test diffs it byte-for-byte.
//!
//! Histograms are exported natively from the log-linear buckets as
//! cumulative `_bucket{le=...}` series (occupied buckets only, plus the
//! mandatory `le="+Inf"`), `_sum`, and `_count`; `_count` is taken from
//! the same snapshot sum as the `+Inf` bucket, so the two always agree.

use crate::registry::{FamilySnapshot, MetricKind, Snapshot, ValueSnapshot};
use std::fmt::Write as _;

/// Escapes a `# HELP` string: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double-quote, newline.
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a label set (already sorted), optionally with one extra
/// trailing label (used for `le`). Returns `""` for no labels.
fn fmt_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    format!("{{{}}}", parts.join(","))
}

fn encode_family(out: &mut String, family: &FamilySnapshot) {
    let name = &family.name;
    if !family.help.is_empty() {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
    }
    let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
    for series in &family.series {
        match &series.value {
            ValueSnapshot::Counter(v) => {
                let _ = writeln!(out, "{name}{} {v}", fmt_labels(&series.labels, None));
            }
            ValueSnapshot::Gauge(v) => {
                let _ = writeln!(out, "{name}{} {v}", fmt_labels(&series.labels, None));
            }
            ValueSnapshot::Histogram(h) => {
                debug_assert_eq!(family.kind, MetricKind::Histogram);
                for (le, cum) in h.cumulative() {
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {cum}",
                        fmt_labels(&series.labels, Some(("le", &le.to_string())))
                    );
                }
                let count = h.count();
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {count}",
                    fmt_labels(&series.labels, Some(("le", "+Inf")))
                );
                let _ = writeln!(
                    out,
                    "{name}_sum{} {}",
                    fmt_labels(&series.labels, None),
                    h.sum()
                );
                let _ = writeln!(
                    out,
                    "{name}_count{} {count}",
                    fmt_labels(&series.labels, None)
                );
            }
        }
    }
}

/// Encodes a full snapshot as one Prometheus text page.
pub fn encode(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for family in snapshot {
        encode_family(&mut out, family);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_rules() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(
            escape_label_value("say \"hi\"\\\n"),
            "say \\\"hi\\\"\\\\\\n"
        );
    }

    #[test]
    fn label_rendering() {
        assert_eq!(fmt_labels(&[], None), "");
        let labels = vec![("a".to_string(), "1".to_string())];
        assert_eq!(fmt_labels(&labels, None), "{a=\"1\"}");
        assert_eq!(
            fmt_labels(&labels, Some(("le", "+Inf"))),
            "{a=\"1\",le=\"+Inf\"}"
        );
        assert_eq!(fmt_labels(&[], Some(("le", "7"))), "{le=\"7\"}");
    }
}
