//! A small validating parser for the Prometheus text format.
//!
//! Not a general scrape client — just enough to let CI and tests hold a
//! `/metrics` page to the format's structural rules:
//!
//! - every sample line parses (`name{labels} value`, escapes honoured);
//! - every sample's family has a `# TYPE` declaration (histogram
//!   samples resolve through their `_bucket`/`_sum`/`_count` suffix);
//! - per histogram series: `le` values strictly increase, cumulative
//!   bucket counts are non-decreasing, `le="+Inf"` is present and
//!   equals `_count`, and `_sum` exists;
//! - no duplicate sample (same name + label set).
//!
//! Violations return `Err(String)` describing the first offence.

use std::collections::{BTreeMap, BTreeSet};

/// A sorted label set as parsed off the page.
pub type Labels = Vec<(String, String)>;

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full metric name as written (including any histogram suffix).
    pub name: String,
    /// Sorted `(label, value)` pairs.
    pub labels: Labels,
    /// The sample value.
    pub value: f64,
}

/// A validated page: samples plus the declared family types.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    /// Every sample, in page order.
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations: family name → kind string.
    pub types: BTreeMap<String, String>,
}

impl Parsed {
    /// The value of the sample with exactly these labels (order
    /// insensitive), if present.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == want)
            .map(|s| s.value)
    }

    /// Sum of every series of `name` (any labels).
    pub fn sum(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// Whether any series of `name` exists.
    pub fn has(&self, name: &str) -> bool {
        self.samples.iter().any(|s| s.name == name)
    }

    /// The distinct values the label `key` takes across every series of
    /// `name`, sorted and deduplicated — e.g. the set of `class` labels
    /// a per-class family actually exported.
    pub fn label_values(&self, name: &str, key: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .samples
            .iter()
            .filter(|s| s.name == name)
            .flat_map(|s| s.labels.iter())
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s
            .parse::<f64>()
            .map_err(|e| format!("bad value {s:?}: {e}")),
    }
}

/// Parses `{k="v",...}`, returning the sorted pairs and the rest of the
/// line after the closing brace.
fn parse_labels(s: &str) -> Result<(Labels, &str), String> {
    let mut labels = Vec::new();
    let mut rest = &s[1..]; // past '{'
    loop {
        rest = rest.trim_start_matches(',');
        if let Some(r) = rest.strip_prefix('}') {
            labels.sort();
            return Ok((labels, r));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = rest[..eq].to_string();
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("label value not quoted after {key}"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    other => return Err(format!("bad escape {other:?} in label {key}")),
                },
                '"' => {
                    end = Some(i + 1);
                    break;
                }
                _ => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value for {key}"))?;
        labels.push((key, value));
        rest = &rest[end..];
    }
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .ok_or_else(|| format!("no value on line {line:?}"))?;
    let name = line[..name_end].to_string();
    if name.is_empty() {
        return Err(format!("empty metric name on line {line:?}"));
    }
    let rest = &line[name_end..];
    let (labels, rest) = if rest.starts_with('{') {
        parse_labels(rest)?
    } else {
        (Vec::new(), rest)
    };
    let mut parts = rest.split_whitespace();
    let value = parse_value(parts.next().ok_or_else(|| format!("no value for {name}"))?)?;
    // An optional trailing timestamp is allowed by the format; anything
    // after that is an error.
    if parts.next().is_some() && parts.next().is_some() {
        return Err(format!("trailing garbage after sample {name}"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// The family a sample belongs to, resolving histogram suffixes against
/// the declared types.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).is_some_and(|k| k == "histogram") {
                return base;
            }
        }
    }
    name
}

/// Parses and structurally validates one text-format page.
pub fn validate(text: &str) -> Result<Parsed, String> {
    let mut parsed = Parsed::default();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let name = it.next().ok_or_else(|| err("TYPE without name".into()))?;
                let kind = it.next().ok_or_else(|| err("TYPE without kind".into()))?;
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                    return Err(err(format!("unknown TYPE kind {kind:?}")));
                }
                if parsed
                    .types
                    .insert(name.to_string(), kind.to_string())
                    .is_some()
                {
                    return Err(err(format!("duplicate TYPE for {name}")));
                }
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl.split_whitespace().next().unwrap_or("");
                if !helps.insert(name.to_string()) {
                    return Err(err(format!("duplicate HELP for {name}")));
                }
            }
            continue;
        }
        parsed.samples.push(parse_sample(line).map_err(err)?);
    }

    // Every sample family must be typed; no duplicate series.
    let mut seen: BTreeSet<(String, Vec<(String, String)>)> = BTreeSet::new();
    for s in &parsed.samples {
        let family = family_of(&s.name, &parsed.types);
        if !parsed.types.contains_key(family) {
            return Err(format!("sample {} has no # TYPE declaration", s.name));
        }
        if !seen.insert((s.name.clone(), s.labels.clone())) {
            return Err(format!("duplicate series {} {:?}", s.name, s.labels));
        }
    }

    // Histogram structure: group buckets by (family, labels minus le).
    for (family, kind) in &parsed.types {
        if kind != "histogram" {
            continue;
        }
        let bucket_name = format!("{family}_bucket");
        let mut groups: BTreeMap<Labels, Vec<(f64, f64)>> = BTreeMap::new();
        for s in parsed.samples.iter().filter(|s| s.name == bucket_name) {
            let mut le = None;
            let rest: Labels = s
                .labels
                .iter()
                .filter(|(k, v)| {
                    if k == "le" {
                        le = Some(v.clone());
                        false
                    } else {
                        true
                    }
                })
                .cloned()
                .collect();
            let le = le.ok_or_else(|| format!("{bucket_name} without le label"))?;
            let le = parse_value(&le)?;
            groups.entry(rest).or_default().push((le, s.value));
        }
        for (labels, buckets) in &groups {
            let mut prev_le = f64::NEG_INFINITY;
            let mut prev_cum = -1.0;
            let mut inf_count = None;
            for &(le, cum) in buckets {
                if le <= prev_le {
                    return Err(format!(
                        "{bucket_name}{labels:?}: le values not strictly increasing at {le}"
                    ));
                }
                if cum < prev_cum {
                    return Err(format!(
                        "{bucket_name}{labels:?}: cumulative count decreased at le={le}"
                    ));
                }
                if le.is_infinite() {
                    inf_count = Some(cum);
                }
                prev_le = le;
                prev_cum = cum;
            }
            let inf_count = inf_count
                .ok_or_else(|| format!("{bucket_name}{labels:?}: missing le=\"+Inf\" bucket"))?;
            let want: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let count = parsed
                .value(&format!("{family}_count"), &want)
                .ok_or_else(|| format!("{family}_count missing for {labels:?}"))?;
            if count != inf_count {
                return Err(format!(
                    "{family}{labels:?}: _count {count} != +Inf bucket {inf_count}"
                ));
            }
            if parsed.value(&format!("{family}_sum"), &want).is_none() {
                return Err(format!("{family}_sum missing for {labels:?}"));
            }
        }
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_page() {
        let page = "\
# HELP c a counter
# TYPE c counter
c{worker=\"0\"} 3
c{worker=\"1\"} 4
# TYPE g gauge
g -7
# TYPE h histogram
h_bucket{le=\"7\"} 2
h_bucket{le=\"15\"} 5
h_bucket{le=\"+Inf\"} 6
h_sum 123
h_count 6
";
        let p = validate(page).expect("valid page");
        assert_eq!(p.value("c", &[("worker", "1")]), Some(4.0));
        assert_eq!(p.sum("c"), 7.0);
        assert_eq!(p.value("g", &[]), Some(-7.0));
        assert_eq!(p.types.get("h").map(String::as_str), Some("histogram"));
        assert!(p.has("h_bucket"));
        assert_eq!(p.label_values("c", "worker"), vec!["0", "1"]);
        assert!(p.label_values("g", "worker").is_empty());
    }

    #[test]
    fn rejects_structural_violations() {
        // Untyped sample.
        assert!(validate("x 1\n").is_err());
        // Duplicate series.
        assert!(validate("# TYPE c counter\nc 1\nc 2\n").is_err());
        // Cumulative decrease.
        let dec = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate(dec).unwrap_err().contains("decreased"));
        // _count disagrees with +Inf.
        let mismatch = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n";
        assert!(validate(mismatch).unwrap_err().contains("_count"));
        // Missing +Inf.
        let noinf = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate(noinf).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn label_escapes_round_trip() {
        let page = "# TYPE c counter\nc{msg=\"say \\\"hi\\\"\\\\\\n\"} 1\n";
        let p = validate(page).expect("valid");
        assert_eq!(p.value("c", &[("msg", "say \"hi\"\\\n")]), Some(1.0));
    }
}
