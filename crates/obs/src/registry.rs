//! The metric registry: names + labels → shared atomic handles.
//!
//! The registry mutex is held only while *registering* a series or
//! *snapshotting* values — never while a metric is updated. Writers hold
//! plain `Arc` handles ([`Counter`], [`Gauge`], [`Histogram`]) and touch
//! atomics directly, which is what makes publication safe on the
//! engine's deterministic hot path. A scrape copies every value under
//! the lock into a plain [`Snapshot`] and encodes it unlocked.
//!
//! Registration is idempotent: asking for a series that already exists
//! (same name, kind, and label set) returns a clone of the existing
//! handle, so two engines attached to the same registry share counters
//! instead of colliding.

use crate::encode;
use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Metric kind, as declared by `# TYPE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Free-moving gauge.
    Gauge,
    /// Log-linear histogram.
    Histogram,
}

impl MetricKind {
    /// The `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    /// Keyed by the sorted label vector for deterministic exposition
    /// order and O(log n) idempotent re-registration.
    series: BTreeMap<Vec<(String, String)>, Handle>,
}

#[derive(Debug, Default)]
struct Inner {
    families: BTreeMap<String, Family>,
}

/// A shared, cheaply clonable metric registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

/// One metric value frozen at scrape time.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Full histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// One labelled series frozen at scrape time.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Sorted `(label, value)` pairs.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: ValueSnapshot,
}

/// One metric family frozen at scrape time.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Metric name.
    pub name: String,
    /// `# HELP` text.
    pub help: String,
    /// `# TYPE` kind.
    pub kind: MetricKind,
    /// Series in sorted label order.
    pub series: Vec<SeriesSnapshot>,
}

/// Everything a registry held at one instant, in sorted family order.
pub type Snapshot = Vec<FamilySnapshot>;

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .next()
            .is_some_and(|b| b.is_ascii_alphabetic() || b == b'_' || b == b':')
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
}

fn valid_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .next()
            .is_some_and(|b| b.is_ascii_alphabetic() || b == b'_')
        && s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or re-finds) a counter series and returns its handle.
    ///
    /// # Panics
    /// On an invalid metric/label name, a kind clash with an existing
    /// family, or the reserved label name `le`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, MetricKind::Counter, labels, || {
            Handle::Counter(Counter::new())
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Registers (or re-finds) a gauge series and returns its handle.
    ///
    /// # Panics
    /// See [`counter`](Registry::counter).
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, MetricKind::Gauge, labels, || {
            Handle::Gauge(Gauge::new())
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Registers (or re-finds) a histogram series and returns its handle.
    ///
    /// # Panics
    /// See [`counter`](Registry::counter).
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, MetricKind::Histogram, labels, || {
            Handle::Histogram(Histogram::new())
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| {
                assert!(valid_label_name(k), "invalid label name {k:?} on {name}");
                assert!(
                    k != "le",
                    "label name \"le\" is reserved for histogram buckets"
                );
                (k.to_string(), v.to_string())
            })
            .collect();
        key.sort();
        assert!(
            key.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate label name on {name}"
        );

        let mut inner = self.inner.lock().expect("metric registry poisoned");
        let family = inner
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                kind,
                series: BTreeMap::new(),
            });
        assert_eq!(
            family.kind,
            kind,
            "metric {name} already registered as {}",
            family.kind.as_str()
        );
        family.series.entry(key).or_insert_with(make).clone()
    }

    /// Freezes every registered value into a [`Snapshot`]. The lock is
    /// held only for the copy; histograms copy their bucket arrays, so
    /// later encoding never races writers.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("metric registry poisoned");
        inner
            .families
            .iter()
            .map(|(name, family)| FamilySnapshot {
                name: name.clone(),
                help: family.help.clone(),
                kind: family.kind,
                series: family
                    .series
                    .iter()
                    .map(|(labels, handle)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: match handle {
                            Handle::Counter(c) => ValueSnapshot::Counter(c.get()),
                            Handle::Gauge(g) => ValueSnapshot::Gauge(g.get()),
                            Handle::Histogram(h) => ValueSnapshot::Histogram(h.snapshot()),
                        },
                    })
                    .collect(),
            })
            .collect()
    }

    /// Snapshot + encode in one call: the full Prometheus text page.
    pub fn render(&self) -> String {
        encode::encode(&self.snapshot())
    }

    /// Number of registered families (diagnostic).
    pub fn family_count(&self) -> usize {
        self.inner
            .lock()
            .expect("metric registry poisoned")
            .families
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reregistration_returns_the_same_handle() {
        let reg = Registry::new();
        let a = reg.counter("relcnn_test_total", "help", &[("worker", "0")]);
        let b = reg.counter(
            "relcnn_test_total",
            "other help ignored",
            &[("worker", "0")],
        );
        assert!(a.same_as(&b));
        a.add(5);
        assert_eq!(b.get(), 5);
        // Different labels → a distinct series in the same family.
        let c = reg.counter("relcnn_test_total", "help", &[("worker", "1")]);
        assert!(!a.same_as(&c));
        assert_eq!(reg.family_count(), 1);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = Registry::new();
        let a = reg.gauge("g", "h", &[("a", "1"), ("b", "2")]);
        let b = reg.gauge("g", "h", &[("b", "2"), ("a", "1")]);
        assert!(a.same_as(&b));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_panics() {
        let reg = Registry::new();
        reg.counter("m", "h", &[]);
        reg.gauge("m", "h", &[]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn le_label_is_reserved() {
        let reg = Registry::new();
        reg.histogram("h", "h", &[("le", "5")]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        let reg = Registry::new();
        reg.counter("9starts_with_digit", "h", &[]);
    }
}
