//! Vendored scrape endpoint: a minimal HTTP/1.1 responder on std's
//! `TcpListener`, answering `GET /metrics` only.
//!
//! Deliberately tiny — no crates.io dependency per the standing vendor
//! policy, no keep-alive, no TLS, one accept thread, connections served
//! inline (a scrape is one small read + one write; Prometheus scrapes
//! are seconds apart). Bind to `127.0.0.1:0` for an ephemeral test port
//! and read it back with [`ScrapeServer::addr`]. Shutdown sets a flag
//! and unblocks the accept loop with a self-connection; dropping the
//! server shuts it down.

use crate::registry::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest request head we will buffer before answering 400.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A running `/metrics` responder.
#[derive(Debug)]
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // A scraper that hung up mid-response is its problem, not ours.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
}

fn serve_connection(mut stream: TcpStream, registry: &Registry) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the header terminator; the request has no body.
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return,
        }
        if buf.len() > MAX_REQUEST_BYTES {
            respond(
                &mut stream,
                "400 Bad Request",
                "text/plain",
                "request too large\n",
            );
            return;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    match (method, path) {
        ("GET", "/metrics") => {
            let body = registry.render();
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4", &body);
        }
        ("GET", _) => respond(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "only /metrics\n",
        ),
        _ => respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n",
        ),
    }
}

impl ScrapeServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`, or port 0 for ephemeral)
    /// and starts the accept thread.
    pub fn bind(addr: impl ToSocketAddrs, registry: Registry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("relcnn-obs-scrape".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        serve_connection(stream, &registry);
                    }
                }
            })?;
        Ok(ScrapeServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // Unblock the accept loop; an error just means it is gone.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One blocking scrape over a plain TCP socket: sends `GET <path>` and
/// returns `(status line, body)`. The test/CI-side counterpart of the
/// responder, so smoke checks need no HTTP client either.
pub fn scrape_once(addr: SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let status = head.lines().next().unwrap_or("").to_string();
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_and_rejects_everything_else() {
        let reg = Registry::new();
        let c = reg.counter("relcnn_http_test_total", "a counter", &[]);
        c.add(9);
        let server = ScrapeServer::bind("127.0.0.1:0", reg.clone()).expect("bind");
        let addr = server.addr();

        let (status, body) = scrape_once(addr, "/metrics").expect("scrape");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("relcnn_http_test_total 9"), "{body}");
        let parsed = crate::parse::validate(&body).expect("valid exposition");
        assert_eq!(parsed.value("relcnn_http_test_total", &[]), Some(9.0));

        let (status, _) = scrape_once(addr, "/other").expect("scrape");
        assert!(status.contains("404"), "{status}");

        // Live updates are visible on the next scrape.
        c.add(1);
        let (_, body) = scrape_once(addr, "/metrics").expect("scrape");
        assert!(body.contains("relcnn_http_test_total 10"), "{body}");

        server.shutdown();
    }
}
