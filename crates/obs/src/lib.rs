//! Live metrics plane: lock-light registry, Prometheus text exposition,
//! and a vendored scrape endpoint.
//!
//! The crate is pure std (per the workspace's no-crates.io vendor
//! policy) and deliberately one-directional: *writers* hold cheap
//! `Arc`-backed handles ([`Counter`] / [`Gauge`] / [`Histogram`]) and
//! perform relaxed atomic adds — nothing else — so publication can sit
//! on the engine's deterministic hot path without perturbing it;
//! *readers* snapshot the registry and encode the frozen copy. The
//! result-path/observability split is proven end to end by the CI
//! determinism matrix, which byte-diffs campaign artefacts with metrics
//! enabled against disabled.
//!
//! ```text
//!  writers (hot path)                reader (scrape path)
//!  ──────────────────                ────────────────────
//!  Counter::add ──┐
//!  Gauge::set   ──┼─ relaxed atomics ──► Registry::snapshot ─► encode
//!  Histogram::record ┘                     (brief lock, copy)   (no lock)
//!                                              │
//!                              ScrapeServer GET /metrics
//!                              IntervalDumper → sink
//! ```
//!
//! Histograms share `relcnn-runtime`'s log-linear bucket layout, so
//! `LatencyHistogram`s export natively as cumulative Prometheus
//! `_bucket`/`_sum`/`_count` series via [`Histogram::merge_dense`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dump;
pub mod encode;
pub mod http;
pub mod metric;
pub mod parse;
pub mod registry;
pub mod trace;

pub use dump::IntervalDumper;
pub use http::{scrape_once, ScrapeServer};
pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{FamilySnapshot, MetricKind, Registry, SeriesSnapshot, Snapshot, ValueSnapshot};
pub use trace::{TraceRecorder, TraceRing, TraceSnapshot};
