//! Atomic metric handles.
//!
//! A handle is a cheaply clonable `Arc` around one or more atomics; the
//! writer side (engine workers, the aggregator, the admission queue)
//! performs relaxed atomic adds and nothing else, so publication can sit
//! directly on hot paths without perturbing them. The reader side takes
//! a [`snapshot`](Histogram::snapshot) — a plain copy of the atomics —
//! and all derived quantities (cumulative buckets, quantiles) are
//! computed from that frozen copy, so a scrape can never observe a
//! structurally inconsistent histogram: `_count` is *defined* as the top
//! cumulative bucket of the snapshot rather than read separately.
//!
//! The histogram uses the exact log-linear bucket layout of
//! `relcnn_runtime::LatencyHistogram` (8 exact unit buckets below 8,
//! then 8 sub-buckets per power of two, 496 buckets total) so dense
//! bucket counts can be transplanted between the two with
//! [`Histogram::merge_dense`] — the native-export bridge the Prometheus
//! encoder rides. The layout equivalence is pinned by a cross-crate test
//! in `relcnn-runtime`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Total bucket count: 8 unit buckets + 8 sub-buckets for each power of
/// two from 2^3 through 2^63. Must match `LatencyHistogram`.
pub const NUM_BUCKETS: usize = 8 + 61 * 8;

/// Bucket index of a sample: exact below 8, log-linear above (the top
/// three bits below the most significant bit select the sub-bucket).
pub fn bucket_index(v: u64) -> usize {
    if v < 8 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (msb - 3)) & 0b111) as usize;
    8 + 8 * (msb - 3) + sub
}

/// Inclusive lower bound of a bucket.
pub fn bucket_lo(index: usize) -> u64 {
    if index < 8 {
        return index as u64;
    }
    let octave = 3 + (index - 8) / 8;
    let sub = ((index - 8) % 8) as u64;
    (8 + sub) << (octave - 3)
}

/// Width of a bucket in sample units.
pub fn bucket_width(index: usize) -> u64 {
    if index < 8 {
        1
    } else {
        1 << ((index - 8) / 8)
    }
}

/// Inclusive upper bound of a bucket — the Prometheus `le` value for
/// integer samples (`lo + width - 1`, saturating at `u64::MAX`).
pub fn bucket_le(index: usize) -> u64 {
    bucket_lo(index).saturating_add(bucket_width(index) - 1)
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }

    /// Whether two handles share the same underlying atomic.
    pub fn same_as(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Raises the value to `v` if it is currently lower.
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Relaxed);
    }

    /// Adds `n` (may be negative via [`sub`](Gauge::sub)).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }

    /// Whether two handles share the same underlying atomic.
    pub fn same_as(&self, other: &Gauge) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: Vec<AtomicU64>, // NUM_BUCKETS long
    sum: AtomicU64,
    max: AtomicU64,
}

/// A fixed-layout log-linear histogram of `u64` samples, recordable from
/// any number of threads concurrently.
///
/// The sample count is not stored separately: a snapshot derives it as
/// the sum of the bucket counts it read, so the Prometheus invariant
/// `_count == le="+Inf" bucket` holds *by construction* even when a
/// scrape races writers.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A fresh, unregistered histogram with no samples.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.0.sum.fetch_add(v, Relaxed);
        self.0.max.fetch_max(v, Relaxed);
    }

    /// Folds a dense per-bucket count vector (the
    /// `LatencyHistogram::dense_counts` layout) plus its sample sum and
    /// max into this histogram — the native-export bridge for
    /// already-aggregated histograms.
    ///
    /// # Panics
    /// If `counts` is longer than the fixed bucket layout.
    pub fn merge_dense(&self, counts: &[u64], sum: u64, max: u64) {
        assert!(
            counts.len() <= NUM_BUCKETS,
            "dense histogram has {} buckets, layout holds {NUM_BUCKETS}",
            counts.len()
        );
        for (idx, &n) in counts.iter().enumerate() {
            if n != 0 {
                self.0.buckets[idx].fetch_add(n, Relaxed);
            }
        }
        self.0.sum.fetch_add(sum, Relaxed);
        self.0.max.fetch_max(max, Relaxed);
    }

    /// Copies the atomics into a plain [`HistogramSnapshot`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.0.buckets.iter().map(|b| b.load(Relaxed)).collect();
        HistogramSnapshot {
            counts,
            sum: self.0.sum.load(Relaxed),
            max: self.0.max.load(Relaxed),
        }
    }

    /// Whether two handles share the same underlying buckets.
    pub fn same_as(&self, other: &Histogram) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// A frozen copy of one histogram, taken at scrape time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Total samples — by definition the sum of the bucket counts, so it
    /// always equals the `+Inf` cumulative bucket.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all recorded sample values (wraps at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Cumulative `(le, count)` pairs for every *occupied* bucket, in
    /// increasing `le` order; the implicit final `+Inf` bucket is
    /// [`count`](HistogramSnapshot::count). Emitting only occupied
    /// buckets keeps the exposition compact (496 fixed buckets would
    /// dominate every scrape) while staying valid Prometheus: any `le`
    /// subset is permitted as long as the series is cumulative and
    /// `+Inf` is present.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            if n != 0 {
                cum += n;
                out.push((bucket_le(idx), cum));
            }
        }
        out
    }

    /// The `q`-quantile as the midpoint of the bucket holding the
    /// rank-`ceil(q·n)` sample; same convention as
    /// `LatencyHistogram::quantile`, including the edge cases (empty → 0
    /// for every `q`, `q <= 0` → first occupied bucket, `q >= 1` → the
    /// exact max).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = if q <= 0.0 {
            1
        } else {
            ((q * total as f64).ceil() as u64).clamp(1, total)
        };
        let mut seen = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            seen += n;
            if n != 0 && seen >= rank {
                let lo = bucket_lo(idx);
                return (lo + bucket_width(idx) / 2).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 43, "clones share the atomic");

        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set(-5);
        assert_eq!(g.get(), -5);
        g.set_max(2);
        g.set_max(-100);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn histogram_cumulative_is_monotone_and_count_matches() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 8, 9, 100, 100, 5_000, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 9);
        assert_eq!(snap.max(), u64::MAX);
        let cum = snap.cumulative();
        assert!(!cum.is_empty());
        let mut prev_le = None;
        let mut prev_cum = 0;
        for &(le, c) in &cum {
            if let Some(p) = prev_le {
                assert!(le > p, "le must strictly increase");
            }
            assert!(c >= prev_cum, "cumulative counts must be non-decreasing");
            prev_le = Some(le);
            prev_cum = c;
        }
        assert_eq!(cum.last().unwrap().1, snap.count());
    }

    #[test]
    fn bucket_le_contains_every_sample_of_its_bucket() {
        for v in [0u64, 5, 8, 12, 999, 123_456_789] {
            let idx = bucket_index(v);
            assert!(v <= bucket_le(idx), "{v} > le of its own bucket");
            assert!(v >= bucket_lo(idx));
        }
        assert_eq!(bucket_le(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn merge_dense_equals_recording() {
        let samples = [3u64, 17, 17, 4_096, 70_000];
        let direct = Histogram::new();
        let mut dense = vec![0u64; NUM_BUCKETS];
        let mut sum = 0u64;
        let mut max = 0u64;
        for &s in &samples {
            direct.record(s);
            dense[bucket_index(s)] += 1;
            sum += s;
            max = max.max(s);
        }
        let bridged = Histogram::new();
        bridged.merge_dense(&dense, sum, max);
        assert_eq!(direct.snapshot(), bridged.snapshot());
    }

    #[test]
    fn snapshot_quantile_edges() {
        let empty = Histogram::new().snapshot();
        assert_eq!(empty.quantile(0.0), 0);
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.quantile(1.0), 0);

        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(1.0), 100, "q=1.0 is the exact max");
        assert!(snap.quantile(0.0) <= snap.quantile(0.5));
        assert!(snap.quantile(0.5) <= snap.quantile(1.0));
    }
}
