//! Flight-recorder tracing plane: bounded per-thread rings of structured
//! span/instant events with a Chrome trace-event JSON exporter.
//!
//! The recorder is the timeline counterpart to the metrics [`Registry`]:
//! where metrics answer *how much*, the flight recorder answers *what
//! happened, in what order*. Subsystems record into per-thread
//! [`TraceRing`]s — each a bounded keep-newest ring behind its own
//! uncontended mutex — and a drainer turns the rings into a
//! [`TraceSnapshot`] that [`export_chrome`] renders as a Chrome
//! trace-event JSON file loadable in Perfetto or `chrome://tracing`.
//!
//! Three properties drive the design:
//!
//! * **Off-state is free.** A [`TraceRecorder::off`] recorder carries no
//!   allocation and every record call is a no-op on an `Option` that is
//!   `None`; instrumented code never branches on a config flag.
//! * **Wrap never tears a span.** A span is recorded as *one* ring
//!   record carrying both its begin and end timestamps, written at end
//!   time. Keep-newest eviction drops whole records, so a drained
//!   snapshot can never contain a begin without its end — the exporter
//!   expands each span into an adjacent `"B"`/`"E"` pair.
//! * **Loss is accounted.** Each ring counts recorded and dropped
//!   *events* (a span is two events, an instant one); the drop counter
//!   exactly equals events lost to eviction, so a timeline with gaps is
//!   detectable rather than silently misleading.
//!
//! [`Registry`]: crate::Registry

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-ring capacity, in records (not events).
pub const DEFAULT_RING_CAPACITY: usize = 8192;

// ---------------------------------------------------------------------------
// Record model
// ---------------------------------------------------------------------------

/// A borrowed argument at a record site: zero allocation when the ring
/// is off, converted to an owned [`TraceArg`] only when recording.
#[derive(Debug, Clone, Copy)]
pub enum Arg<'a> {
    /// Unsigned integer argument.
    U(&'static str, u64),
    /// Signed integer argument.
    I(&'static str, i64),
    /// String argument.
    S(&'static str, &'a str),
}

impl Arg<'_> {
    fn to_owned_arg(self) -> TraceArg {
        match self {
            Arg::U(k, v) => TraceArg {
                key: k.to_string(),
                value: ArgValue::U64(v),
            },
            Arg::I(k, v) => TraceArg {
                key: k.to_string(),
                value: ArgValue::I64(v),
            },
            Arg::S(k, v) => TraceArg {
                key: k.to_string(),
                value: ArgValue::Str(v.to_string()),
            },
        }
    }
}

/// An owned, serialisable argument value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// String.
    Str(String),
}

/// An owned key/value argument attached to a record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceArg {
    /// Argument name.
    pub key: String,
    /// Argument value.
    pub value: ArgValue,
}

/// One drained flight-recorder record.
///
/// Spans carry both endpoints in a single record (written at end time)
/// so ring eviction can never separate a begin from its end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceRecord {
    /// A duration span: `begin_us ..= end_us` on the recording thread.
    Span {
        /// Per-ring sequence number (strictly increasing, never reused).
        seq: u64,
        /// Event name, e.g. `chunk`.
        name: String,
        /// Category, e.g. `engine`.
        cat: String,
        /// Span start, microseconds on the recorder's clock.
        begin_us: u64,
        /// Span end, microseconds on the recorder's clock.
        end_us: u64,
        /// Typed arguments.
        args: Vec<TraceArg>,
    },
    /// A point-in-time event.
    Instant {
        /// Per-ring sequence number (strictly increasing, never reused).
        seq: u64,
        /// Event name, e.g. `requeue`.
        name: String,
        /// Category, e.g. `cluster`.
        cat: String,
        /// Timestamp, microseconds on the recorder's clock.
        ts_us: u64,
        /// Typed arguments.
        args: Vec<TraceArg>,
    },
}

impl TraceRecord {
    /// Number of Chrome trace events this record expands to (span = 2,
    /// instant = 1). Drop/recorded counters are denominated in events.
    pub fn events(&self) -> u64 {
        match self {
            TraceRecord::Span { .. } => 2,
            TraceRecord::Instant { .. } => 1,
        }
    }

    /// The record's per-ring sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            TraceRecord::Span { seq, .. } | TraceRecord::Instant { seq, .. } => *seq,
        }
    }

    /// The record's event name.
    pub fn name(&self) -> &str {
        match self {
            TraceRecord::Span { name, .. } | TraceRecord::Instant { name, .. } => name,
        }
    }
}

/// Drained state of one ring: its records in sequence order plus the
/// cumulative recorded/dropped event counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadSnapshot {
    /// Stable thread-track id within the recorder.
    pub tid: u64,
    /// Human-readable track label, e.g. `worker-3`.
    pub label: String,
    /// Cumulative events recorded into this ring (including dropped).
    pub recorded_events: u64,
    /// Cumulative events lost to keep-newest eviction.
    pub dropped_events: u64,
    /// Retained records, oldest first, in strictly increasing `seq`.
    pub records: Vec<TraceRecord>,
}

/// A drained recorder: one process track with its thread tracks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSnapshot {
    /// Process-track label, e.g. `head` or `worker-2`.
    pub process: String,
    /// Per-ring snapshots, ordered by `tid`.
    pub threads: Vec<ThreadSnapshot>,
}

impl TraceSnapshot {
    /// Total events recorded across all rings (including dropped).
    pub fn recorded_events(&self) -> u64 {
        self.threads.iter().map(|t| t.recorded_events).sum()
    }

    /// Total events lost to eviction across all rings.
    pub fn dropped_events(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped_events).sum()
    }

    /// True when no ring retained any record.
    pub fn is_empty(&self) -> bool {
        self.threads.iter().all(|t| t.records.is_empty())
    }
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

struct RingState {
    records: VecDeque<TraceRecord>,
    next_seq: u64,
    recorded_events: u64,
    dropped_events: u64,
}

struct Ring {
    tid: u64,
    label: String,
    capacity: usize,
    state: Mutex<RingState>,
}

impl Ring {
    fn push(&self, record: impl FnOnce(u64) -> TraceRecord) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let seq = st.next_seq;
        st.next_seq += 1;
        let rec = record(seq);
        st.recorded_events += rec.events();
        if st.records.len() == self.capacity {
            if let Some(old) = st.records.pop_front() {
                st.dropped_events += old.events();
            }
        }
        st.records.push_back(rec);
    }

    fn drain(&self) -> ThreadSnapshot {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        ThreadSnapshot {
            tid: self.tid,
            label: self.label.clone(),
            recorded_events: st.recorded_events,
            dropped_events: st.dropped_events,
            records: std::mem::take(&mut st.records).into(),
        }
    }
}

struct RecorderInner {
    process: String,
    capacity: usize,
    epoch: Instant,
    rings: Mutex<Vec<Arc<Ring>>>,
}

/// A process-wide flight recorder handing out per-thread [`TraceRing`]s.
///
/// Clones share the same rings. The default/[`off`](Self::off) state
/// carries no allocation and records nothing.
#[derive(Clone, Default)]
pub struct TraceRecorder {
    inner: Option<Arc<RecorderInner>>,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "TraceRecorder({:?})", inner.process),
            None => write!(f, "TraceRecorder(off)"),
        }
    }
}

impl TraceRecorder {
    /// A live recorder labelled `process` with the default ring capacity.
    pub fn new(process: impl Into<String>) -> Self {
        Self::with_capacity(process, DEFAULT_RING_CAPACITY)
    }

    /// A live recorder with an explicit per-ring capacity (in records).
    pub fn with_capacity(process: impl Into<String>, capacity: usize) -> Self {
        TraceRecorder {
            inner: Some(Arc::new(RecorderInner {
                process: process.into(),
                capacity: capacity.max(1),
                epoch: Instant::now(),
                rings: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The no-op recorder: every ring it hands out records nothing.
    pub fn off() -> Self {
        TraceRecorder { inner: None }
    }

    /// True when this recorder actually records.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the recorder was created (0 when off).
    ///
    /// Engine and cluster record sites use this wall-anchored clock;
    /// serving record sites pass their own `Clock` timestamps instead.
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// The ring labelled `label`, creating it on first use.
    ///
    /// Labels are stable keys: asking twice returns the same ring, so a
    /// subsystem that runs repeatedly (e.g. one engine run per batch)
    /// reuses its tracks instead of growing the ring set without bound.
    pub fn ring(&self, label: &str) -> TraceRing {
        let Some(inner) = &self.inner else {
            return TraceRing { ring: None };
        };
        let mut rings = inner.rings.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = rings.iter().find(|r| r.label == label) {
            return TraceRing {
                ring: Some(Arc::clone(existing)),
            };
        }
        let ring = Arc::new(Ring {
            tid: rings.len() as u64,
            label: label.to_string(),
            capacity: inner.capacity,
            state: Mutex::new(RingState {
                records: VecDeque::with_capacity(inner.capacity.min(1024)),
                next_seq: 0,
                recorded_events: 0,
                dropped_events: 0,
            }),
        });
        rings.push(Arc::clone(&ring));
        TraceRing { ring: Some(ring) }
    }

    /// Drains every ring into a snapshot, leaving the rings registered
    /// (and their counters cumulative) for continued recording.
    pub fn drain(&self) -> TraceSnapshot {
        let Some(inner) = &self.inner else {
            return TraceSnapshot {
                process: String::new(),
                threads: Vec::new(),
            };
        };
        let rings: Vec<Arc<Ring>> = inner
            .rings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let mut threads: Vec<ThreadSnapshot> = rings.iter().map(|r| r.drain()).collect();
        threads.sort_by_key(|t| t.tid);
        TraceSnapshot {
            process: inner.process.clone(),
            threads,
        }
    }
}

/// A handle to one bounded ring; the unit of lock-light recording.
///
/// Each recording thread holds its own ring, so the mutex inside is
/// uncontended on the hot path (the drainer touches it only at drain
/// time). The off-state handle records nothing.
#[derive(Clone, Default)]
pub struct TraceRing {
    ring: Option<Arc<Ring>>,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.ring {
            Some(ring) => write!(f, "TraceRing({:?})", ring.label),
            None => write!(f, "TraceRing(off)"),
        }
    }
}

impl TraceRing {
    /// The no-op ring.
    pub fn off() -> Self {
        TraceRing { ring: None }
    }

    /// True when this ring actually records.
    pub fn is_on(&self) -> bool {
        self.ring.is_some()
    }

    /// Records a point-in-time event.
    pub fn instant(&self, name: &str, cat: &str, ts_us: u64, args: &[Arg<'_>]) {
        if let Some(ring) = &self.ring {
            ring.push(|seq| TraceRecord::Instant {
                seq,
                name: name.to_string(),
                cat: cat.to_string(),
                ts_us,
                args: args.iter().map(|a| a.to_owned_arg()).collect(),
            });
        }
    }

    /// Records a completed span (`begin_us ..= end_us`) as one record.
    pub fn span(&self, name: &str, cat: &str, begin_us: u64, end_us: u64, args: &[Arg<'_>]) {
        if let Some(ring) = &self.ring {
            ring.push(|seq| TraceRecord::Span {
                seq,
                name: name.to_string(),
                cat: cat.to_string(),
                begin_us,
                end_us: end_us.max(begin_us),
                args: args.iter().map(|a| a.to_owned_arg()).collect(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event exporter
// ---------------------------------------------------------------------------

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_args(out: &mut String, args: &[TraceArg]) {
    out.push_str(",\"args\":{");
    for (i, arg) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, &arg.key);
        out.push(':');
        match &arg.value {
            ArgValue::U64(v) => out.push_str(&v.to_string()),
            ArgValue::I64(v) => out.push_str(&v.to_string()),
            ArgValue::Str(v) => push_json_string(out, v),
        }
    }
    out.push('}');
}

fn push_event_head(out: &mut String, name: &str, cat: &str, ph: char, pid: usize, tid: u64) {
    out.push_str("{\"name\":");
    push_json_string(out, name);
    if !cat.is_empty() {
        out.push_str(",\"cat\":");
        push_json_string(out, cat);
    }
    out.push_str(&format!(",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid}"));
}

/// Renders snapshots as a Chrome trace-event JSON document.
///
/// Each snapshot becomes one `pid` track (1-based, in slice order) with
/// `"M"` metadata naming the process and its threads; spans expand to
/// adjacent `"B"`/`"E"` pairs and instants to thread-scoped `"i"`
/// events, each in per-ring sequence order. The output is stable for a
/// given input (one event per line, no timestamps of its own), loadable
/// in Perfetto or `chrome://tracing`, and checkable with [`validate`].
pub fn export_chrome(snapshots: &[TraceSnapshot]) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };
    for (i, snap) in snapshots.iter().enumerate() {
        let pid = i + 1;
        sep(&mut out);
        push_event_head(&mut out, "process_name", "", 'M', pid, 0);
        out.push_str(",\"args\":{\"name\":");
        push_json_string(&mut out, &snap.process);
        out.push_str("}}");
        for thread in &snap.threads {
            sep(&mut out);
            push_event_head(&mut out, "thread_name", "", 'M', pid, thread.tid);
            out.push_str(",\"args\":{\"name\":");
            push_json_string(&mut out, &thread.label);
            out.push_str("}}");
            for record in &thread.records {
                match record {
                    TraceRecord::Span {
                        name,
                        cat,
                        begin_us,
                        end_us,
                        args,
                        ..
                    } => {
                        sep(&mut out);
                        push_event_head(&mut out, name, cat, 'B', pid, thread.tid);
                        out.push_str(&format!(",\"ts\":{begin_us}"));
                        push_args(&mut out, args);
                        out.push('}');
                        sep(&mut out);
                        push_event_head(&mut out, name, cat, 'E', pid, thread.tid);
                        out.push_str(&format!(",\"ts\":{end_us}"));
                        out.push('}');
                    }
                    TraceRecord::Instant {
                        name,
                        cat,
                        ts_us,
                        args,
                        ..
                    } => {
                        sep(&mut out);
                        push_event_head(&mut out, name, cat, 'i', pid, thread.tid);
                        out.push_str(&format!(",\"ts\":{ts_us},\"s\":\"t\""));
                        push_args(&mut out, args);
                        out.push('}');
                    }
                }
            }
            if thread.dropped_events > 0 {
                sep(&mut out);
                push_event_head(&mut out, "ring_dropped", "trace", 'i', pid, thread.tid);
                out.push_str(",\"ts\":0,\"s\":\"t\"");
                push_args(
                    &mut out,
                    &[Arg::U("dropped_events", thread.dropped_events).to_owned_arg()],
                );
                out.push('}');
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

// ---------------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------------

/// One structurally validated Chrome trace event (summary view).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEventSummary {
    /// Event name.
    pub name: String,
    /// Category (empty when absent).
    pub cat: String,
    /// Phase: one of `B`, `E`, `i`, `M`.
    pub ph: char,
    /// Process track.
    pub pid: i64,
    /// Thread track.
    pub tid: i64,
    /// Timestamp in microseconds (0 for metadata events).
    pub ts: u64,
}

/// A structurally validated trace document with query helpers.
#[derive(Debug, Clone)]
pub struct ParsedTrace {
    /// Every event in document order.
    pub events: Vec<TraceEventSummary>,
}

impl ParsedTrace {
    /// Distinct pids carrying at least one non-metadata event, sorted.
    pub fn pids(&self) -> Vec<i64> {
        let mut pids: Vec<i64> = self
            .events
            .iter()
            .filter(|e| e.ph != 'M')
            .map(|e| e.pid)
            .collect();
        pids.sort_unstable();
        pids.dedup();
        pids
    }

    /// Number of events with the given phase and name.
    pub fn count(&self, ph: char, name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.ph == ph && e.name == name)
            .count()
    }

    /// Number of non-metadata events.
    pub fn event_count(&self) -> usize {
        self.events.iter().filter(|e| e.ph != 'M').count()
    }
}

/// Wrapper whose `Deserialize` impl captures the raw value tree, giving
/// the validator a generic JSON view through the vendored serde.
struct Raw(serde::Value);

impl Deserialize for Raw {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Raw(value.clone()))
    }
}

fn field<'a>(map: &'a [(String, serde::Value)], key: &str) -> Option<&'a serde::Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn int_field(map: &[(String, serde::Value)], key: &str, at: usize) -> Result<i64, String> {
    match field(map, key) {
        Some(serde::Value::Int(v)) => {
            i64::try_from(*v).map_err(|_| format!("event {at}: {key} out of range"))
        }
        Some(_) => Err(format!("event {at}: {key} must be an integer")),
        None => Err(format!("event {at}: missing {key}")),
    }
}

/// Validates a Chrome trace-event JSON document.
///
/// Structural checks, in the spirit of [`crate::parse::validate`]:
/// the root is an object with a `traceEvents` array; every event has a
/// non-empty `name`, a `ph` in `B/E/i/M`, integer `pid`/`tid`, and a
/// non-negative integer `ts` (metadata excepted); `i` events carry a
/// scope `s` in `t/p/g`; `M` events are `process_name`/`thread_name`
/// with an `args.name` string, at most one per track; and on every
/// `(pid, tid)` track the `B`/`E` events balance in document order with
/// matching names.
pub fn validate(text: &str) -> Result<ParsedTrace, String> {
    let root = serde_json::from_str::<Raw>(text)
        .map_err(|e| format!("trace JSON: {e}"))?
        .0;
    let serde::Value::Map(root) = root else {
        return Err("root must be an object".to_string());
    };
    let Some(events_v) = field(&root, "traceEvents") else {
        return Err("root missing traceEvents".to_string());
    };
    let serde::Value::Seq(raw_events) = events_v else {
        return Err("traceEvents must be an array".to_string());
    };

    let mut events = Vec::with_capacity(raw_events.len());
    // Open-span stack per (pid, tid) track, for B/E discipline.
    let mut stacks: Vec<((i64, i64), Vec<String>)> = Vec::new();
    let mut named_tracks: Vec<(i64, Option<i64>)> = Vec::new();

    for (at, ev) in raw_events.iter().enumerate() {
        let serde::Value::Map(ev) = ev else {
            return Err(format!("event {at}: must be an object"));
        };
        let name = match field(ev, "name") {
            Some(serde::Value::Str(s)) if !s.is_empty() => s.clone(),
            Some(serde::Value::Str(_)) => return Err(format!("event {at}: empty name")),
            _ => return Err(format!("event {at}: missing name")),
        };
        let ph = match field(ev, "ph") {
            Some(serde::Value::Str(s)) if s.len() == 1 => s.chars().next().unwrap(),
            _ => return Err(format!("event {at}: ph must be a single character")),
        };
        if !matches!(ph, 'B' | 'E' | 'i' | 'M') {
            return Err(format!("event {at}: unsupported ph {ph:?}"));
        }
        let pid = int_field(ev, "pid", at)?;
        let tid = int_field(ev, "tid", at)?;
        if pid < 0 || tid < 0 {
            return Err(format!("event {at}: negative pid/tid"));
        }
        if let Some(args) = field(ev, "args") {
            if !matches!(args, serde::Value::Map(_)) {
                return Err(format!("event {at}: args must be an object"));
            }
        }
        let ts = if ph == 'M' {
            0
        } else {
            let ts = int_field(ev, "ts", at)?;
            if ts < 0 {
                return Err(format!("event {at}: negative ts"));
            }
            ts as u64
        };
        match ph {
            'B' => {
                let key = (pid, tid);
                match stacks.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, stack)) => stack.push(name.clone()),
                    None => stacks.push((key, vec![name.clone()])),
                }
            }
            'E' => {
                let key = (pid, tid);
                let open = stacks
                    .iter_mut()
                    .find(|(k, _)| *k == key)
                    .and_then(|(_, stack)| stack.pop());
                match open {
                    Some(opened) if opened == name => {}
                    Some(opened) => {
                        return Err(format!(
                        "event {at}: E {name:?} closes open span {opened:?} on pid {pid} tid {tid}"
                    ))
                    }
                    None => {
                        return Err(format!(
                            "event {at}: E {name:?} with no open span on pid {pid} tid {tid}"
                        ))
                    }
                }
            }
            'i' => match field(ev, "s") {
                Some(serde::Value::Str(s)) if matches!(s.as_str(), "t" | "p" | "g") => {}
                Some(_) => return Err(format!("event {at}: instant scope must be t/p/g")),
                None => return Err(format!("event {at}: instant missing scope s")),
            },
            'M' => {
                let track = match name.as_str() {
                    "process_name" => (pid, None),
                    "thread_name" => (pid, Some(tid)),
                    other => return Err(format!("event {at}: unknown metadata {other:?}")),
                };
                if named_tracks.contains(&track) {
                    return Err(format!(
                        "event {at}: duplicate {name} metadata for pid {pid} tid {tid}"
                    ));
                }
                named_tracks.push(track);
                let ok = field(ev, "args")
                    .and_then(|a| match a {
                        serde::Value::Map(m) => field(m, "name"),
                        _ => None,
                    })
                    .is_some_and(|v| matches!(v, serde::Value::Str(s) if !s.is_empty()));
                if !ok {
                    return Err(format!("event {at}: metadata missing args.name"));
                }
            }
            _ => unreachable!(),
        }
        let cat = match field(ev, "cat") {
            Some(serde::Value::Str(s)) => s.clone(),
            _ => String::new(),
        };
        events.push(TraceEventSummary {
            name,
            cat,
            ph,
            pid,
            tid,
            ts,
        });
    }

    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "unclosed span {open:?} on pid {pid} tid {tid} at end of trace"
            ));
        }
    }
    Ok(ParsedTrace { events })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_is_free() {
        let tr = TraceRecorder::off();
        assert!(!tr.is_on());
        assert_eq!(tr.now_us(), 0);
        let ring = tr.ring("anything");
        assert!(!ring.is_on());
        ring.instant("x", "t", 1, &[]);
        ring.span("y", "t", 1, 2, &[Arg::U("k", 3)]);
        let snap = tr.drain();
        assert!(snap.is_empty());
        assert_eq!(snap.recorded_events(), 0);
    }

    #[test]
    fn records_drain_in_sequence_order() {
        let tr = TraceRecorder::new("test");
        let ring = tr.ring("main");
        ring.instant("start", "t", 5, &[Arg::S("who", "me")]);
        ring.span("work", "t", 10, 20, &[Arg::U("n", 7), Arg::I("d", -1)]);
        ring.instant("stop", "t", 25, &[]);
        let snap = tr.drain();
        assert_eq!(snap.process, "test");
        assert_eq!(snap.threads.len(), 1);
        let t = &snap.threads[0];
        assert_eq!(t.label, "main");
        assert_eq!(t.recorded_events, 4);
        assert_eq!(t.dropped_events, 0);
        let seqs: Vec<u64> = t.records.iter().map(|r| r.seq()).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        // Rings persist across drains; counters stay cumulative.
        ring.instant("again", "t", 30, &[]);
        let snap2 = tr.drain();
        assert_eq!(snap2.threads[0].recorded_events, 5);
        assert_eq!(snap2.threads[0].records.len(), 1);
        assert_eq!(snap2.threads[0].records[0].seq(), 3);
    }

    #[test]
    fn ring_labels_are_stable_keys() {
        let tr = TraceRecorder::new("test");
        let a = tr.ring("alpha");
        let b = tr.ring("beta");
        let a2 = tr.ring("alpha");
        a.instant("one", "t", 1, &[]);
        a2.instant("two", "t", 2, &[]);
        b.instant("three", "t", 3, &[]);
        let snap = tr.drain();
        assert_eq!(snap.threads.len(), 2);
        assert_eq!(snap.threads[0].records.len(), 2);
        assert_eq!(snap.threads[1].records.len(), 1);
    }

    #[test]
    fn wrap_drops_whole_records_and_counts_events() {
        let tr = TraceRecorder::with_capacity("test", 2);
        let ring = tr.ring("r");
        ring.span("a", "t", 0, 1, &[]); // 2 events, will be evicted
        ring.instant("b", "t", 2, &[]); // 1 event, will be evicted
        ring.span("c", "t", 3, 4, &[]);
        ring.instant("d", "t", 5, &[]);
        let snap = tr.drain();
        let t = &snap.threads[0];
        assert_eq!(t.recorded_events, 6);
        assert_eq!(t.dropped_events, 3);
        let names: Vec<&str> = t.records.iter().map(|r| r.name()).collect();
        assert_eq!(names, vec!["c", "d"]);
    }

    #[test]
    fn export_roundtrips_through_validator() {
        let tr = TraceRecorder::new("proc-a");
        let ring = tr.ring("worker-0");
        ring.span("chunk", "engine", 10, 30, &[Arg::U("shard", 2)]);
        ring.instant("steal", "engine", 12, &[Arg::S("from", "w1")]);
        let other = TraceSnapshot {
            process: "proc-b".to_string(),
            threads: vec![ThreadSnapshot {
                tid: 0,
                label: "tasks".to_string(),
                recorded_events: 1,
                dropped_events: 0,
                records: vec![TraceRecord::Instant {
                    seq: 0,
                    name: "requeue".to_string(),
                    cat: "cluster".to_string(),
                    ts_us: 40,
                    args: vec![],
                }],
            }],
        };
        let json = export_chrome(&[tr.drain(), other]);
        let parsed = validate(&json).expect("exported trace must validate");
        assert_eq!(parsed.pids(), vec![1, 2]);
        assert_eq!(parsed.count('B', "chunk"), 1);
        assert_eq!(parsed.count('E', "chunk"), 1);
        assert_eq!(parsed.count('i', "steal"), 1);
        assert_eq!(parsed.count('i', "requeue"), 1);
        assert_eq!(parsed.count('M', "process_name"), 2);
        assert_eq!(parsed.event_count(), 4);
    }

    #[test]
    fn export_escapes_and_marks_drops() {
        let tr = TraceRecorder::with_capacity("q\"uote", 1);
        let ring = tr.ring("line\nbreak");
        ring.instant("first", "t", 1, &[]);
        ring.instant("second", "t", 2, &[Arg::S("msg", "tab\there")]);
        let json = export_chrome(&[tr.drain()]);
        let parsed = validate(&json).expect("escaped trace must validate");
        assert_eq!(parsed.count('i', "ring_dropped"), 1);
        assert_eq!(parsed.count('i', "first"), 0);
        assert_eq!(parsed.count('i', "second"), 1);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate("[]").is_err());
        assert!(validate("{\"traceEvents\":3}").is_err());
        // Missing name.
        assert!(
            validate(r#"{"traceEvents":[{"ph":"i","pid":1,"tid":0,"ts":1,"s":"t"}]}"#).is_err()
        );
        // Unknown phase.
        assert!(
            validate(r#"{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":0,"ts":1}]}"#).is_err()
        );
        // E without B.
        assert!(
            validate(r#"{"traceEvents":[{"name":"x","ph":"E","pid":1,"tid":0,"ts":1}]}"#).is_err()
        );
        // B without E.
        assert!(
            validate(r#"{"traceEvents":[{"name":"x","ph":"B","pid":1,"tid":0,"ts":1}]}"#).is_err()
        );
        // Mismatched E name.
        assert!(validate(
            r#"{"traceEvents":[{"name":"a","ph":"B","pid":1,"tid":0,"ts":1},{"name":"b","ph":"E","pid":1,"tid":0,"ts":2}]}"#
        )
        .is_err());
        // Instant without scope.
        assert!(
            validate(r#"{"traceEvents":[{"name":"x","ph":"i","pid":1,"tid":0,"ts":1}]}"#).is_err()
        );
        // Metadata without args.name.
        assert!(
            validate(r#"{"traceEvents":[{"name":"process_name","ph":"M","pid":1,"tid":0}]}"#)
                .is_err()
        );
        // Duplicate process metadata.
        assert!(validate(
            r#"{"traceEvents":[{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"a"}},{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"b"}}]}"#
        )
        .is_err());
        // A well-formed document passes.
        let ok = validate(
            r#"{"traceEvents":[{"name":"a","ph":"B","pid":1,"tid":0,"ts":1},{"name":"a","ph":"E","pid":1,"tid":0,"ts":2}]}"#,
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let tr = TraceRecorder::new("roundtrip");
        let ring = tr.ring("r");
        ring.span(
            "s",
            "c",
            1,
            2,
            &[Arg::U("u", 1), Arg::I("i", -2), Arg::S("s", "x")],
        );
        ring.instant("i", "c", 3, &[]);
        let snap = tr.drain();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: TraceSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }
}
