//! Interval text dump for headless runs.
//!
//! Where no scraper exists (CI, batch campaigns), [`IntervalDumper`]
//! renders the registry every `period` and hands the page to a sink
//! callback (typically "write to stderr" or "append to a file"). Pure
//! std has no signal handling, so there is no literal dump-on-SIGUSR1;
//! instead [`IntervalDumper::stop`] performs one final dump before
//! joining — short runs still emit at least one page — and binaries can
//! call [`Registry::render`] themselves from whatever trigger they own.

use crate::registry::Registry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Polling slice: how quickly `stop` takes effect regardless of period.
const TICK: Duration = Duration::from_millis(25);

/// A background thread dumping the registry on an interval.
#[derive(Debug)]
pub struct IntervalDumper {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl IntervalDumper {
    /// Starts dumping `registry` every `period` into `sink`. The sink
    /// also runs once at [`stop`](IntervalDumper::stop).
    pub fn start(
        registry: Registry,
        period: Duration,
        mut sink: impl FnMut(&str) + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("relcnn-obs-dump".into())
            .spawn(move || {
                let mut elapsed = Duration::ZERO;
                loop {
                    if thread_stop.load(Ordering::Acquire) {
                        sink(&registry.render());
                        return;
                    }
                    std::thread::sleep(TICK.min(period));
                    elapsed += TICK.min(period);
                    if elapsed >= period {
                        elapsed = Duration::ZERO;
                        sink(&registry.render());
                    }
                }
            })
            .expect("spawn dumper thread");
        IntervalDumper {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the dumper after one final dump and joins the thread.
    pub fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            let _ = handle.join();
        }
    }
}

impl Drop for IntervalDumper {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn dumps_at_least_once_and_final_dump_sees_latest_values() {
        let reg = Registry::new();
        let c = reg.counter("dump_test_total", "h", &[]);
        let pages: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_pages = Arc::clone(&pages);
        let dumper = IntervalDumper::start(reg, Duration::from_secs(3600), move |page| {
            sink_pages.lock().unwrap().push(page.to_string());
        });
        c.add(7);
        dumper.stop();
        let pages = pages.lock().unwrap();
        assert!(!pages.is_empty(), "stop() must flush a final dump");
        assert!(pages.last().unwrap().contains("dump_test_total 7"));
    }
}
