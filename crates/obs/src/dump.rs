//! Interval text dump for headless runs.
//!
//! Where no scraper exists (CI, batch campaigns), [`IntervalDumper`]
//! renders the registry every `period` and hands the page to a sink
//! callback (typically "write to stderr" or "append to a file"). Pure
//! std has no signal handling, so there is no literal dump-on-SIGUSR1;
//! instead [`IntervalDumper::stop`] performs one final dump before
//! joining — short runs still emit at least one page — and binaries can
//! call [`Registry::render`] themselves from whatever trigger they own.

use crate::registry::Registry;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Polling slice: how quickly `stop` takes effect regardless of period.
const TICK: Duration = Duration::from_millis(25);

/// A background thread dumping the registry on an interval.
#[derive(Debug)]
pub struct IntervalDumper {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl IntervalDumper {
    /// Starts dumping `registry` every `period` into `sink`. The sink
    /// also runs once at [`stop`](IntervalDumper::stop).
    pub fn start(
        registry: Registry,
        period: Duration,
        mut sink: impl FnMut(&str) + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("relcnn-obs-dump".into())
            .spawn(move || {
                let mut elapsed = Duration::ZERO;
                loop {
                    if thread_stop.load(Ordering::Acquire) {
                        sink(&registry.render());
                        return;
                    }
                    std::thread::sleep(TICK.min(period));
                    elapsed += TICK.min(period);
                    if elapsed >= period {
                        elapsed = Duration::ZERO;
                        sink(&registry.render());
                    }
                }
            })
            .expect("spawn dumper thread");
        IntervalDumper {
            stop,
            handle: Some(handle),
        }
    }

    /// Starts dumping `registry` every `period` into sequence-numbered
    /// files `dir/{prefix}-NNNNN.prom`.
    ///
    /// Each dump — periodic or the final one flushed by
    /// [`stop`](IntervalDumper::stop) — takes the next sequence number,
    /// so the final dump can never clobber the last periodic dump even
    /// when both land within the same interval (the path-collision bug
    /// a fixed "latest" filename invites).
    pub fn start_files(
        registry: Registry,
        period: Duration,
        dir: impl Into<PathBuf>,
        prefix: &str,
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let prefix = prefix.to_string();
        let mut seq = 0u64;
        Ok(Self::start(registry, period, move |page| {
            let path = dir.join(format!("{prefix}-{seq:05}.prom"));
            seq += 1;
            if let Err(e) = std::fs::write(&path, page) {
                eprintln!("relcnn-obs dump: write {}: {e}", path.display());
            }
        }))
    }

    /// Stops the dumper after one final dump and joins the thread.
    pub fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            let _ = handle.join();
        }
    }
}

impl Drop for IntervalDumper {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn dumps_at_least_once_and_final_dump_sees_latest_values() {
        let reg = Registry::new();
        let c = reg.counter("dump_test_total", "h", &[]);
        let pages: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_pages = Arc::clone(&pages);
        let dumper = IntervalDumper::start(reg, Duration::from_secs(3600), move |page| {
            sink_pages.lock().unwrap().push(page.to_string());
        });
        c.add(7);
        dumper.stop();
        let pages = pages.lock().unwrap();
        assert!(!pages.is_empty(), "stop() must flush a final dump");
        assert!(pages.last().unwrap().contains("dump_test_total 7"));
    }

    #[test]
    fn final_dump_never_clobbers_the_last_periodic_dump() {
        let dir = std::env::temp_dir().join(format!("relcnn_obs_dump_seq_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = Registry::new();
        let c = reg.counter("dump_seq_total", "h", &[]);
        c.add(1);
        let dumper = IntervalDumper::start_files(reg, Duration::from_millis(30), &dir, "page")
            .expect("start file dumper");
        // Wait until at least one periodic dump has landed, then move
        // the counter so the final dump is distinguishable.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0) == 0 {
            assert!(std::time::Instant::now() < deadline, "no periodic dump");
            std::thread::sleep(Duration::from_millis(5));
        }
        c.add(6);
        dumper.stop();
        let mut files: Vec<String> = std::fs::read_dir(&dir)
            .expect("read dump dir")
            .map(|e| e.expect("dir entry").file_name().into_string().unwrap())
            .collect();
        files.sort();
        assert!(
            files.len() >= 2,
            "periodic and final dumps must be separate files, got {files:?}"
        );
        // Sequence numbers are distinct and the final dump (highest
        // sequence) carries the latest counter value while an earlier
        // periodic dump survives alongside it.
        let mut dedup = files.clone();
        dedup.dedup();
        assert_eq!(dedup, files, "sequence numbers must never collide");
        let last = std::fs::read_to_string(dir.join(files.last().unwrap())).unwrap();
        assert!(
            last.contains("dump_seq_total 7"),
            "final dump stale: {last}"
        );
        let first = std::fs::read_to_string(dir.join(&files[0])).unwrap();
        assert!(first.contains("dump_seq_total"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
