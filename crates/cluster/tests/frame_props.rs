//! Property tests of the frame codec's corruption contract.
//!
//! For arbitrary payloads the roundtrip must be exact, and *every*
//! mangled wire image — truncated anywhere (including mid
//! length-prefix), or with any single bit flipped — must surface as a
//! typed [`FrameError`], never a panic and never a silent short read
//! that hands back wrong bytes as `Ok`.

use proptest::prelude::*;
use relcnn_cluster::{encode_frame, read_frame, write_frame, FrameError};

/// Header layout: 4-byte magic, 4-byte length, 4-byte CRC.
const HEADER_LEN: usize = 12;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_payloads_roundtrip(
        payload in collection::vec(any::<u8>(), 0..600)
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        prop_assert_eq!(&wire, &encode_frame(&payload));

        let mut reader = wire.as_slice();
        let back = read_frame(&mut reader)
            .map_err(|e| TestCaseError::fail(format!("roundtrip: {e}")))?;
        prop_assert_eq!(back, payload);
        // The stream is exactly one frame long: the next read is a
        // clean close, not a truncation.
        prop_assert!(matches!(read_frame(&mut reader), Err(FrameError::Closed)));
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error(
        payload in collection::vec(any::<u8>(), 0..300),
        keep_seed in any::<usize>(),
    ) {
        let wire = encode_frame(&payload);
        // Keep a strict prefix: anywhere from nothing to all-but-one
        // byte, so the cut lands in the magic, the length prefix, the
        // checksum and the payload across cases.
        let keep = keep_seed % wire.len();
        match read_frame(&mut &wire[..keep]) {
            Err(FrameError::Closed) => prop_assert_eq!(keep, 0),
            Err(FrameError::Truncated { expected, got }) => prop_assert!(got < expected),
            other => {
                return Err(TestCaseError::fail(format!(
                    "cut at {keep}/{} gave {other:?}", wire.len()
                )));
            }
        }
    }

    #[test]
    fn a_cut_inside_the_length_prefix_is_truncated(
        payload in collection::vec(any::<u8>(), 0..100),
        keep in 4usize..8,
    ) {
        // Bytes 4..8 are the length prefix; keeping 4..=7 bytes cuts
        // mid-prefix after a whole magic.
        let wire = encode_frame(&payload);
        let got = read_frame(&mut &wire[..keep]);
        prop_assert!(
            matches!(got, Err(FrameError::Truncated { expected: 4, got }) if got < 4),
            "cut at {} gave {:?}", keep, got
        );
    }

    #[test]
    fn any_single_bit_flip_is_detected(
        payload in collection::vec(any::<u8>(), 1..300),
        pos_seed in any::<usize>(),
        bit in 0u32..8,
    ) {
        let mut wire = encode_frame(&payload);
        let pos = pos_seed % wire.len();
        wire[pos] ^= 1 << bit;

        match read_frame(&mut wire.as_slice()) {
            Ok(other) => {
                return Err(TestCaseError::fail(format!(
                    "flip at byte {pos} bit {bit} still decoded {} bytes",
                    other.len()
                )));
            }
            Err(FrameError::BadMagic(_)) => prop_assert!(pos < 4),
            // A flip in the length prefix reads the wrong span:
            // shorter → checksum mismatch, longer → truncated or
            // refused outright by the size cap.
            Err(FrameError::Truncated { .. }) | Err(FrameError::Oversize(_)) => {
                prop_assert!((4..8).contains(&pos))
            }
            Err(FrameError::Checksum { expected, got }) => {
                prop_assert_ne!(expected, got);
                prop_assert!(pos >= 4, "magic flip misreported as checksum");
            }
            Err(other) => {
                return Err(TestCaseError::fail(format!(
                    "flip at byte {pos} bit {bit} gave unexpected {other}"
                )));
            }
        }
    }

    #[test]
    fn checksum_field_flips_report_both_sides(
        payload in collection::vec(any::<u8>(), 0..100),
        bit in 0u32..32,
    ) {
        // Bytes 8..12 are the stored CRC; flipping exactly one of its
        // bits must produce a Checksum error whose `expected` differs
        // from `got` by that bit.
        let mut wire = encode_frame(&payload);
        let byte = 8 + (bit / 8) as usize;
        wire[byte] ^= 1 << (bit % 8);
        match read_frame(&mut wire.as_slice()) {
            Err(FrameError::Checksum { expected, got }) => {
                prop_assert_eq!(expected ^ got, 1u32 << bit);
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "CRC bit {bit} flip gave {other:?}"
                )));
            }
        }
    }
}

#[test]
fn header_layout_matches_the_tests_assumptions() {
    // The property tests slice by offset; pin the layout they assume.
    let wire = encode_frame(b"x");
    assert_eq!(wire.len(), HEADER_LEN + 1);
    assert_eq!(&wire[..4], b"RCLF");
    assert_eq!(u32::from_le_bytes(wire[4..8].try_into().unwrap()), 1);
}
