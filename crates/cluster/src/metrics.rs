//! Live cluster metrics: the `relcnn_cluster_*` families.
//!
//! Mirrors the engine's bundle idiom: unregistered by default (private
//! atomics), [`ClusterMetrics::registered`] swaps in registry-backed
//! handles so a scrape sees the head's loss/requeue/degraded counters
//! while a campaign is still running. Strictly write-only from the
//! deterministic path's perspective — the merged aggregate never depends
//! on a metric read.

use relcnn_obs::{Counter, Gauge, Registry};

/// The head's shared metric handles. Field names mirror the exported
/// metric names minus the `relcnn_cluster_` prefix.
#[derive(Debug, Default)]
pub struct ClusterMetrics {
    /// Worker processes spawned (`relcnn_cluster_workers_spawned_total`).
    pub workers_spawned: Counter,
    /// Workers declared lost (`relcnn_cluster_workers_lost_total`).
    pub workers_lost: Counter,
    /// Worker processes currently live (`relcnn_cluster_workers_live`).
    pub workers_live: Gauge,
    /// Tasks completed (`relcnn_cluster_tasks_completed_total`).
    pub tasks_completed: Counter,
    /// Tasks requeued after a worker loss
    /// (`relcnn_cluster_tasks_requeued_total`).
    pub tasks_requeued: Counter,
    /// Assignment retries after backoff
    /// (`relcnn_cluster_task_retries_total`).
    pub task_retries: Counter,
    /// Frames written to workers (`relcnn_cluster_frames_sent_total`).
    pub frames_sent: Counter,
    /// Frames read from workers (`relcnn_cluster_frames_received_total`).
    pub frames_received: Counter,
    /// Frames rejected by the codec checksum or parser
    /// (`relcnn_cluster_corrupt_frames_total`).
    pub corrupt_frames: Counter,
    /// Per-task deadline expiries (`relcnn_cluster_task_timeouts_total`).
    pub task_timeouts: Counter,
    /// Heartbeat liveness expiries
    /// (`relcnn_cluster_heartbeat_timeouts_total`).
    pub heartbeat_timeouts: Counter,
    /// Tasks the head computed in-process after retries were exhausted
    /// or no survivors remained
    /// (`relcnn_cluster_local_fallbacks_total`).
    pub local_fallbacks: Counter,
    /// 1 while the current run has lost at least one worker
    /// (`relcnn_cluster_degraded`).
    pub degraded: Gauge,
}

impl ClusterMetrics {
    /// A private, unregistered bundle (the default).
    pub fn unregistered() -> Self {
        ClusterMetrics::default()
    }

    /// A bundle registered on `registry` under the `relcnn_cluster_*`
    /// names. Idempotent: two heads on one registry share series.
    pub fn registered(registry: &Registry) -> Self {
        let c = |name, help| registry.counter(name, help, &[]);
        let g = |name, help| registry.gauge(name, help, &[]);
        ClusterMetrics {
            workers_spawned: c(
                "relcnn_cluster_workers_spawned_total",
                "Worker processes spawned",
            ),
            workers_lost: c(
                "relcnn_cluster_workers_lost_total",
                "Workers declared lost (crash, hang or corrupt frame)",
            ),
            workers_live: g(
                "relcnn_cluster_workers_live",
                "Worker processes currently live",
            ),
            tasks_completed: c("relcnn_cluster_tasks_completed_total", "Tasks completed"),
            tasks_requeued: c(
                "relcnn_cluster_tasks_requeued_total",
                "Tasks requeued after a worker loss",
            ),
            task_retries: c(
                "relcnn_cluster_task_retries_total",
                "Task assignments retried after backoff",
            ),
            frames_sent: c(
                "relcnn_cluster_frames_sent_total",
                "Frames written to workers",
            ),
            frames_received: c(
                "relcnn_cluster_frames_received_total",
                "Frames read from workers",
            ),
            corrupt_frames: c(
                "relcnn_cluster_corrupt_frames_total",
                "Frames rejected by the codec checksum or parser",
            ),
            task_timeouts: c(
                "relcnn_cluster_task_timeouts_total",
                "Per-task deadline expiries (hung workers)",
            ),
            heartbeat_timeouts: c(
                "relcnn_cluster_heartbeat_timeouts_total",
                "Heartbeat liveness expiries",
            ),
            local_fallbacks: c(
                "relcnn_cluster_local_fallbacks_total",
                "Tasks computed in-process by the head",
            ),
            degraded: g(
                "relcnn_cluster_degraded",
                "1 while the current run has lost at least one worker",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_bundles_share_series_and_render() {
        let reg = Registry::new();
        let a = ClusterMetrics::registered(&reg);
        let b = ClusterMetrics::registered(&reg);
        a.workers_lost.inc();
        a.degraded.set(1);
        assert_eq!(b.workers_lost.get(), 1);
        let text = reg.render();
        assert!(text.contains("relcnn_cluster_workers_lost_total 1"));
        assert!(text.contains("relcnn_cluster_degraded 1"));
    }
}
