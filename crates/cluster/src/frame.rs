//! Length-prefixed, CRC-checksummed message framing for the cluster
//! pipes.
//!
//! Every head↔worker message travels as one frame:
//!
//! ```text
//! ┌──────────┬─────────────┬────────────┬────────────────┐
//! │ magic    │ length (LE) │ CRC32 (LE) │ payload        │
//! │ 4 bytes  │ u32         │ u32        │ `length` bytes │
//! └──────────┴─────────────┴────────────┴────────────────┘
//! ```
//!
//! The checksum is IEEE CRC-32 over the payload only, so a frame whose
//! length prefix survives but whose body was bit-flipped in transit is
//! *detected*, not parsed — the head treats a checksum mismatch exactly
//! like losing the worker. Every way a stream can go wrong surfaces as a
//! typed [`FrameError`], never a panic or a silent short read: a clean
//! close between frames is [`FrameError::Closed`], a close *inside* a
//! frame is [`FrameError::Truncated`], garbage where the magic should be
//! is [`FrameError::BadMagic`], and a length prefix beyond
//! [`MAX_FRAME_LEN`] is [`FrameError::Oversize`] (refused before any
//! allocation).

use std::fmt;
use std::io::{self, ErrorKind, Read, Write};

/// Frame preamble: identifies the stream as relcnn cluster frames and
/// desynchronised streams fail fast with [`FrameError::BadMagic`].
pub const FRAME_MAGIC: [u8; 4] = *b"RCLF";

/// Hard cap on a single frame's payload. Campaign task results are a few
/// hundred KiB at most; a length prefix past this is corruption, and
/// refusing it up front keeps a flipped length byte from provoking a
/// gigabyte allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Everything that can go wrong reading or writing one frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The stream ended cleanly on a frame boundary (peer hung up).
    Closed,
    /// The stream ended mid-frame: `got` of `expected` bytes arrived.
    Truncated {
        /// Bytes the current header or payload section required.
        expected: usize,
        /// Bytes actually read before the stream ended.
        got: usize,
    },
    /// The frame preamble was not [`FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    Oversize(u32),
    /// The payload arrived whole but its CRC-32 disagreed.
    Checksum {
        /// Checksum the header promised.
        expected: u32,
        /// Checksum of the bytes that arrived.
        got: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame transport error: {e}"),
            FrameError::Closed => write!(f, "stream closed on a frame boundary"),
            FrameError::Truncated { expected, got } => {
                write!(f, "stream ended mid-frame: {got} of {expected} bytes")
            }
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::Oversize(len) => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_LEN}")
            }
            FrameError::Checksum { expected, got } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#010x}, payload {got:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// IEEE CRC-32 (reflected polynomial `0xEDB88320`) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Encodes `payload` as one complete frame (header + body) without
/// writing it anywhere. The chaos layer uses this to flip a bit *after*
/// the checksum is computed — producing exactly the corruption the codec
/// must catch.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(12 + payload.len());
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Writes one frame and flushes (frames carry control traffic; a frame
/// sitting in a BufWriter is a heartbeat the head never sees).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    assert!(
        payload.len() <= MAX_FRAME_LEN as usize,
        "frame payload exceeds MAX_FRAME_LEN"
    );
    w.write_all(&encode_frame(payload))?;
    w.flush()
}

/// Reads exactly `buf.len()` bytes. `at_boundary` marks the read that
/// starts a frame: EOF there is a clean close, EOF anywhere else is a
/// truncated frame.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 && at_boundary {
                    FrameError::Closed
                } else {
                    FrameError::Truncated {
                        expected: buf.len(),
                        got,
                    }
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame, verifying magic, length cap and checksum. Never
/// panics and never returns a partial payload: every failure mode is a
/// typed [`FrameError`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut magic = [0u8; 4];
    read_exact_or(r, &mut magic, true)?;
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let mut word = [0u8; 4];
    read_exact_or(r, &mut word, false)?;
    let len = u32::from_le_bytes(word);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversize(len));
    }
    read_exact_or(r, &mut word, false)?;
    let expected = u32::from_le_bytes(word);
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, false)?;
    let got = crc32(&payload);
    if got != expected {
        return Err(FrameError::Checksum { expected, got });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_and_clean_close() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn oversize_length_is_refused_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(FrameError::Oversize(u32::MAX))
        ));
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut wire = encode_frame(b"payload");
        wire[0] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(FrameError::BadMagic(_))
        ));
    }
}
