//! Deterministic fault injection for the cluster fabric itself.
//!
//! The paper injects faults into the *model* and asks whether the
//! verdict survives; a [`ChaosPlan`] applies the same discipline to the
//! fabric that runs the campaigns. A plan is derived from the campaign
//! seed — same seed, same victim, same trigger point — so a chaos run is
//! exactly as reproducible as the campaign it perturbs, and the smoke
//! oracle can assert the *byte-identical* aggregate after the fault.
//!
//! Three failure modes, matching the head's three detection paths:
//!
//! | plan            | worker behaviour                           | head detects via        |
//! |-----------------|--------------------------------------------|-------------------------|
//! | `kill_one`      | exits before sending a task result         | pipe EOF                |
//! | `corrupt_one`   | bit-flips a result frame after checksumming| CRC mismatch            |
//! | `hang_one`      | withholds a result but keeps heartbeating  | per-task deadline       |

use serde::{Deserialize, Serialize};

/// A deterministic schedule of fabric faults, shipped to every worker in
/// its `Setup` frame. The default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Worker that exits (code 17) instead of sending a task result;
    /// `None` = no kill.
    pub kill_worker: Option<usize>,
    /// The kill fires when the victim has already completed this many
    /// tasks — the result of task number `kill_after_tasks` (0-based per
    /// worker) is computed but never sent.
    pub kill_after_tasks: u64,
    /// Worker that sends one bit-flipped result frame (flipped *after*
    /// the CRC is computed, so the codec must catch it), then exits.
    pub corrupt_worker: Option<usize>,
    /// Per-worker result ordinal (0-based) of the corrupted frame.
    pub corrupt_result: u64,
    /// Worker that silently withholds one task result while continuing
    /// to heartbeat — a compute hang, detectable only by the per-task
    /// deadline.
    pub hang_worker: Option<usize>,
    /// Per-worker result ordinal (0-based) the hang swallows.
    pub hang_result: u64,
}

/// SplitMix64: a tiny, well-mixed pure function of the seed — enough to
/// pick a victim without dragging an RNG dependency into the fabric.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ChaosPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// Whether this plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.kill_worker.is_none() && self.corrupt_worker.is_none() && self.hang_worker.is_none()
    }

    fn victim(seed: u64, salt: u64, workers: usize) -> usize {
        (splitmix64(seed ^ salt) % workers.max(1) as u64) as usize
    }

    /// Kills one of `workers` (chosen by the campaign seed) on its first
    /// task: the result is computed, then the process exits instead of
    /// sending it. Ordinal 0 guarantees the fault fires whenever every
    /// worker receives at least one task (tasks ≥ workers) — later
    /// ordinals would depend on the dynamic assignment racing the
    /// victim's way.
    pub fn kill_one(campaign_seed: u64, workers: usize) -> Self {
        ChaosPlan {
            kill_worker: Some(Self::victim(campaign_seed, 0x4B49_4C4C, workers)),
            kill_after_tasks: 0,
            ..ChaosPlan::default()
        }
    }

    /// Makes one of `workers` (chosen by the campaign seed) corrupt its
    /// first result frame (same ordinal-0 guarantee as [`kill_one`](Self::kill_one)).
    pub fn corrupt_one(campaign_seed: u64, workers: usize) -> Self {
        ChaosPlan {
            corrupt_worker: Some(Self::victim(campaign_seed, 0x4652_414D, workers)),
            corrupt_result: 0,
            ..ChaosPlan::default()
        }
    }

    /// Makes one of `workers` (chosen by the campaign seed) hang on its
    /// first task while still heartbeating (same ordinal-0 guarantee as
    /// [`kill_one`](Self::kill_one)).
    pub fn hang_one(campaign_seed: u64, workers: usize) -> Self {
        ChaosPlan {
            hang_worker: Some(Self::victim(campaign_seed, 0x4841_4E47, workers)),
            hang_result: 0,
            ..ChaosPlan::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        assert_eq!(ChaosPlan::kill_one(7, 4), ChaosPlan::kill_one(7, 4));
        assert_eq!(ChaosPlan::corrupt_one(7, 4), ChaosPlan::corrupt_one(7, 4));
        let victims: Vec<usize> = (0..32u64)
            .map(|s| ChaosPlan::kill_one(s, 4).kill_worker.unwrap())
            .collect();
        assert!(victims.iter().any(|&v| v != victims[0]), "seed must matter");
        assert!(victims.iter().all(|&v| v < 4));
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = ChaosPlan::kill_one(0xD17E, 3);
        let json = serde_json::to_string(&plan).unwrap();
        let back: ChaosPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert!(!plan.is_none());
        assert!(ChaosPlan::none().is_none());
    }
}
