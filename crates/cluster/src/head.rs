//! Head-process orchestration: spawn, assign, detect loss, requeue.
//!
//! The head cuts the job's shard axis into fixed-width contiguous
//! *tasks* — the unit of distribution, sized independently of the
//! process count, so every topology computes the same task set and a
//! requeued task recomputes byte-identical results on any survivor.
//! Workers are the current binary re-invoked with
//! [`WORKER_ENV`] set; frames travel over the
//! children's stdin/stdout pipes, one reader thread per worker funnelling
//! into a single event channel.
//!
//! Failure detection has three disjoint paths, one per failure mode:
//! a **crash** surfaces as pipe EOF (fast); a **corrupt frame** surfaces
//! as a codec checksum (or parse) error; a **hang** — the worker still
//! heartbeats but a result never comes — surfaces when the per-task
//! deadline expires. All three converge on the same recovery: kill the
//! worker, requeue its unacknowledged task with bounded exponential
//! backoff, and mark the run *degraded*. A task that exhausts its
//! retries — or outlives the last worker — is computed in-process by the
//! head, so the run always terminates with the complete, byte-identical
//! aggregate.

use crate::chaos::ChaosPlan;
use crate::frame::{read_frame, write_frame, FrameError};
use crate::metrics::ClusterMetrics;
use crate::proto::{decode, encode, FromWorker, JobSpec, ToWorker};
use crate::worker::WORKER_ENV;
use relcnn_obs::Registry;
use std::io;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Head-side fabric configuration (the job itself lives in [`JobSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Worker processes to spawn. `0` runs every task in-process — the
    /// degenerate local topology, useful as a cluster-free reference.
    pub workers: usize,
    /// Shards per task: the fixed distribution width. Must not depend
    /// on `workers`, or topologies would compute different task sets.
    pub task_shards: usize,
    /// Worker heartbeat period.
    pub heartbeat_ms: u64,
    /// A task unacknowledged this long after assignment means the worker
    /// is hung (it may well still be heartbeating).
    pub task_timeout_ms: u64,
    /// Heartbeat silence after which an *idle* worker is presumed dead.
    pub liveness_timeout_ms: u64,
    /// Requeue attempts per task before the head computes it locally.
    pub max_retries: u32,
    /// Base of the requeue backoff: retry `n` waits
    /// `backoff_base_ms << (n-1)`, capped at `backoff_cap_ms`.
    pub backoff_base_ms: u64,
    /// Cap on the exponential requeue backoff.
    pub backoff_cap_ms: u64,
    /// Deterministic fault schedule shipped to every worker.
    pub chaos: ChaosPlan,
}

impl ClusterConfig {
    /// Defaults tuned for campaign-scale tasks: 50 ms heartbeats, a 30 s
    /// task deadline, two retries with 10 ms → 500 ms backoff.
    pub fn new(workers: usize) -> Self {
        ClusterConfig {
            workers,
            task_shards: 1,
            heartbeat_ms: 50,
            task_timeout_ms: 30_000,
            liveness_timeout_ms: 1_000,
            max_retries: 2,
            backoff_base_ms: 10,
            backoff_cap_ms: 500,
            chaos: ChaosPlan::none(),
        }
    }

    /// Sets the task width (shards per task).
    pub fn with_task_shards(mut self, shards: usize) -> Self {
        self.task_shards = shards;
        self
    }

    /// Sets the per-task deadline.
    pub fn with_task_timeout_ms(mut self, ms: u64) -> Self {
        self.task_timeout_ms = ms;
        self
    }

    /// Sets the heartbeat period and scales the liveness deadline to
    /// twenty periods.
    pub fn with_heartbeat_ms(mut self, ms: u64) -> Self {
        self.heartbeat_ms = ms.max(1);
        self.liveness_timeout_ms = self.heartbeat_ms * 20;
        self
    }

    /// Sets the retry budget per task.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the requeue backoff base and cap.
    pub fn with_backoff_ms(mut self, base: u64, cap: u64) -> Self {
        self.backoff_base_ms = base.max(1);
        self.backoff_cap_ms = cap.max(base.max(1));
        self
    }

    /// Installs a chaos schedule.
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        self.chaos = chaos;
        self
    }

    fn backoff(&self, retries: u32) -> Duration {
        let exp = retries.saturating_sub(1).min(16);
        Duration::from_millis((self.backoff_base_ms << exp).min(self.backoff_cap_ms))
    }
}

/// One completed task: the shard window it covered plus the caller's
/// `(partial, payload)` result pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskOutput {
    /// Task id (position in shard order).
    pub task: usize,
    /// First shard of the window.
    pub shard_lo: usize,
    /// One past the last shard of the window.
    pub shard_hi: usize,
    /// Caller-defined partial aggregate, JSON-encoded.
    pub partial: String,
    /// Caller-defined artefact slice.
    pub payload: String,
}

/// Fabric counters for one cluster run — the distribution-level analog
/// of the engine's `RunStats`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterStats {
    /// Worker processes spawned.
    pub workers_spawned: u64,
    /// Workers declared lost (crash, hang or corrupt frame).
    pub workers_lost: u64,
    /// Tasks in the job.
    pub tasks: u64,
    /// Tasks completed by workers.
    pub tasks_completed: u64,
    /// Tasks requeued after a worker loss.
    pub tasks_requeued: u64,
    /// Assignments that were retries of a previously failed task.
    pub task_retries: u64,
    /// Frames written to workers.
    pub frames_sent: u64,
    /// Frames received from workers (including rejected ones).
    pub frames_received: u64,
    /// Frames rejected by the codec checksum or message parser.
    pub corrupt_frames: u64,
    /// Per-task deadline expiries (hung workers).
    pub task_timeouts: u64,
    /// Heartbeat liveness expiries (silent idle workers).
    pub heartbeat_timeouts: u64,
    /// Tasks the head computed in-process (retries exhausted, no
    /// survivors, or the zero-worker topology).
    pub local_fallbacks: u64,
    /// Whether any worker was lost: the run finished on the recovery
    /// path. The aggregate is byte-identical either way.
    pub degraded: bool,
    /// Wall-clock time of the whole cluster run, µs.
    pub wall_us: u64,
}

impl ClusterStats {
    /// Renders the counters as a JSON object (for JSONL run logs).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workers_spawned\":{},\"workers_lost\":{},\"tasks\":{},\
             \"tasks_completed\":{},\"tasks_requeued\":{},\"task_retries\":{},\
             \"frames_sent\":{},\"frames_received\":{},\"corrupt_frames\":{},\
             \"task_timeouts\":{},\"heartbeat_timeouts\":{},\"local_fallbacks\":{},\
             \"degraded\":{},\"wall_us\":{}}}",
            self.workers_spawned,
            self.workers_lost,
            self.tasks,
            self.tasks_completed,
            self.tasks_requeued,
            self.task_retries,
            self.frames_sent,
            self.frames_received,
            self.corrupt_frames,
            self.task_timeouts,
            self.heartbeat_timeouts,
            self.local_fallbacks,
            self.degraded,
            self.wall_us
        )
    }
}

/// Result of [`run_cluster`]: every task's output in task (= shard)
/// order, plus the fabric counters.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Per-task outputs, indexed by task id. Concatenating `payload`s in
    /// this order reproduces the single-process artefact byte for byte;
    /// merging `partial`s in this order reproduces the full aggregate.
    pub outputs: Vec<TaskOutput>,
    /// Fabric counters.
    pub stats: ClusterStats,
}

#[derive(Clone, Copy, PartialEq)]
enum TaskState {
    Pending,
    Running,
    Done,
}

struct Task {
    lo: usize,
    hi: usize,
    retries: u32,
    not_before: Instant,
    state: TaskState,
}

enum Event {
    Msg(FromWorker),
    Corrupt(String),
    Eof,
}

struct Seat {
    child: Child,
    stdin: ChildStdin,
    alive: bool,
    last_seen: Instant,
    running: Option<(usize, Instant)>,
}

/// Runs `job` over `config.workers` worker processes with unregistered
/// metrics. See [`run_cluster_observed`] for the scrapeable variant.
///
/// `task_fn` is used twice: shipped implicitly (the workers are this
/// binary, whose `main` passes the same function to
/// [`run_worker_if_spawned`](crate::run_worker_if_spawned)), and called
/// directly by the head for local fallback. It must be a pure function
/// of `(job, shard_lo, shard_hi)`.
pub fn run_cluster<F>(
    config: &ClusterConfig,
    job: &JobSpec,
    task_fn: F,
) -> io::Result<ClusterOutcome>
where
    F: Fn(&JobSpec, usize, usize) -> (String, String),
{
    run_cluster_with(config, job, task_fn, &ClusterMetrics::unregistered())
}

/// [`run_cluster`] publishing live `relcnn_cluster_*` metrics on
/// `registry`.
pub fn run_cluster_observed<F>(
    config: &ClusterConfig,
    job: &JobSpec,
    task_fn: F,
    registry: &Registry,
) -> io::Result<ClusterOutcome>
where
    F: Fn(&JobSpec, usize, usize) -> (String, String),
{
    run_cluster_with(config, job, task_fn, &ClusterMetrics::registered(registry))
}

fn send_to(seat: &mut Seat, msg: &ToWorker, stats: &mut ClusterStats, cm: &ClusterMetrics) -> bool {
    let ok = write_frame(&mut seat.stdin, &encode(msg)).is_ok();
    if ok {
        stats.frames_sent += 1;
        cm.frames_sent.inc();
    }
    ok
}

#[allow(clippy::too_many_arguments)]
fn lose_worker(
    w: usize,
    reason: &str,
    seat: &mut Seat,
    tasks: &mut [Task],
    config: &ClusterConfig,
    stats: &mut ClusterStats,
    cm: &ClusterMetrics,
) {
    if !seat.alive {
        return;
    }
    seat.alive = false;
    stats.workers_lost += 1;
    stats.degraded = true;
    cm.workers_lost.inc();
    cm.workers_live.sub(1);
    cm.degraded.set(1);
    let _ = seat.child.kill();
    let _ = seat.child.wait();
    if let Some((t, _)) = seat.running.take() {
        if tasks[t].state == TaskState::Running {
            tasks[t].state = TaskState::Pending;
            tasks[t].retries += 1;
            tasks[t].not_before = Instant::now() + config.backoff(tasks[t].retries);
            stats.tasks_requeued += 1;
            cm.tasks_requeued.inc();
            eprintln!(
                "[cluster] worker {w} lost ({reason}); task {t} requeued (retry {})",
                tasks[t].retries
            );
            return;
        }
    }
    eprintln!("[cluster] worker {w} lost ({reason}); nothing in flight");
}

fn run_cluster_with<F>(
    config: &ClusterConfig,
    job: &JobSpec,
    task_fn: F,
    cm: &ClusterMetrics,
) -> io::Result<ClusterOutcome>
where
    F: Fn(&JobSpec, usize, usize) -> (String, String),
{
    let started = Instant::now();
    let mut stats = ClusterStats::default();
    cm.degraded.set(0);

    let width = config.task_shards.max(1);
    let now = Instant::now();
    let mut tasks: Vec<Task> = (0..job.shards)
        .step_by(width)
        .map(|lo| Task {
            lo,
            hi: (lo + width).min(job.shards),
            retries: 0,
            not_before: now,
            state: TaskState::Pending,
        })
        .collect();
    stats.tasks = tasks.len() as u64;
    let mut outputs: Vec<Option<TaskOutput>> = tasks.iter().map(|_| None).collect();
    let run_local = |i: usize,
                     tasks: &mut Vec<Task>,
                     outputs: &mut Vec<Option<TaskOutput>>,
                     stats: &mut ClusterStats| {
        let (partial, payload) = task_fn(job, tasks[i].lo, tasks[i].hi);
        outputs[i] = Some(TaskOutput {
            task: i,
            shard_lo: tasks[i].lo,
            shard_hi: tasks[i].hi,
            partial,
            payload,
        });
        tasks[i].state = TaskState::Done;
        stats.local_fallbacks += 1;
        cm.local_fallbacks.inc();
    };

    if config.workers == 0 {
        // Degenerate local topology: no processes, no pipes, no chaos.
        for i in 0..tasks.len() {
            run_local(i, &mut tasks, &mut outputs, &mut stats);
        }
        stats.wall_us = started.elapsed().as_micros() as u64;
        return Ok(ClusterOutcome {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("local task"))
                .collect(),
            stats,
        });
    }

    let exe = std::env::current_exe()?;
    let (tx, rx) = mpsc::channel::<(usize, Event)>();
    let mut seats: Vec<Seat> = Vec::with_capacity(config.workers);
    let mut readers = Vec::with_capacity(config.workers);
    for w in 0..config.workers {
        let mut child = Command::new(&exe)
            .env(WORKER_ENV, w.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        stats.workers_spawned += 1;
        cm.workers_spawned.inc();
        cm.workers_live.add(1);
        let stdin = child.stdin.take().expect("piped child stdin");
        let mut stdout = child.stdout.take().expect("piped child stdout");
        let tx = tx.clone();
        readers.push(std::thread::spawn(move || loop {
            match read_frame(&mut stdout) {
                Ok(bytes) => match decode::<FromWorker>(&bytes) {
                    Ok(msg) => {
                        if tx.send((w, Event::Msg(msg))).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send((w, Event::Corrupt(format!("message parse: {e}"))));
                        return;
                    }
                },
                Err(FrameError::Closed) => {
                    let _ = tx.send((w, Event::Eof));
                    return;
                }
                Err(e) => {
                    // After a framing error the stream has no recoverable
                    // sync point; stop reading and let the head kill us.
                    let _ = tx.send((w, Event::Corrupt(e.to_string())));
                    return;
                }
            }
        }));
        let mut seat = Seat {
            child,
            stdin,
            alive: true,
            last_seen: Instant::now(),
            running: None,
        };
        let setup = ToWorker::Setup {
            worker: w,
            job: job.clone(),
            heartbeat_ms: config.heartbeat_ms,
            chaos: config.chaos,
        };
        if !send_to(&mut seat, &setup, &mut stats, cm) {
            lose_worker(
                w,
                "setup write failed",
                &mut seat,
                &mut tasks,
                config,
                &mut stats,
                cm,
            );
        }
        seats.push(seat);
    }
    drop(tx);

    let tick = Duration::from_millis(config.heartbeat_ms.clamp(5, 50));
    let mut remaining = tasks.len();
    while remaining > 0 {
        // Retry budget exhausted → the head computes the task itself:
        // guaranteed forward progress no matter what the fleet does.
        for i in 0..tasks.len() {
            if tasks[i].state == TaskState::Pending && tasks[i].retries > config.max_retries {
                eprintln!("[cluster] task {i} exhausted retries; computing locally");
                run_local(i, &mut tasks, &mut outputs, &mut stats);
                remaining -= 1;
            }
        }
        if remaining == 0 {
            break;
        }
        // No survivors → everything still pending runs locally.
        if seats.iter().all(|s| !s.alive) {
            for i in 0..tasks.len() {
                if tasks[i].state != TaskState::Done {
                    run_local(i, &mut tasks, &mut outputs, &mut stats);
                }
            }
            break;
        }
        // Assign ready tasks to idle survivors.
        let now = Instant::now();
        for (w, seat) in seats.iter_mut().enumerate() {
            if !seat.alive || seat.running.is_some() {
                continue;
            }
            let Some(i) = tasks
                .iter()
                .position(|t| t.state == TaskState::Pending && t.not_before <= now)
            else {
                break;
            };
            let assign = ToWorker::Assign {
                task: i,
                shard_lo: tasks[i].lo,
                shard_hi: tasks[i].hi,
            };
            if send_to(seat, &assign, &mut stats, cm) {
                tasks[i].state = TaskState::Running;
                seat.running = Some((i, now));
                if tasks[i].retries > 0 {
                    stats.task_retries += 1;
                    cm.task_retries.inc();
                }
            } else {
                lose_worker(
                    w,
                    "assign write failed",
                    seat,
                    &mut tasks,
                    config,
                    &mut stats,
                    cm,
                );
            }
        }
        // Drain events (or wait one tick).
        match rx.recv_timeout(tick) {
            Ok((w, event)) => {
                if seats[w].alive {
                    match event {
                        Event::Msg(msg) => {
                            stats.frames_received += 1;
                            cm.frames_received.inc();
                            seats[w].last_seen = Instant::now();
                            if let FromWorker::Done {
                                task,
                                partial,
                                payload,
                                ..
                            } = msg
                            {
                                if task >= tasks.len() {
                                    stats.corrupt_frames += 1;
                                    cm.corrupt_frames.inc();
                                    lose_worker(
                                        w,
                                        "task id out of range",
                                        &mut seats[w],
                                        &mut tasks,
                                        config,
                                        &mut stats,
                                        cm,
                                    );
                                    continue;
                                }
                                seats[w].running = None;
                                if outputs[task].is_none() {
                                    outputs[task] = Some(TaskOutput {
                                        task,
                                        shard_lo: tasks[task].lo,
                                        shard_hi: tasks[task].hi,
                                        partial,
                                        payload,
                                    });
                                    tasks[task].state = TaskState::Done;
                                    remaining -= 1;
                                    stats.tasks_completed += 1;
                                    cm.tasks_completed.inc();
                                }
                            }
                        }
                        Event::Corrupt(detail) => {
                            stats.frames_received += 1;
                            stats.corrupt_frames += 1;
                            cm.frames_received.inc();
                            cm.corrupt_frames.inc();
                            lose_worker(
                                w,
                                &format!("corrupt frame: {detail}"),
                                &mut seats[w],
                                &mut tasks,
                                config,
                                &mut stats,
                                cm,
                            );
                        }
                        Event::Eof => {
                            lose_worker(
                                w,
                                "pipe closed (crash)",
                                &mut seats[w],
                                &mut tasks,
                                config,
                                &mut stats,
                                cm,
                            );
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Every reader exited and every event was drained; any
                // seat still marked alive is unreachable.
                for (w, seat) in seats.iter_mut().enumerate() {
                    lose_worker(
                        w,
                        "event channel drained",
                        seat,
                        &mut tasks,
                        config,
                        &mut stats,
                        cm,
                    );
                }
            }
        }
        // Deadlines: a running task past its deadline means a hung
        // worker (heartbeats notwithstanding); an idle worker silent
        // past the liveness window is dead.
        let now = Instant::now();
        for (w, seat) in seats.iter_mut().enumerate() {
            if !seat.alive {
                continue;
            }
            if let Some((t, at)) = seat.running {
                if now.duration_since(at) > Duration::from_millis(config.task_timeout_ms) {
                    stats.task_timeouts += 1;
                    cm.task_timeouts.inc();
                    lose_worker(
                        w,
                        &format!("task {t} deadline"),
                        seat,
                        &mut tasks,
                        config,
                        &mut stats,
                        cm,
                    );
                }
            } else if now.duration_since(seat.last_seen)
                > Duration::from_millis(config.liveness_timeout_ms)
            {
                stats.heartbeat_timeouts += 1;
                cm.heartbeat_timeouts.inc();
                lose_worker(
                    w,
                    "heartbeat silence",
                    seat,
                    &mut tasks,
                    config,
                    &mut stats,
                    cm,
                );
            }
        }
    }

    // Clean shutdown: command, close the pipe, reap.
    for seat in seats.iter_mut() {
        if seat.alive {
            let _ = send_to(seat, &ToWorker::Shutdown, &mut stats, cm);
            cm.workers_live.sub(1);
        }
    }
    for mut seat in seats {
        drop(seat.stdin);
        let _ = seat.child.wait();
    }
    for reader in readers {
        let _ = reader.join();
    }

    stats.wall_us = started.elapsed().as_micros() as u64;
    Ok(ClusterOutcome {
        outputs: outputs
            .into_iter()
            .map(|o| o.expect("every task completed or fell back locally"))
            .collect(),
        stats,
    })
}
