//! Head-process orchestration: spawn, assign, detect loss, requeue.
//!
//! The head cuts the job's shard axis into fixed-width contiguous
//! *tasks* — the unit of distribution, sized independently of the
//! process count, so every topology computes the same task set and a
//! requeued task recomputes byte-identical results on any survivor.
//! Workers are the current binary re-invoked with
//! [`WORKER_ENV`] set; frames travel over the
//! children's stdin/stdout pipes, one reader thread per worker funnelling
//! into a single event channel.
//!
//! Failure detection has three disjoint paths, one per failure mode:
//! a **crash** surfaces as pipe EOF (fast); a **corrupt frame** surfaces
//! as a codec checksum (or parse) error; a **hang** — the worker still
//! heartbeats but a result never comes — surfaces when the per-task
//! deadline expires. All three converge on the same recovery: kill the
//! worker, requeue its unacknowledged task with bounded exponential
//! backoff, and mark the run *degraded*. A task that exhausts its
//! retries — or outlives the last worker — is computed in-process by the
//! head, so the run always terminates with the complete, byte-identical
//! aggregate.

use crate::chaos::ChaosPlan;
use crate::frame::{read_frame, write_frame, FrameError};
use crate::metrics::ClusterMetrics;
use crate::proto::{decode, encode, FromWorker, JobSpec, ToWorker};
use crate::worker::WORKER_ENV;
use relcnn_obs::trace::{Arg, TraceRecorder, TraceSnapshot};
use relcnn_obs::{Registry, ScrapeServer};
use std::io;
use std::net::SocketAddr;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::sync::mpsc::Sender;
use std::time::{Duration, Instant};

/// Head-side fabric configuration (the job itself lives in [`JobSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Worker processes to spawn. `0` runs every task in-process — the
    /// degenerate local topology, useful as a cluster-free reference.
    pub workers: usize,
    /// Shards per task: the fixed distribution width. Must not depend
    /// on `workers`, or topologies would compute different task sets.
    pub task_shards: usize,
    /// Worker heartbeat period.
    pub heartbeat_ms: u64,
    /// A task unacknowledged this long after assignment means the worker
    /// is hung (it may well still be heartbeating).
    pub task_timeout_ms: u64,
    /// Heartbeat silence after which an *idle* worker is presumed dead.
    pub liveness_timeout_ms: u64,
    /// Requeue attempts per task before the head computes it locally.
    pub max_retries: u32,
    /// Base of the requeue backoff: retry `n` waits
    /// `backoff_base_ms << (n-1)`, capped at `backoff_cap_ms`.
    pub backoff_base_ms: u64,
    /// Cap on the exponential requeue backoff.
    pub backoff_cap_ms: u64,
    /// Deterministic fault schedule shipped to every worker.
    pub chaos: ChaosPlan,
}

impl ClusterConfig {
    /// Defaults tuned for campaign-scale tasks: 50 ms heartbeats, a 30 s
    /// task deadline, two retries with 10 ms → 500 ms backoff.
    pub fn new(workers: usize) -> Self {
        ClusterConfig {
            workers,
            task_shards: 1,
            heartbeat_ms: 50,
            task_timeout_ms: 30_000,
            liveness_timeout_ms: 1_000,
            max_retries: 2,
            backoff_base_ms: 10,
            backoff_cap_ms: 500,
            chaos: ChaosPlan::none(),
        }
    }

    /// Sets the task width (shards per task).
    pub fn with_task_shards(mut self, shards: usize) -> Self {
        self.task_shards = shards;
        self
    }

    /// Sets the per-task deadline.
    pub fn with_task_timeout_ms(mut self, ms: u64) -> Self {
        self.task_timeout_ms = ms;
        self
    }

    /// Sets the heartbeat period and scales the liveness deadline to
    /// twenty periods.
    pub fn with_heartbeat_ms(mut self, ms: u64) -> Self {
        self.heartbeat_ms = ms.max(1);
        self.liveness_timeout_ms = self.heartbeat_ms * 20;
        self
    }

    /// Sets the retry budget per task.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the requeue backoff base and cap.
    pub fn with_backoff_ms(mut self, base: u64, cap: u64) -> Self {
        self.backoff_base_ms = base.max(1);
        self.backoff_cap_ms = cap.max(base.max(1));
        self
    }

    /// Installs a chaos schedule.
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        self.chaos = chaos;
        self
    }

    fn backoff(&self, retries: u32) -> Duration {
        let exp = retries.saturating_sub(1).min(16);
        Duration::from_millis((self.backoff_base_ms << exp).min(self.backoff_cap_ms))
    }
}

/// One completed task: the shard window it covered plus the caller's
/// `(partial, payload)` result pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskOutput {
    /// Task id (position in shard order).
    pub task: usize,
    /// First shard of the window.
    pub shard_lo: usize,
    /// One past the last shard of the window.
    pub shard_hi: usize,
    /// Caller-defined partial aggregate, JSON-encoded.
    pub partial: String,
    /// Caller-defined artefact slice.
    pub payload: String,
}

/// Fabric counters for one cluster run — the distribution-level analog
/// of the engine's `RunStats`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterStats {
    /// Worker processes spawned.
    pub workers_spawned: u64,
    /// Workers declared lost (crash, hang or corrupt frame).
    pub workers_lost: u64,
    /// Tasks in the job.
    pub tasks: u64,
    /// Tasks completed by workers.
    pub tasks_completed: u64,
    /// Tasks requeued after a worker loss.
    pub tasks_requeued: u64,
    /// Assignments that were retries of a previously failed task.
    pub task_retries: u64,
    /// Frames written to workers.
    pub frames_sent: u64,
    /// Frames received from workers (including rejected ones).
    pub frames_received: u64,
    /// Frames rejected by the codec checksum or message parser.
    pub corrupt_frames: u64,
    /// Per-task deadline expiries (hung workers).
    pub task_timeouts: u64,
    /// Heartbeat liveness expiries (silent idle workers).
    pub heartbeat_timeouts: u64,
    /// Tasks the head computed in-process (retries exhausted, no
    /// survivors, or the zero-worker topology).
    pub local_fallbacks: u64,
    /// Whether any worker was lost: the run finished on the recovery
    /// path. The aggregate is byte-identical either way.
    pub degraded: bool,
    /// Wall-clock time of the whole cluster run, µs.
    pub wall_us: u64,
}

impl ClusterStats {
    /// Renders the counters as a JSON object (for JSONL run logs).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workers_spawned\":{},\"workers_lost\":{},\"tasks\":{},\
             \"tasks_completed\":{},\"tasks_requeued\":{},\"task_retries\":{},\
             \"frames_sent\":{},\"frames_received\":{},\"corrupt_frames\":{},\
             \"task_timeouts\":{},\"heartbeat_timeouts\":{},\"local_fallbacks\":{},\
             \"degraded\":{},\"wall_us\":{}}}",
            self.workers_spawned,
            self.workers_lost,
            self.tasks,
            self.tasks_completed,
            self.tasks_requeued,
            self.task_retries,
            self.frames_sent,
            self.frames_received,
            self.corrupt_frames,
            self.task_timeouts,
            self.heartbeat_timeouts,
            self.local_fallbacks,
            self.degraded,
            self.wall_us
        )
    }
}

/// Result of [`run_cluster`]: every task's output in task (= shard)
/// order, plus the fabric counters.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Per-task outputs, indexed by task id. Concatenating `payload`s in
    /// this order reproduces the single-process artefact byte for byte;
    /// merging `partial`s in this order reproduces the full aggregate.
    pub outputs: Vec<TaskOutput>,
    /// Fabric counters.
    pub stats: ClusterStats,
    /// Flight-recorder snapshots shipped by traced workers, sorted by
    /// worker index. Empty when tracing is off (no hooks recorder) — and
    /// best-effort when on: a worker that died before shipping simply
    /// contributes no track. Merge with the head's own drained recorder
    /// via [`relcnn_obs::trace::export_chrome`] for one multi-process
    /// timeline.
    pub traces: Vec<TraceSnapshot>,
}

/// Optional observability side-channels for a cluster run. All of them
/// are write-only taps: hooking a run cannot change a byte of its
/// aggregate (CI byte-diffs hooked vs bare runs at every topology).
#[derive(Default)]
pub struct ClusterHooks<'a> {
    /// Publish live `relcnn_cluster_*` metrics here. When set, the head
    /// also binds a live `GET /metrics` scrape endpoint on
    /// `127.0.0.1:0` for the duration of the run — the same
    /// observed-by-default behaviour as the wall-clock serving loop.
    pub registry: Option<&'a Registry>,
    /// Flight-record the head's orchestration timeline on this recorder
    /// (ring `"head"`), and tell every worker to record too — their
    /// shipped rings land in [`ClusterOutcome::traces`].
    pub trace: Option<&'a TraceRecorder>,
    /// Announces the scrape endpoint's bound address once it is up
    /// (only meaningful with `registry` set).
    pub scrape_notify: Option<&'a Sender<SocketAddr>>,
}

impl<'a> ClusterHooks<'a> {
    /// No hooks: bare run.
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the metrics registry (and thereby the live scrape endpoint).
    pub fn with_registry(mut self, registry: &'a Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Sets the flight recorder.
    pub fn with_trace(mut self, recorder: &'a TraceRecorder) -> Self {
        self.trace = Some(recorder);
        self
    }

    /// Sets the scrape-address announcement channel.
    pub fn with_scrape_notify(mut self, tx: &'a Sender<SocketAddr>) -> Self {
        self.scrape_notify = Some(tx);
        self
    }
}

#[derive(Clone, Copy, PartialEq)]
enum TaskState {
    Pending,
    Running,
    Done,
}

struct Task {
    lo: usize,
    hi: usize,
    retries: u32,
    not_before: Instant,
    state: TaskState,
}

enum Event {
    Msg(FromWorker),
    Corrupt(String),
    Eof,
}

struct Seat {
    child: Child,
    stdin: ChildStdin,
    alive: bool,
    last_seen: Instant,
    running: Option<(usize, Instant)>,
}

/// Runs `job` over `config.workers` worker processes with unregistered
/// metrics. See [`run_cluster_observed`] for the scrapeable variant.
///
/// `task_fn` is used twice: shipped implicitly (the workers are this
/// binary, whose `main` passes the same function to
/// [`run_worker_if_spawned`](crate::run_worker_if_spawned)), and called
/// directly by the head for local fallback. It must be a pure function
/// of `(job, shard_lo, shard_hi)`.
pub fn run_cluster<F>(
    config: &ClusterConfig,
    job: &JobSpec,
    task_fn: F,
) -> io::Result<ClusterOutcome>
where
    F: Fn(&JobSpec, usize, usize) -> (String, String),
{
    run_cluster_hooked(config, job, task_fn, &ClusterHooks::none())
}

/// [`run_cluster`] publishing live `relcnn_cluster_*` metrics on
/// `registry` (including a live scrape endpoint; see
/// [`ClusterHooks::registry`]).
pub fn run_cluster_observed<F>(
    config: &ClusterConfig,
    job: &JobSpec,
    task_fn: F,
    registry: &Registry,
) -> io::Result<ClusterOutcome>
where
    F: Fn(&JobSpec, usize, usize) -> (String, String),
{
    run_cluster_hooked(
        config,
        job,
        task_fn,
        &ClusterHooks::none().with_registry(registry),
    )
}

/// [`run_cluster`] with the full set of observability side-channels:
/// metrics + live scrape endpoint, flight-recorder tracing across the
/// head and every worker, and scrape-address announcement.
pub fn run_cluster_hooked<F>(
    config: &ClusterConfig,
    job: &JobSpec,
    task_fn: F,
    hooks: &ClusterHooks<'_>,
) -> io::Result<ClusterOutcome>
where
    F: Fn(&JobSpec, usize, usize) -> (String, String),
{
    let cm = match hooks.registry {
        Some(registry) => ClusterMetrics::registered(registry),
        None => ClusterMetrics::unregistered(),
    };
    run_cluster_with(config, job, task_fn, &cm, hooks)
}

fn send_to(seat: &mut Seat, msg: &ToWorker, stats: &mut ClusterStats, cm: &ClusterMetrics) -> bool {
    let ok = write_frame(&mut seat.stdin, &encode(msg)).is_ok();
    if ok {
        stats.frames_sent += 1;
        cm.frames_sent.inc();
    }
    ok
}

#[allow(clippy::too_many_arguments)]
fn lose_worker(
    w: usize,
    reason: &str,
    seat: &mut Seat,
    tasks: &mut [Task],
    config: &ClusterConfig,
    stats: &mut ClusterStats,
    cm: &ClusterMetrics,
    flight: &Flight,
) {
    if !seat.alive {
        return;
    }
    seat.alive = false;
    stats.workers_lost += 1;
    stats.degraded = true;
    cm.workers_lost.inc();
    cm.workers_live.sub(1);
    cm.degraded.set(1);
    flight.ring.instant(
        "kill",
        "cluster",
        flight.rec.now_us(),
        &[Arg::U("worker", w as u64), Arg::S("reason", reason)],
    );
    let _ = seat.child.kill();
    let _ = seat.child.wait();
    if let Some((t, _)) = seat.running.take() {
        if tasks[t].state == TaskState::Running {
            tasks[t].state = TaskState::Pending;
            tasks[t].retries += 1;
            tasks[t].not_before = Instant::now() + config.backoff(tasks[t].retries);
            stats.tasks_requeued += 1;
            cm.tasks_requeued.inc();
            flight.ring.instant(
                "requeue",
                "cluster",
                flight.rec.now_us(),
                &[
                    Arg::U("task", t as u64),
                    Arg::U("retry", u64::from(tasks[t].retries)),
                ],
            );
            eprintln!(
                "[cluster] worker {w} lost ({reason}); task {t} requeued (retry {})",
                tasks[t].retries
            );
            return;
        }
    }
    eprintln!("[cluster] worker {w} lost ({reason}); nothing in flight");
}

/// The head's own flight-recorder handles, bundled so `lose_worker` and
/// the event loop can narrate without another pair of parameters each.
struct Flight {
    rec: TraceRecorder,
    ring: relcnn_obs::TraceRing,
}

fn run_cluster_with<F>(
    config: &ClusterConfig,
    job: &JobSpec,
    task_fn: F,
    cm: &ClusterMetrics,
    hooks: &ClusterHooks<'_>,
) -> io::Result<ClusterOutcome>
where
    F: Fn(&JobSpec, usize, usize) -> (String, String),
{
    let started = Instant::now();
    let mut stats = ClusterStats::default();
    cm.degraded.set(0);

    // Head-side flight recorder (off = every record call is a no-op).
    let rec = hooks.trace.cloned().unwrap_or_default();
    let ring = rec.ring("head");
    let run_begin = rec.now_us();
    let flight = Flight {
        ring: ring.clone(),
        rec: rec.clone(),
    };

    // Observed head runs get a live scrape endpoint by default,
    // mirroring the wall-clock serving front-end.
    let scrape = hooks.registry.map(|reg| {
        let srv = ScrapeServer::bind("127.0.0.1:0", reg.clone()).expect("bind scrape endpoint");
        if let Some(tx) = hooks.scrape_notify {
            let _ = tx.send(srv.addr());
        }
        srv
    });

    let width = config.task_shards.max(1);
    let now = Instant::now();
    let mut tasks: Vec<Task> = (0..job.shards)
        .step_by(width)
        .map(|lo| Task {
            lo,
            hi: (lo + width).min(job.shards),
            retries: 0,
            not_before: now,
            state: TaskState::Pending,
        })
        .collect();
    stats.tasks = tasks.len() as u64;
    let mut outputs: Vec<Option<TaskOutput>> = tasks.iter().map(|_| None).collect();
    let run_local = |i: usize,
                     tasks: &mut Vec<Task>,
                     outputs: &mut Vec<Option<TaskOutput>>,
                     stats: &mut ClusterStats| {
        let fallback_begin = rec.now_us();
        let (partial, payload) = task_fn(job, tasks[i].lo, tasks[i].hi);
        ring.span(
            "local_fallback",
            "cluster",
            fallback_begin,
            rec.now_us(),
            &[
                Arg::U("task", i as u64),
                Arg::U("shard_lo", tasks[i].lo as u64),
                Arg::U("shard_hi", tasks[i].hi as u64),
            ],
        );
        outputs[i] = Some(TaskOutput {
            task: i,
            shard_lo: tasks[i].lo,
            shard_hi: tasks[i].hi,
            partial,
            payload,
        });
        tasks[i].state = TaskState::Done;
        stats.local_fallbacks += 1;
        cm.local_fallbacks.inc();
    };
    let finish_trace = |stats: &ClusterStats| {
        if stats.degraded {
            ring.instant(
                "degraded_completion",
                "cluster",
                rec.now_us(),
                &[
                    Arg::U("workers_lost", stats.workers_lost),
                    Arg::U("tasks_requeued", stats.tasks_requeued),
                    Arg::U("local_fallbacks", stats.local_fallbacks),
                ],
            );
        }
        ring.span(
            "cluster_run",
            "cluster",
            run_begin,
            rec.now_us(),
            &[
                Arg::U("workers", config.workers as u64),
                Arg::U("tasks", stats.tasks),
                Arg::U("degraded", u64::from(stats.degraded)),
            ],
        );
    };

    if config.workers == 0 {
        // Degenerate local topology: no processes, no pipes, no chaos.
        for i in 0..tasks.len() {
            run_local(i, &mut tasks, &mut outputs, &mut stats);
        }
        stats.wall_us = started.elapsed().as_micros() as u64;
        finish_trace(&stats);
        if let Some(srv) = scrape {
            srv.shutdown();
        }
        return Ok(ClusterOutcome {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("local task"))
                .collect(),
            stats,
            traces: Vec::new(),
        });
    }

    let exe = std::env::current_exe()?;
    let (tx, rx) = mpsc::channel::<(usize, Event)>();
    let mut seats: Vec<Seat> = Vec::with_capacity(config.workers);
    let mut readers = Vec::with_capacity(config.workers);
    for w in 0..config.workers {
        let mut child = Command::new(&exe)
            .env(WORKER_ENV, w.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        stats.workers_spawned += 1;
        cm.workers_spawned.inc();
        cm.workers_live.add(1);
        ring.instant(
            "spawn",
            "cluster",
            rec.now_us(),
            &[Arg::U("worker", w as u64)],
        );
        let stdin = child.stdin.take().expect("piped child stdin");
        let mut stdout = child.stdout.take().expect("piped child stdout");
        let tx = tx.clone();
        readers.push(std::thread::spawn(move || loop {
            match read_frame(&mut stdout) {
                Ok(bytes) => match decode::<FromWorker>(&bytes) {
                    Ok(msg) => {
                        if tx.send((w, Event::Msg(msg))).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send((w, Event::Corrupt(format!("message parse: {e}"))));
                        return;
                    }
                },
                Err(FrameError::Closed) => {
                    let _ = tx.send((w, Event::Eof));
                    return;
                }
                Err(e) => {
                    // After a framing error the stream has no recoverable
                    // sync point; stop reading and let the head kill us.
                    let _ = tx.send((w, Event::Corrupt(e.to_string())));
                    return;
                }
            }
        }));
        let mut seat = Seat {
            child,
            stdin,
            alive: true,
            last_seen: Instant::now(),
            running: None,
        };
        let setup = ToWorker::Setup {
            worker: w,
            job: job.clone(),
            heartbeat_ms: config.heartbeat_ms,
            chaos: config.chaos,
            trace: rec.is_on(),
        };
        if !send_to(&mut seat, &setup, &mut stats, cm) {
            lose_worker(
                w,
                "setup write failed",
                &mut seat,
                &mut tasks,
                config,
                &mut stats,
                cm,
                &flight,
            );
        }
        seats.push(seat);
    }
    drop(tx);

    // Traced workers ship their drained rings home; collected here and
    // sorted by worker index into the outcome's merged timeline.
    let mut worker_traces: Vec<(usize, TraceSnapshot)> = Vec::new();

    let tick = Duration::from_millis(config.heartbeat_ms.clamp(5, 50));
    let mut remaining = tasks.len();
    while remaining > 0 {
        // Retry budget exhausted → the head computes the task itself:
        // guaranteed forward progress no matter what the fleet does.
        for i in 0..tasks.len() {
            if tasks[i].state == TaskState::Pending && tasks[i].retries > config.max_retries {
                eprintln!("[cluster] task {i} exhausted retries; computing locally");
                run_local(i, &mut tasks, &mut outputs, &mut stats);
                remaining -= 1;
            }
        }
        if remaining == 0 {
            break;
        }
        // No survivors → everything still pending runs locally.
        if seats.iter().all(|s| !s.alive) {
            for i in 0..tasks.len() {
                if tasks[i].state != TaskState::Done {
                    run_local(i, &mut tasks, &mut outputs, &mut stats);
                }
            }
            break;
        }
        // Assign ready tasks to idle survivors.
        let now = Instant::now();
        for (w, seat) in seats.iter_mut().enumerate() {
            if !seat.alive || seat.running.is_some() {
                continue;
            }
            let Some(i) = tasks
                .iter()
                .position(|t| t.state == TaskState::Pending && t.not_before <= now)
            else {
                break;
            };
            let assign = ToWorker::Assign {
                task: i,
                shard_lo: tasks[i].lo,
                shard_hi: tasks[i].hi,
            };
            if send_to(seat, &assign, &mut stats, cm) {
                tasks[i].state = TaskState::Running;
                seat.running = Some((i, now));
                if tasks[i].retries > 0 {
                    stats.task_retries += 1;
                    cm.task_retries.inc();
                }
                ring.instant(
                    "assign",
                    "cluster",
                    rec.now_us(),
                    &[
                        Arg::U("worker", w as u64),
                        Arg::U("task", i as u64),
                        Arg::U("shard_lo", tasks[i].lo as u64),
                        Arg::U("shard_hi", tasks[i].hi as u64),
                        Arg::U("retry", u64::from(tasks[i].retries)),
                    ],
                );
            } else {
                lose_worker(
                    w,
                    "assign write failed",
                    seat,
                    &mut tasks,
                    config,
                    &mut stats,
                    cm,
                    &flight,
                );
            }
        }
        // Drain events (or wait one tick).
        match rx.recv_timeout(tick) {
            Ok((w, event)) => {
                // Trace frames are observability side traffic: collected
                // even from seats already marked dead (a chaos-killed
                // worker ships its ring right before exiting), and kept
                // out of the fabric counters so `ClusterStats` stays
                // identical between trace-on and trace-off runs.
                let event = match event {
                    Event::Msg(FromWorker::Trace { worker, snapshot }) => {
                        worker_traces.push((worker, snapshot));
                        continue;
                    }
                    other => other,
                };
                if seats[w].alive {
                    match event {
                        Event::Msg(msg) => {
                            stats.frames_received += 1;
                            cm.frames_received.inc();
                            seats[w].last_seen = Instant::now();
                            if let FromWorker::Done {
                                task,
                                partial,
                                payload,
                                ..
                            } = msg
                            {
                                if task >= tasks.len() {
                                    stats.corrupt_frames += 1;
                                    cm.corrupt_frames.inc();
                                    lose_worker(
                                        w,
                                        "task id out of range",
                                        &mut seats[w],
                                        &mut tasks,
                                        config,
                                        &mut stats,
                                        cm,
                                        &flight,
                                    );
                                    continue;
                                }
                                seats[w].running = None;
                                if outputs[task].is_none() {
                                    outputs[task] = Some(TaskOutput {
                                        task,
                                        shard_lo: tasks[task].lo,
                                        shard_hi: tasks[task].hi,
                                        partial,
                                        payload,
                                    });
                                    tasks[task].state = TaskState::Done;
                                    remaining -= 1;
                                    stats.tasks_completed += 1;
                                    cm.tasks_completed.inc();
                                    ring.instant(
                                        "task_done",
                                        "cluster",
                                        rec.now_us(),
                                        &[Arg::U("worker", w as u64), Arg::U("task", task as u64)],
                                    );
                                }
                            }
                        }
                        Event::Corrupt(detail) => {
                            stats.frames_received += 1;
                            stats.corrupt_frames += 1;
                            cm.frames_received.inc();
                            cm.corrupt_frames.inc();
                            ring.instant(
                                "corrupt_frame",
                                "cluster",
                                rec.now_us(),
                                &[Arg::U("worker", w as u64)],
                            );
                            lose_worker(
                                w,
                                &format!("corrupt frame: {detail}"),
                                &mut seats[w],
                                &mut tasks,
                                config,
                                &mut stats,
                                cm,
                                &flight,
                            );
                        }
                        Event::Eof => {
                            lose_worker(
                                w,
                                "pipe closed (crash)",
                                &mut seats[w],
                                &mut tasks,
                                config,
                                &mut stats,
                                cm,
                                &flight,
                            );
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Every reader exited and every event was drained; any
                // seat still marked alive is unreachable.
                for (w, seat) in seats.iter_mut().enumerate() {
                    lose_worker(
                        w,
                        "event channel drained",
                        seat,
                        &mut tasks,
                        config,
                        &mut stats,
                        cm,
                        &flight,
                    );
                }
            }
        }
        // Deadlines: a running task past its deadline means a hung
        // worker (heartbeats notwithstanding); an idle worker silent
        // past the liveness window is dead.
        let now = Instant::now();
        for (w, seat) in seats.iter_mut().enumerate() {
            if !seat.alive {
                continue;
            }
            if let Some((t, at)) = seat.running {
                if now.duration_since(at) > Duration::from_millis(config.task_timeout_ms) {
                    stats.task_timeouts += 1;
                    cm.task_timeouts.inc();
                    ring.instant(
                        "task_timeout",
                        "cluster",
                        rec.now_us(),
                        &[Arg::U("worker", w as u64), Arg::U("task", t as u64)],
                    );
                    lose_worker(
                        w,
                        &format!("task {t} deadline"),
                        seat,
                        &mut tasks,
                        config,
                        &mut stats,
                        cm,
                        &flight,
                    );
                }
            } else if now.duration_since(seat.last_seen)
                > Duration::from_millis(config.liveness_timeout_ms)
            {
                stats.heartbeat_timeouts += 1;
                cm.heartbeat_timeouts.inc();
                ring.instant(
                    "heartbeat_timeout",
                    "cluster",
                    rec.now_us(),
                    &[Arg::U("worker", w as u64)],
                );
                lose_worker(
                    w,
                    "heartbeat silence",
                    seat,
                    &mut tasks,
                    config,
                    &mut stats,
                    cm,
                    &flight,
                );
            }
        }
    }

    // Clean shutdown: command, close the pipe, reap.
    for seat in seats.iter_mut() {
        if seat.alive {
            let _ = send_to(seat, &ToWorker::Shutdown, &mut stats, cm);
            cm.workers_live.sub(1);
        }
    }
    for mut seat in seats {
        drop(seat.stdin);
        let _ = seat.child.wait();
    }
    for reader in readers {
        let _ = reader.join();
    }
    // Cleanly shut-down workers ship their rings in response to
    // `Shutdown` — after the event loop stopped listening. Every reader
    // has exited, so the channel holds whatever arrived last.
    for (_, event) in rx.try_iter() {
        if let Event::Msg(FromWorker::Trace { worker, snapshot }) = event {
            worker_traces.push((worker, snapshot));
        }
    }
    worker_traces.sort_by_key(|(w, _)| *w);

    stats.wall_us = started.elapsed().as_micros() as u64;
    finish_trace(&stats);
    if let Some(srv) = scrape {
        srv.shutdown();
    }
    Ok(ClusterOutcome {
        outputs: outputs
            .into_iter()
            .map(|o| o.expect("every task completed or fell back locally"))
            .collect(),
        stats,
        traces: worker_traces.into_iter().map(|(_, s)| s).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcnn_obs::trace::export_chrome;
    use std::sync::Mutex;

    fn tiny_job() -> JobSpec {
        JobSpec {
            workload: "test".into(),
            trials: 8,
            seed: 7,
            shards: 4,
            chunk: 0,
            threads: 1,
        }
    }

    /// The no-fork topology exercises every hook without spawning
    /// processes (the test binary's `main` is not worker-aware): the
    /// scrape endpoint must be live *during* the run — proven by
    /// scraping it from inside the task function — announced on the
    /// notify channel, and the head's flight recorder must narrate a
    /// validator-clean timeline without changing the outputs.
    #[test]
    fn hooked_local_run_scrapes_live_announces_and_traces() {
        let registry = Registry::new();
        let recorder = TraceRecorder::new("cluster-head");
        let (tx, rx) = mpsc::channel::<SocketAddr>();
        let scraped: Mutex<Option<String>> = Mutex::new(None);

        let config = ClusterConfig::new(0).with_task_shards(2);
        let job = tiny_job();
        let task_fn = |job: &JobSpec, lo: usize, hi: usize| {
            let mut page = scraped.lock().expect("scrape cell");
            if page.is_none() {
                let addr = rx.recv().expect("scrape address announced");
                let (status, body) =
                    relcnn_obs::scrape_once(addr, "/metrics").expect("live scrape");
                assert!(status.contains("200"), "{status}");
                *page = Some(body);
            }
            (
                format!("{{\"trials\":{}}}", job.trials),
                format!("{lo}..{hi}\n"),
            )
        };
        let hooks = ClusterHooks::none()
            .with_registry(&registry)
            .with_trace(&recorder)
            .with_scrape_notify(&tx);
        let outcome = run_cluster_hooked(&config, &job, task_fn, &hooks).expect("local run");

        assert_eq!(outcome.outputs.len(), 2);
        assert_eq!(outcome.outputs[1].payload, "2..4\n");
        assert_eq!(outcome.stats.local_fallbacks, 2);
        assert!(outcome.traces.is_empty(), "no workers, no shipped rings");
        let page = scraped.lock().expect("scrape cell");
        let page = page.as_deref().expect("task scraped the live endpoint");
        assert!(
            page.contains("relcnn_cluster_local_fallbacks_total"),
            "{page}"
        );

        let chrome = export_chrome(&[recorder.drain()]);
        let parsed = relcnn_obs::trace::validate(&chrome).expect("validator-clean export");
        assert_eq!(parsed.count('B', "cluster_run"), 1);
        assert_eq!(parsed.count('B', "local_fallback"), 2);
        assert_eq!(parsed.count('i', "degraded_completion"), 0);
    }

    /// Bare runs keep tracing fully off: the outcome carries no
    /// snapshots and an off recorder records nothing.
    #[test]
    fn unhooked_local_run_records_nothing() {
        let config = ClusterConfig::new(0);
        let outcome = run_cluster(&config, &tiny_job(), |_, lo, hi| {
            (String::from("{}"), format!("{lo}..{hi}\n"))
        })
        .expect("local run");
        assert_eq!(outcome.outputs.len(), 4);
        assert!(outcome.traces.is_empty());
        assert!(!outcome.stats.degraded);
    }
}
