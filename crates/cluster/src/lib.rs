//! # relcnn-cluster — multi-process campaign fabric
//!
//! Distributes a deterministic campaign over N worker *processes* with
//! the same contract the runtime engine gives worker *threads*: the
//! merged aggregate is byte-identical at every topology — 1 process × 8
//! threads, 2 × 4, 4 × 2 — and stays byte-identical when workers die
//! mid-run.
//!
//! ## Topology
//!
//! ```text
//!            ┌────────────────────── head process ─────────────────────┐
//!            │ task queue (fixed-width shard ranges)   merge in        │
//!            │ requeue on loss · backoff · deadlines   task order      │
//!            └──┬───────────────┬───────────────┬──────────▲───────────┘
//!     Setup/    │ stdin pipe    │               │          │ Done{partial,
//!     Assign ▼  │ frames        │               │          │ payload}
//!            ┌──▼─────┐     ┌───▼────┐      ┌───▼────┐     │ Heartbeat
//!            │worker 0│     │worker 1│   …   │worker N│ ────┘ (stdout pipe)
//!            │ engine │     │ engine │      │ engine │
//!            │ T thr  │     │ T thr  │      │ T thr  │  ← same binary,
//!            └────────┘     └────────┘      └────────┘    WORKER_ENV set
//! ```
//!
//! The head re-invokes the **current binary** with
//! [`WORKER_ENV`] set; the binary's `main` calls
//! [`run_worker_if_spawned`] first, so the same executable is both head
//! and worker. Messages are serde-JSON inside length-prefixed,
//! CRC-checksummed [`frame`]s on the child pipes — a corrupt frame is
//! *detected*, never parsed.
//!
//! ## Why byte-identity survives topology and faults
//!
//! The unit of distribution is a fixed-width contiguous **shard range**
//! of the full [`RunPlan`](../relcnn_runtime)'s shard axis (a
//! [`JobSpec`] names the plan; tasks are cut independently of the
//! process count). The runtime's shard-window support guarantees each
//! task's result stream is the exact slice of the single-process run,
//! so *who* computes a task — original assignee, a survivor after a
//! requeue, or the head itself as a last resort — cannot change a byte;
//! the head merely merges partials and concatenates payloads in task
//! order.
//!
//! ## Failure semantics
//!
//! | failure        | worker symptom                   | head detection          | recovery |
//! |----------------|----------------------------------|-------------------------|----------|
//! | crash          | process exits                    | pipe EOF                | kill + requeue |
//! | hang           | heartbeats, but no result        | per-task deadline       | kill + requeue |
//! | corrupt frame  | checksum mismatch on the pipe    | codec `FrameError`      | kill + requeue |
//!
//! Requeues use bounded exponential backoff; a task that exhausts
//! [`ClusterConfig::max_retries`] — or outlives the last worker — is
//! computed in-process by the head. Any loss marks the run **degraded**
//! ([`ClusterStats::degraded`], `relcnn_cluster_degraded`), with the
//! same byte-identical aggregate. The [`ChaosPlan`] layer injects all
//! three failures deterministically from the campaign seed, so CI can
//! assert exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod frame;
pub mod head;
pub mod metrics;
pub mod proto;
pub mod worker;

pub use chaos::ChaosPlan;
pub use frame::{
    crc32, encode_frame, read_frame, write_frame, FrameError, FRAME_MAGIC, MAX_FRAME_LEN,
};
pub use head::{
    run_cluster, run_cluster_hooked, run_cluster_observed, ClusterConfig, ClusterHooks,
    ClusterOutcome, ClusterStats, TaskOutput,
};
pub use metrics::ClusterMetrics;
pub use proto::{FromWorker, JobSpec, ToWorker};
pub use worker::{run_worker_if_spawned, CHAOS_CORRUPT_EXIT, CHAOS_KILL_EXIT, WORKER_ENV};
