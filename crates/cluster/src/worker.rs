//! Worker-process side of the fabric.
//!
//! A worker is the *same binary* as the head, re-invoked with
//! [`WORKER_ENV`] set to its index: the binary's `main` calls
//! [`run_worker_if_spawned`] before anything else (argument parsing
//! included), so a worker process never falls through into head code.
//! Frames arrive on stdin and leave on stdout; stderr stays inherited
//! for diagnostics.
//!
//! The first frame must be `Setup` (job, heartbeat period, chaos plan).
//! After `Hello`, the worker loops `Assign` → compute → `Done` until
//! `Shutdown` or a clean pipe close. A heartbeat thread beats through
//! the same mutex-guarded stdout for the whole lifetime — including
//! while a task computes, which is why the head can tell a *slow* worker
//! (beating, within its task deadline) from a *hung* one (beating past
//! it) from a *dead* one (EOF).

use crate::frame::{encode_frame, read_frame, write_frame, FrameError};
use crate::proto::{decode, encode, FromWorker, JobSpec, ToWorker};
use relcnn_obs::trace::{Arg, TraceRecorder};
use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Environment variable marking a process as a cluster worker; the value
/// is the worker's index.
pub const WORKER_ENV: &str = "RELCNN_CLUSTER_WORKER";

/// Exit code of a chaos-plan kill (distinguishable from a real crash in
/// worker stderr traces).
pub const CHAOS_KILL_EXIT: i32 = 17;

/// Exit code after a chaos-plan corrupt frame was sent.
pub const CHAOS_CORRUPT_EXIT: i32 = 18;

/// If [`WORKER_ENV`] is set, runs the worker protocol loop with
/// `task_fn` computing each assigned shard window, then exits the
/// process — the call never returns in a worker. In a head (or plain
/// CLI) process it returns immediately.
///
/// `task_fn(job, shard_lo, shard_hi)` returns the task's
/// `(partial aggregate JSON, artefact payload)` pair; it must be a pure
/// function of its arguments for the cluster's byte-identity guarantee
/// to hold.
pub fn run_worker_if_spawned<F>(task_fn: F)
where
    F: Fn(&JobSpec, usize, usize) -> (String, String),
{
    let Ok(value) = std::env::var(WORKER_ENV) else {
        return;
    };
    let me: usize = value
        .parse()
        .unwrap_or_else(|_| panic!("{WORKER_ENV} must hold a worker index, got {value:?}"));
    worker_loop(me, task_fn);
    std::process::exit(0);
}

fn worker_loop<F>(me: usize, task_fn: F)
where
    F: Fn(&JobSpec, usize, usize) -> (String, String),
{
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let output = Arc::new(Mutex::new(std::io::stdout()));

    let first = read_frame(&mut input).unwrap_or_else(|e| panic!("worker {me}: setup frame: {e}"));
    let setup: ToWorker =
        decode(&first).unwrap_or_else(|e| panic!("worker {me}: setup decode: {e}"));
    let ToWorker::Setup {
        worker,
        job,
        heartbeat_ms,
        chaos,
        trace,
    } = setup
    else {
        panic!("worker {me}: first frame must be Setup, got {setup:?}");
    };
    assert_eq!(worker, me, "setup frame addressed to the wrong worker");

    // Flight recorder: a traced worker records its task timeline and
    // ships the drained ring home as a `Trace` frame — on clean
    // shutdown, and best-effort right before a chaos kill/corrupt exit,
    // so even a murdered worker leaves a pid track in the merged view.
    let rec = if trace {
        TraceRecorder::new(format!("worker-{me}"))
    } else {
        TraceRecorder::off()
    };
    let ring = rec.ring("tasks");

    {
        let output = Arc::clone(&output);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(heartbeat_ms.max(1)));
            let mut out = output.lock().expect("worker stdout poisoned");
            if write_frame(&mut *out, &encode(&FromWorker::Heartbeat { worker: me })).is_err() {
                return; // head is gone; the main loop will see the close
            }
        });
    }

    {
        let mut out = output.lock().expect("worker stdout poisoned");
        if write_frame(&mut *out, &encode(&FromWorker::Hello { worker: me })).is_err() {
            std::process::exit(0);
        }
    }

    let mut completed = 0u64;
    loop {
        let bytes = match read_frame(&mut input) {
            Ok(bytes) => bytes,
            Err(FrameError::Closed) => break,
            Err(e) => panic!("worker {me}: command stream: {e}"),
        };
        match decode::<ToWorker>(&bytes) {
            Ok(ToWorker::Assign {
                task,
                shard_lo,
                shard_hi,
            }) => {
                let task_begin = rec.now_us();
                let (partial, payload) = task_fn(&job, shard_lo, shard_hi);
                ring.span(
                    "task",
                    "cluster",
                    task_begin,
                    rec.now_us(),
                    &[
                        Arg::U("task", task as u64),
                        Arg::U("shard_lo", shard_lo as u64),
                        Arg::U("shard_hi", shard_hi as u64),
                    ],
                );
                // Chaos triggers sit between compute and send: the work
                // is genuinely done (and paid for) when the fault fires,
                // which is what makes the requeue path interesting.
                if chaos.kill_worker == Some(me) && completed == chaos.kill_after_tasks {
                    eprintln!("[worker {me}] chaos kill before sending task {task}");
                    ring.instant(
                        "chaos_kill",
                        "cluster",
                        rec.now_us(),
                        &[Arg::U("task", task as u64)],
                    );
                    ship_trace(&output, me, &rec);
                    std::process::exit(CHAOS_KILL_EXIT);
                }
                if chaos.hang_worker == Some(me) && completed == chaos.hang_result {
                    eprintln!("[worker {me}] chaos hang withholding task {task}");
                    ring.instant(
                        "chaos_hang",
                        "cluster",
                        rec.now_us(),
                        &[Arg::U("task", task as u64)],
                    );
                    ship_trace(&output, me, &rec);
                    // Heartbeats continue; only the per-task deadline
                    // can end this.
                    loop {
                        std::thread::sleep(Duration::from_secs(3600));
                    }
                }
                let msg = encode(&FromWorker::Done {
                    worker: me,
                    task,
                    partial,
                    payload,
                });
                let corrupting =
                    chaos.corrupt_worker == Some(me) && completed == chaos.corrupt_result;
                if corrupting {
                    // The trace must leave *before* the corrupted frame:
                    // the head stops reading this pipe at the checksum
                    // failure.
                    ring.instant(
                        "chaos_corrupt",
                        "cluster",
                        rec.now_us(),
                        &[Arg::U("task", task as u64)],
                    );
                    ship_trace(&output, me, &rec);
                }
                let mut out = output.lock().expect("worker stdout poisoned");
                if corrupting {
                    eprintln!("[worker {me}] chaos corrupting result frame of task {task}");
                    let mut frame = encode_frame(&msg);
                    // Flip one payload bit *after* the checksum was
                    // computed — the codec must reject the frame.
                    let last = frame.len() - 1;
                    frame[last] ^= 0x01;
                    let _ = out.write_all(&frame);
                    let _ = out.flush();
                    std::process::exit(CHAOS_CORRUPT_EXIT);
                }
                if write_frame(&mut *out, &msg).is_err() {
                    std::process::exit(0);
                }
                completed += 1;
            }
            Ok(ToWorker::Shutdown) => break,
            Ok(other) => panic!("worker {me}: unexpected command {other:?}"),
            Err(e) => panic!("worker {me}: command decode: {e}"),
        }
    }
    ship_trace(&output, me, &rec);
}

/// Drains the worker's recorder and writes it home as a `Trace` frame
/// (no-op when tracing is off; send errors are ignored — the head may
/// already be gone).
fn ship_trace(output: &Mutex<std::io::Stdout>, me: usize, rec: &TraceRecorder) {
    if !rec.is_on() {
        return;
    }
    let msg = encode(&FromWorker::Trace {
        worker: me,
        snapshot: rec.drain(),
    });
    let mut out = output.lock().expect("worker stdout poisoned");
    let _ = write_frame(&mut *out, &msg);
}
