//! Head↔worker wire protocol: serde-JSON messages inside
//! [`frame`](crate::frame) frames.
//!
//! The fabric is deliberately workload-agnostic: a [`JobSpec`] names the
//! campaign (an opaque `workload` string plus the deterministic plan
//! parameters), tasks are contiguous shard ranges of the *full* plan,
//! and a task's result is whatever the caller's task function produced —
//! a JSON partial aggregate plus an opaque artefact payload the head
//! concatenates in task order.

use crate::chaos::ChaosPlan;
use relcnn_obs::trace::TraceSnapshot;
use serde::{Deserialize, Serialize};

/// The campaign one cluster run executes, broadcast to every worker in
/// its `Setup` frame. Carries the full plan's identity; each task then
/// names a shard window of it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Caller-defined workload descriptor (e.g. a profile name); the
    /// fabric never interprets it.
    pub workload: String,
    /// Total trials of the full plan.
    pub trials: u64,
    /// Campaign seed of the full plan.
    pub seed: u64,
    /// Shard count of the full plan (the axis tasks are cut along).
    pub shards: usize,
    /// Scheduling chunk size (0 = auto), forwarded to the worker's plan.
    pub chunk: u64,
    /// Engine worker threads per process.
    pub threads: usize,
}

/// Head → worker messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ToWorker {
    /// First frame on the pipe: identity, job and chaos schedule.
    Setup {
        /// This worker's index (also in `RELCNN_CLUSTER_WORKER`).
        worker: usize,
        /// The campaign to run windows of.
        job: JobSpec,
        /// Heartbeat period the worker must hold.
        heartbeat_ms: u64,
        /// Deterministic fault schedule (often [`ChaosPlan::none`]).
        chaos: ChaosPlan,
        /// Whether the worker should flight-record its task timeline
        /// and ship it back as a [`FromWorker::Trace`] frame.
        trace: bool,
    },
    /// Compute shards `[shard_lo, shard_hi)` of the job.
    Assign {
        /// Task id (the head's requeue/merge key).
        task: usize,
        /// First shard of the window.
        shard_lo: usize,
        /// One past the last shard of the window.
        shard_hi: usize,
    },
    /// Drain and exit cleanly.
    Shutdown,
}

/// Worker → head messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FromWorker {
    /// First frame back: the worker is up and parsed its `Setup`.
    Hello {
        /// Sender's worker index.
        worker: usize,
    },
    /// Liveness beacon, one per heartbeat period — also sent while a
    /// long task computes, so only the per-task deadline (not the
    /// liveness deadline) can declare a *hung* worker dead.
    Heartbeat {
        /// Sender's worker index.
        worker: usize,
    },
    /// A completed task: the partial aggregate as JSON plus the opaque
    /// artefact bytes (UTF-8 JSONL) for byte-identical stitching.
    Done {
        /// Sender's worker index.
        worker: usize,
        /// Task id being acknowledged.
        task: usize,
        /// Caller-defined partial aggregate, JSON-encoded.
        partial: String,
        /// Caller-defined artefact slice (concatenated in task order).
        payload: String,
    },
    /// The worker's drained flight-recorder ring, shipped when tracing
    /// is on: before a clean shutdown, and best-effort right before a
    /// chaos kill or corrupt exit — so even a murdered worker leaves a
    /// timeline for the head to merge as its own pid track.
    Trace {
        /// Sender's worker index.
        worker: usize,
        /// The drained recorder.
        snapshot: TraceSnapshot,
    },
}

/// Encodes a message for the wire.
pub fn encode<T: Serialize>(msg: &T) -> Vec<u8> {
    serde_json::to_string(msg)
        .expect("protocol message serialization cannot fail")
        .into_bytes()
}

/// Decodes a message off the wire.
pub fn decode<T: Deserialize>(bytes: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobSpec {
        JobSpec {
            workload: "latency".into(),
            trials: 240,
            seed: 0xD17E,
            shards: 12,
            chunk: 0,
            threads: 2,
        }
    }

    #[test]
    fn messages_roundtrip() {
        let msgs = vec![
            ToWorker::Setup {
                worker: 2,
                job: job(),
                heartbeat_ms: 100,
                chaos: ChaosPlan::kill_one(9, 4),
                trace: true,
            },
            ToWorker::Assign {
                task: 3,
                shard_lo: 6,
                shard_hi: 8,
            },
            ToWorker::Shutdown,
        ];
        for msg in msgs {
            let back: ToWorker = decode(&encode(&msg)).unwrap();
            assert_eq!(back, msg);
        }
        let done = FromWorker::Done {
            worker: 1,
            task: 3,
            partial: "{\"trials\":40}".into(),
            payload: "{\"trial\":0,\"result\":{}}\n".into(),
        };
        let back: FromWorker = decode(&encode(&done)).unwrap();
        assert_eq!(back, done);
        // A trace frame nests a full snapshot through the same codec.
        let rec = relcnn_obs::TraceRecorder::new("worker-1");
        let ring = rec.ring("tasks");
        ring.span(
            "task",
            "cluster",
            10,
            20,
            &[relcnn_obs::trace::Arg::U("task", 3)],
        );
        let trace = FromWorker::Trace {
            worker: 1,
            snapshot: rec.drain(),
        };
        let back: FromWorker = decode(&encode(&trace)).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn garbage_decodes_to_a_typed_error() {
        assert!(decode::<FromWorker>(b"not json").is_err());
        assert!(decode::<FromWorker>(&[0xFF, 0xFE]).is_err());
    }
}
