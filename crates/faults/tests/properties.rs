//! Property-based tests for the fault-injection substrate.

use proptest::prelude::*;
use relcnn_faults::bits;
use relcnn_faults::{
    BerInjector, FaultInjector, FaultSite, NoFaults, OpContext, ScriptedFault, ScriptedInjector,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// flip_bit is a self-inverse that changes exactly one bit.
    #[test]
    fn flip_bit_involution(v in any::<f32>(), bit in 0u32..32) {
        let flipped = bits::flip_bit(v, bit);
        prop_assert_eq!(bits::hamming_f32(v, flipped), 1);
        prop_assert_eq!(bits::flip_bit(flipped, bit).to_bits(), v.to_bits());
    }

    /// stick_bit is idempotent and forces the bit to the requested level.
    #[test]
    fn stick_bit_idempotent(v in any::<f32>(), bit in 0u32..32, high in any::<bool>()) {
        let once = bits::stick_bit(v, bit, high);
        prop_assert_eq!(bits::stick_bit(once, bit, high).to_bits(), once.to_bits());
        prop_assert_eq!(bits::bit_is_set(once, bit), high);
        prop_assert!(bits::hamming_f32(v, once) <= 1);
    }

    /// NoFaults never modifies any value.
    #[test]
    fn no_faults_is_identity(v in any::<f32>(), op in 0u64..1000) {
        let mut inj = NoFaults::new();
        let out = inj.perturb(OpContext::new(FaultSite::Multiplier, op), v);
        prop_assert_eq!(out.to_bits(), v.to_bits());
    }

    /// BerInjector with the same seed produces the identical corruption
    /// stream; different seeds diverge somewhere.
    #[test]
    fn ber_determinism(seed in 0u64..1000, v in any::<f32>()) {
        let stream = |s: u64| {
            let mut inj = BerInjector::new(s, 0.5);
            (0..32u64)
                .map(|i| inj.perturb(OpContext::new(FaultSite::Multiplier, i), v).to_bits())
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(stream(seed), stream(seed));
    }

    /// A scripted transient fires exactly once however often the op index
    /// is presented.
    #[test]
    fn scripted_transient_single_shot(
        op in 0u64..64,
        bit in 0u32..32,
        presentations in 2usize..10,
        v in prop::num::f32::NORMAL,
    ) {
        let mut inj = ScriptedInjector::new([ScriptedFault::transient_flip(op, bit)]);
        let mut corrupted = 0;
        for _ in 0..presentations {
            let out = inj.perturb(OpContext::new(FaultSite::Multiplier, op), v);
            if out.to_bits() != v.to_bits() {
                corrupted += 1;
            }
        }
        prop_assert_eq!(corrupted, 1, "transient must fire exactly once");
        prop_assert_eq!(inj.stats().injected, 1);
    }

    /// Replica filters are strict: a fault pinned to replica r never
    /// touches other replicas.
    #[test]
    fn replica_pinning(target in 0u8..3, other in 0u8..3, bit in 0u32..32) {
        prop_assume!(target != other);
        let mut inj = ScriptedInjector::new([
            ScriptedFault::transient_flip(0, bit).on_replica(target).permanent(),
        ]);
        let clean = inj.perturb(
            OpContext::new(FaultSite::Multiplier, 0).with_replica(other),
            1.0,
        );
        prop_assert_eq!(clean.to_bits(), 1.0f32.to_bits());
        let hit = inj.perturb(
            OpContext::new(FaultSite::Multiplier, 0).with_replica(target),
            1.0,
        );
        prop_assert_eq!(bits::hamming_f32(1.0, hit), 1);
    }
}
