use crate::bits;
use crate::model::{FaultDuration, FaultKind, FaultSite, OpContext};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Counters maintained by every injector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectorStats {
    /// Values pulled through the injector.
    pub exposures: u64,
    /// Exposures on which a fault actually fired.
    pub injected: u64,
    /// Fired faults whose corrupted value happened to equal the original
    /// (possible for stuck-at and replace faults) — these are *masked at
    /// source* and undetectable by any comparison scheme.
    pub masked: u64,
}

impl InjectorStats {
    /// Fired-fault rate per exposure.
    pub fn injection_rate(&self) -> f64 {
        if self.exposures == 0 {
            0.0
        } else {
            self.injected as f64 / self.exposures as f64
        }
    }
}

/// A source of (possible) corruption for elementary `f32` operations.
///
/// Implementations must be deterministic given their seed so that every
/// experiment in the repository regenerates identically.
pub trait FaultInjector: Send {
    /// Passes `value` through the fault model for the given operation
    /// context, returning the (possibly corrupted) value.
    fn perturb(&mut self, ctx: OpContext, value: f32) -> f32;

    /// Counters accumulated so far.
    fn stats(&self) -> InjectorStats;

    /// Resets counters (not the fault schedule or RNG position).
    fn reset_stats(&mut self);
}

/// The no-fault injector: passes every value through untouched.
///
/// Used for baseline timing runs (Table 1 is measured fault-free).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults {
    stats: InjectorStats,
}

impl NoFaults {
    /// Creates a pass-through injector.
    pub fn new() -> Self {
        NoFaults::default()
    }
}

impl FaultInjector for NoFaults {
    fn perturb(&mut self, _ctx: OpContext, value: f32) -> f32 {
        self.stats.exposures += 1;
        value
    }

    fn stats(&self) -> InjectorStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = InjectorStats::default();
    }
}

/// Uniform bit-error-rate injector: on every exposure, with probability
/// `ber`, flips one uniformly random bit of the value (transient SEU).
///
/// Optionally restricted to a subset of [`FaultSite`]s.
#[derive(Debug, Clone)]
pub struct BerInjector {
    rng: ChaCha8Rng,
    ber: f64,
    sites: Option<Vec<FaultSite>>,
    stats: InjectorStats,
}

impl BerInjector {
    /// Creates an injector with the given seed and per-exposure bit error
    /// rate (clamped to `[0, 1]`).
    pub fn new(seed: u64, ber: f64) -> Self {
        BerInjector {
            rng: ChaCha8Rng::seed_from_u64(seed),
            ber: ber.clamp(0.0, 1.0),
            sites: None,
            stats: InjectorStats::default(),
        }
    }

    /// Restricts injection to the given sites; exposures at other sites
    /// pass through clean.
    pub fn with_sites(mut self, sites: impl Into<Vec<FaultSite>>) -> Self {
        self.sites = Some(sites.into());
        self
    }

    /// The configured bit error rate.
    pub fn ber(&self) -> f64 {
        self.ber
    }
}

impl FaultInjector for BerInjector {
    fn perturb(&mut self, ctx: OpContext, value: f32) -> f32 {
        self.stats.exposures += 1;
        if let Some(sites) = &self.sites {
            if !sites.contains(&ctx.site) {
                return value;
            }
        }
        if self.rng.random::<f64>() < self.ber {
            self.stats.injected += 1;
            let bit = self.rng.random_range(0..bits::WORD_BITS);
            bits::flip_bit(value, bit)
        } else {
            value
        }
    }

    fn stats(&self) -> InjectorStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = InjectorStats::default();
    }
}

/// One precisely scheduled fault for [`ScriptedInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScriptedFault {
    /// Fires when `ctx.op_index == op_index`.
    pub op_index: u64,
    /// Fires only for this replica (`None` = any replica).
    pub replica: Option<u8>,
    /// Fires only at this site (`None` = any site).
    pub site: Option<FaultSite>,
    /// Corruption applied.
    pub kind: FaultKind,
    /// Persistence model. [`FaultDuration::Transient`] faults are consumed
    /// on first firing; others re-arm.
    pub duration: FaultDuration,
}

impl ScriptedFault {
    /// A transient single-bit flip at a specific operation (any replica,
    /// any site) — the workhorse of deterministic unit tests.
    pub fn transient_flip(op_index: u64, bit: u32) -> Self {
        ScriptedFault {
            op_index,
            replica: None,
            site: None,
            kind: FaultKind::BitFlip { bit },
            duration: FaultDuration::Transient,
        }
    }

    /// Restricts the fault to one replica.
    pub fn on_replica(mut self, replica: u8) -> Self {
        self.replica = Some(replica);
        self
    }

    /// Restricts the fault to one site.
    pub fn at_site(mut self, site: FaultSite) -> Self {
        self.site = Some(site);
        self
    }

    /// Makes the fault permanent (fires on every matching exposure,
    /// including retries of the same `op_index`).
    pub fn permanent(mut self) -> Self {
        self.duration = FaultDuration::Permanent;
        self
    }
}

/// Deterministic injector that fires faults exactly where a script says.
///
/// Used by unit/property tests ("a transient flip in replica 1 of op 7
/// must be detected and recovered by one rollback") and by the
/// leaky-bucket dynamics experiments that need *exact* burst patterns.
#[derive(Debug, Clone, Default)]
pub struct ScriptedInjector {
    // op_index -> scripted faults at that index.
    schedule: HashMap<u64, Vec<ScriptedFault>>,
    // Count of transient faults already consumed, keyed by schedule slot.
    consumed: HashMap<(u64, usize), bool>,
    rng: Option<ChaCha8Rng>,
    stats: InjectorStats,
}

impl ScriptedInjector {
    /// Creates an injector from a fault script.
    pub fn new(faults: impl IntoIterator<Item = ScriptedFault>) -> Self {
        let mut schedule: HashMap<u64, Vec<ScriptedFault>> = HashMap::new();
        for f in faults {
            schedule.entry(f.op_index).or_default().push(f);
        }
        ScriptedInjector {
            schedule,
            consumed: HashMap::new(),
            rng: None,
            stats: InjectorStats::default(),
        }
    }

    /// Provides a seed for faults that need randomness
    /// ([`FaultKind::RandomBitFlip`], [`FaultKind::MultiBitFlip`],
    /// [`FaultDuration::Intermittent`]); unscripted randomness defaults to
    /// seed 0.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = Some(ChaCha8Rng::seed_from_u64(seed));
        self
    }

    fn rng(&mut self) -> &mut ChaCha8Rng {
        self.rng.get_or_insert_with(|| ChaCha8Rng::seed_from_u64(0))
    }

    fn apply_kind(&mut self, kind: FaultKind, value: f32) -> f32 {
        match kind {
            FaultKind::BitFlip { bit } => bits::flip_bit(value, bit),
            FaultKind::RandomBitFlip => {
                let bit = self.rng().random_range(0..bits::WORD_BITS);
                bits::flip_bit(value, bit)
            }
            FaultKind::MultiBitFlip { count } => {
                let count = count.min(bits::WORD_BITS);
                let mut v = value;
                let mut chosen = Vec::with_capacity(count as usize);
                while chosen.len() < count as usize {
                    let bit = self.rng().random_range(0..bits::WORD_BITS);
                    if !chosen.contains(&bit) {
                        chosen.push(bit);
                        v = bits::flip_bit(v, bit);
                    }
                }
                v
            }
            FaultKind::StuckBit { bit, high } => bits::stick_bit(value, bit, high),
            FaultKind::Replace { value: v } => v,
        }
    }
}

impl FaultInjector for ScriptedInjector {
    fn perturb(&mut self, ctx: OpContext, value: f32) -> f32 {
        self.stats.exposures += 1;
        let Some(slot) = self.schedule.get(&ctx.op_index).cloned() else {
            return value;
        };
        let mut out = value;
        for (i, fault) in slot.iter().enumerate() {
            if fault.replica.is_some_and(|r| r != ctx.replica) {
                continue;
            }
            if fault.site.is_some_and(|s| s != ctx.site) {
                continue;
            }
            let fires = match fault.duration {
                FaultDuration::Transient => {
                    let key = (ctx.op_index, i);
                    if self.consumed.get(&key).copied().unwrap_or(false) {
                        false
                    } else {
                        self.consumed.insert(key, true);
                        true
                    }
                }
                FaultDuration::Intermittent { activation } => {
                    self.rng().random::<f64>() < activation
                }
                FaultDuration::Permanent => true,
            };
            if fires {
                let corrupted = self.apply_kind(fault.kind, out);
                self.stats.injected += 1;
                if corrupted.to_bits() == out.to_bits() {
                    self.stats.masked += 1;
                }
                out = corrupted;
            }
        }
        out
    }

    fn stats(&self) -> InjectorStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = InjectorStats::default();
    }
}

/// Permanent stuck-bit fault pinned to one processing element.
///
/// Models the paper's §II scenario — "the failure of one of 128 processing
/// elements" — where a single PE of a parallel compute unit develops a
/// hard defect. All exposures on other PEs pass through clean.
#[derive(Debug, Clone)]
pub struct StuckBitInjector {
    pe: u32,
    site: FaultSite,
    bit: u32,
    high: bool,
    stats: InjectorStats,
}

impl StuckBitInjector {
    /// Creates a permanent stuck-bit fault at `site` of processing element
    /// `pe`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 32`.
    pub fn new(pe: u32, site: FaultSite, bit: u32, high: bool) -> Self {
        assert!(bit < bits::WORD_BITS, "bit index {bit} out of range");
        StuckBitInjector {
            pe,
            site,
            bit,
            high,
            stats: InjectorStats::default(),
        }
    }

    /// The afflicted processing element.
    pub fn pe(&self) -> u32 {
        self.pe
    }
}

impl FaultInjector for StuckBitInjector {
    fn perturb(&mut self, ctx: OpContext, value: f32) -> f32 {
        self.stats.exposures += 1;
        if ctx.pe != self.pe || ctx.site != self.site {
            return value;
        }
        let out = bits::stick_bit(value, self.bit, self.high);
        self.stats.injected += 1;
        if out.to_bits() == value.to_bits() {
            self.stats.masked += 1;
        }
        out
    }

    fn stats(&self) -> InjectorStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = InjectorStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(op: u64) -> OpContext {
        OpContext::new(FaultSite::Multiplier, op)
    }

    #[test]
    fn no_faults_passes_through() {
        let mut inj = NoFaults::new();
        for i in 0..100 {
            assert_eq!(inj.perturb(ctx(i), 1.25), 1.25);
        }
        assert_eq!(inj.stats().exposures, 100);
        assert_eq!(inj.stats().injected, 0);
        inj.reset_stats();
        assert_eq!(inj.stats().exposures, 0);
    }

    #[test]
    fn ber_zero_never_fires_ber_one_always_fires() {
        let mut clean = BerInjector::new(1, 0.0);
        let mut dirty = BerInjector::new(1, 1.0);
        for i in 0..200 {
            assert_eq!(clean.perturb(ctx(i), 2.0), 2.0);
            assert_ne!(dirty.perturb(ctx(i), 2.0).to_bits(), 2.0f32.to_bits());
        }
        assert_eq!(clean.stats().injected, 0);
        assert_eq!(dirty.stats().injected, 200);
    }

    #[test]
    fn ber_rate_statistically_plausible() {
        let mut inj = BerInjector::new(7, 0.05);
        for i in 0..20_000 {
            inj.perturb(ctx(i), 1.0);
        }
        let rate = inj.stats().injection_rate();
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn ber_is_deterministic_per_seed() {
        let run = |seed| {
            let mut inj = BerInjector::new(seed, 0.3);
            (0..64)
                .map(|i| inj.perturb(ctx(i), 5.5).to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn ber_site_restriction() {
        let mut inj = BerInjector::new(3, 1.0).with_sites(vec![FaultSite::WeightLoad]);
        let clean = inj.perturb(OpContext::new(FaultSite::Multiplier, 0), 1.0);
        assert_eq!(clean, 1.0);
        let dirty = inj.perturb(OpContext::new(FaultSite::WeightLoad, 1), 1.0);
        assert_ne!(dirty.to_bits(), 1.0f32.to_bits());
    }

    #[test]
    fn scripted_transient_fires_once() {
        let mut inj = ScriptedInjector::new([ScriptedFault::transient_flip(5, bits::SIGN_BIT)]);
        assert_eq!(inj.perturb(ctx(4), 1.0), 1.0);
        assert_eq!(inj.perturb(ctx(5), 1.0), -1.0); // fires
        assert_eq!(inj.perturb(ctx(5), 1.0), 1.0); // consumed: retry sees clean
        assert_eq!(inj.stats().injected, 1);
    }

    #[test]
    fn scripted_permanent_fires_every_time() {
        let mut inj =
            ScriptedInjector::new([ScriptedFault::transient_flip(2, bits::SIGN_BIT).permanent()]);
        assert_eq!(inj.perturb(ctx(2), 1.0), -1.0);
        assert_eq!(inj.perturb(ctx(2), 1.0), -1.0);
        assert_eq!(inj.stats().injected, 2);
    }

    #[test]
    fn scripted_replica_and_site_filters() {
        let mut inj = ScriptedInjector::new([ScriptedFault::transient_flip(1, 31)
            .on_replica(1)
            .at_site(FaultSite::Accumulator)]);
        // Wrong replica: clean.
        assert_eq!(
            inj.perturb(OpContext::new(FaultSite::Accumulator, 1), 3.0),
            3.0
        );
        // Wrong site: clean.
        assert_eq!(
            inj.perturb(
                OpContext::new(FaultSite::Multiplier, 1).with_replica(1),
                3.0
            ),
            3.0
        );
        // Both match: fires.
        assert_eq!(
            inj.perturb(
                OpContext::new(FaultSite::Accumulator, 1).with_replica(1),
                3.0
            ),
            -3.0
        );
    }

    #[test]
    fn scripted_multi_bit_flips_distinct_bits() {
        let mut inj = ScriptedInjector::new([ScriptedFault {
            op_index: 0,
            replica: None,
            site: None,
            kind: FaultKind::MultiBitFlip { count: 3 },
            duration: FaultDuration::Transient,
        }])
        .with_seed(11);
        let out = inj.perturb(ctx(0), 1.0);
        assert_eq!(bits::hamming_f32(1.0, out), 3);
    }

    #[test]
    fn scripted_replace_and_masking() {
        let mut inj = ScriptedInjector::new([ScriptedFault {
            op_index: 0,
            replica: None,
            site: None,
            kind: FaultKind::Replace { value: 4.0 },
            duration: FaultDuration::Permanent,
        }]);
        // Replacing 4.0 with 4.0 is injected but masked at source.
        assert_eq!(inj.perturb(ctx(0), 4.0), 4.0);
        assert_eq!(inj.stats().injected, 1);
        assert_eq!(inj.stats().masked, 1);
    }

    #[test]
    fn intermittent_fires_sometimes() {
        let mut inj = ScriptedInjector::new([ScriptedFault {
            op_index: 0,
            replica: None,
            site: None,
            kind: FaultKind::BitFlip { bit: 31 },
            duration: FaultDuration::Intermittent { activation: 0.5 },
        }])
        .with_seed(5);
        let mut fired = 0;
        for _ in 0..200 {
            if inj.perturb(ctx(0), 1.0) < 0.0 {
                fired += 1;
            }
        }
        assert!((50..150).contains(&fired), "fired {fired}/200");
    }

    #[test]
    fn stuck_bit_only_hits_its_pe_and_site() {
        let mut inj = StuckBitInjector::new(3, FaultSite::Multiplier, bits::SIGN_BIT, true);
        let healthy = inj.perturb(OpContext::new(FaultSite::Multiplier, 0).with_pe(2), 1.0);
        assert_eq!(healthy, 1.0);
        let wrong_site = inj.perturb(OpContext::new(FaultSite::Accumulator, 1).with_pe(3), 1.0);
        assert_eq!(wrong_site, 1.0);
        let hit = inj.perturb(OpContext::new(FaultSite::Multiplier, 2).with_pe(3), 1.0);
        assert_eq!(hit, -1.0);
        // Already-negative value: stuck-high sign bit masks.
        let masked = inj.perturb(OpContext::new(FaultSite::Multiplier, 3).with_pe(3), -2.0);
        assert_eq!(masked, -2.0);
        assert_eq!(inj.stats().masked, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stuck_bit_rejects_bad_bit() {
        StuckBitInjector::new(0, FaultSite::Multiplier, 32, true);
    }

    #[test]
    fn injectors_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<NoFaults>();
        assert_send::<BerInjector>();
        assert_send::<ScriptedInjector>();
        assert_send::<StuckBitInjector>();
    }
}
