//! Skewed per-trial cost models.
//!
//! Fault-injection campaigns have highly non-uniform trial costs: a clean
//! trial runs the qualified kernel once, while an escalation path (leaky
//! bucket climbing toward a persistent-failure abort) re-evaluates the
//! model many times for rollback and re-execution. [`SkewedCost`] is the
//! shared, deterministic description of that skew, used by the runtime's
//! work-stealing benchmarks and tests to generate reproducible
//! pathological schedules: it maps a trial index to the number of model
//! evaluations the trial will perform.
//!
//! The model is intentionally index-based rather than random: clustering
//! the heavy trials at a known place in the index space is what creates
//! the worst case for contiguous-block scheduling (one shard owns all the
//! escalations), which is exactly the case work stealing must win.

use serde::{Deserialize, Serialize};

/// Deterministic skewed trial-cost model: `heavy_every > 0` marks every
/// n-th trial as an escalation, and all trials at index `heavy_from` or
/// above are escalations (a heavy tail clustered in the last shards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkewedCost {
    /// Model evaluations a clean trial performs.
    pub clean_evals: u64,
    /// Model evaluations an escalated trial performs.
    pub escalated_evals: u64,
    /// Mark every n-th trial (by index) as escalated; 0 disables.
    pub heavy_every: u64,
    /// Mark every trial at this index or above as escalated;
    /// `u64::MAX` disables.
    pub heavy_from: u64,
}

impl SkewedCost {
    /// A uniform workload: every trial costs `evals`.
    pub fn uniform(evals: u64) -> Self {
        SkewedCost {
            clean_evals: evals,
            escalated_evals: evals,
            heavy_every: 0,
            heavy_from: u64::MAX,
        }
    }

    /// A heavy tail: trials at `heavy_from` and above cost
    /// `escalated_evals`, everything before costs `clean_evals`. This is
    /// the adversarial case for contiguous-block claiming — the entire
    /// escalation cost lands in the final shards.
    pub fn tail(clean_evals: u64, escalated_evals: u64, heavy_from: u64) -> Self {
        SkewedCost {
            clean_evals,
            escalated_evals,
            heavy_every: 0,
            heavy_from,
        }
    }

    /// Periodic escalations: every `heavy_every`-th trial costs
    /// `escalated_evals` (index 0 included).
    pub fn periodic(clean_evals: u64, escalated_evals: u64, heavy_every: u64) -> Self {
        SkewedCost {
            clean_evals,
            escalated_evals,
            heavy_every,
            heavy_from: u64::MAX,
        }
    }

    /// Whether the trial at `index` takes the escalation path.
    pub fn is_escalated(&self, index: u64) -> bool {
        (self.heavy_every > 0 && index.is_multiple_of(self.heavy_every)) || index >= self.heavy_from
    }

    /// Model evaluations the trial at `index` performs.
    pub fn evals(&self, index: u64) -> u64 {
        if self.is_escalated(index) {
            self.escalated_evals
        } else {
            self.clean_evals
        }
    }

    /// Total evaluations over trials `0..trials` (the work a scheduler
    /// must balance).
    pub fn total_evals(&self, trials: u64) -> u64 {
        (0..trials).map(|i| self.evals(i)).sum()
    }

    /// Skew factor: heaviest single trial over the mean trial cost
    /// (1.0 = uniform). Returns 1.0 for an empty workload.
    pub fn skew_factor(&self, trials: u64) -> f64 {
        if trials == 0 {
            return 1.0;
        }
        let total = self.total_evals(trials);
        if total == 0 {
            return 1.0;
        }
        let max = (0..trials).map(|i| self.evals(i)).max().unwrap_or(0);
        max as f64 * trials as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_has_no_skew() {
        let cost = SkewedCost::uniform(7);
        assert!(!cost.is_escalated(0));
        assert_eq!(cost.evals(123), 7);
        assert_eq!(cost.total_evals(10), 70);
        assert!((cost.skew_factor(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_clusters_heavy_trials() {
        let cost = SkewedCost::tail(1, 100, 8);
        assert!(!cost.is_escalated(7));
        assert!(cost.is_escalated(8));
        assert!(cost.is_escalated(9));
        assert_eq!(cost.total_evals(10), 8 + 200);
        assert!(cost.skew_factor(10) > 1.0);
    }

    #[test]
    fn periodic_marks_every_nth() {
        let cost = SkewedCost::periodic(2, 10, 4);
        let marked: Vec<u64> = (0..9).filter(|&i| cost.is_escalated(i)).collect();
        assert_eq!(marked, vec![0, 4, 8]);
        assert_eq!(cost.total_evals(9), 6 * 2 + 3 * 10);
    }

    #[test]
    fn empty_workload_degenerates_gracefully() {
        let cost = SkewedCost::tail(0, 0, 0);
        assert_eq!(cost.total_evals(5), 0);
        assert_eq!(cost.skew_factor(5), 1.0);
        assert_eq!(SkewedCost::uniform(1).skew_factor(0), 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let cost = SkewedCost::tail(3, 50, 96);
        let json = serde_json::to_string(&cost).expect("serialise");
        let back: SkewedCost = serde_json::from_str(&json).expect("parse");
        assert_eq!(cost, back);
    }
}
