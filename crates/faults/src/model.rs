use serde::{Deserialize, Serialize};
use std::fmt;

/// Where in the dataflow a fault strikes.
///
/// These mirror the paper's threat statement (§II): upsets may act on "the
/// processing element" (multiplier/accumulator) or cause "data corruption
/// of the weights and input data" (the two load sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultSite {
    /// Corruption of a filter weight as it is fetched from memory.
    WeightLoad,
    /// Corruption of an input/activation value as it is fetched.
    ActivationLoad,
    /// Corruption of a multiplier's output inside a processing element.
    Multiplier,
    /// Corruption of the accumulator/adder output inside a processing
    /// element.
    Accumulator,
    /// Corruption of a comparator/max unit output (ReLU, pooling) inside
    /// a processing element.
    Comparator,
}

impl FaultSite {
    /// All injectable sites, for campaign sweeps.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::WeightLoad,
        FaultSite::ActivationLoad,
        FaultSite::Multiplier,
        FaultSite::Accumulator,
        FaultSite::Comparator,
    ];
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultSite::WeightLoad => "weight-load",
            FaultSite::ActivationLoad => "activation-load",
            FaultSite::Multiplier => "multiplier",
            FaultSite::Accumulator => "accumulator",
            FaultSite::Comparator => "comparator",
        };
        f.write_str(s)
    }
}

/// The corruption applied when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultKind {
    /// Flip one specific bit.
    BitFlip {
        /// Bit index (0 = mantissa LSB, 31 = sign).
        bit: u32,
    },
    /// Flip one uniformly random bit (classic SEU model).
    RandomBitFlip,
    /// Flip `count` distinct uniformly random bits (multi-bit upset, as
    /// observed in modern dense SRAM).
    MultiBitFlip {
        /// Number of distinct bits flipped (clamped to 32).
        count: u32,
    },
    /// Stick a specific bit at a level (manufacturing/permanent defect).
    StuckBit {
        /// Bit index.
        bit: u32,
        /// Stuck level.
        high: bool,
    },
    /// Replace the value entirely (worst-case data corruption).
    Replace {
        /// The replacement value.
        value: f32,
    },
}

/// How long a fault condition persists.
///
/// The paper distinguishes random transient SEUs (one strike, gone on
/// re-execution — rollback recovers) from *persistent* failures that the
/// leaky bucket must escalate (§IV: "Only persistent failures are
/// explicitly reported").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultDuration {
    /// Fires exactly once; re-execution sees a healthy unit.
    Transient,
    /// Fires with the given probability on every exposure (flaky joint,
    /// marginal timing) — some retries succeed, some fail.
    Intermittent {
        /// Probability the fault is active at each exposure.
        activation: f64,
    },
    /// Fires on every exposure; retries can never succeed.
    Permanent,
}

/// Identifies one elementary operation exposure for the injector.
///
/// The qualified ALU in `relcnn-relexec` constructs an `OpContext` for
/// every value it pulls through the injector: the global operation index,
/// which redundant replica is executing (faults strike replicas
/// *independently* — this is what makes DMR comparison effective), and the
/// processing-element id (so permanent faults can be pinned to one PE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpContext {
    /// Dataflow site being exercised.
    pub site: FaultSite,
    /// Global elementary-operation index (monotone within an execution).
    pub op_index: u64,
    /// Redundant-execution replica (0 = first/only, 1 = second, 2 = third).
    pub replica: u8,
    /// Processing-element id executing the operation.
    pub pe: u32,
}

impl OpContext {
    /// Creates a context for replica 0 on PE 0.
    pub fn new(site: FaultSite, op_index: u64) -> Self {
        OpContext {
            site,
            op_index,
            replica: 0,
            pe: 0,
        }
    }

    /// Sets the replica index.
    pub fn with_replica(mut self, replica: u8) -> Self {
        self.replica = replica;
        self
    }

    /// Sets the processing-element id.
    pub fn with_pe(mut self, pe: u32) -> Self {
        self.pe = pe;
        self
    }
}

impl fmt::Display for OpContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "op#{} site={} replica={} pe={}",
            self.op_index, self.site, self.replica, self.pe
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sites_listed_once() {
        let mut seen = std::collections::HashSet::new();
        for s in FaultSite::ALL {
            assert!(seen.insert(s));
            assert!(!s.to_string().is_empty());
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn context_builder() {
        let ctx = OpContext::new(FaultSite::Multiplier, 17)
            .with_replica(1)
            .with_pe(5);
        assert_eq!(ctx.op_index, 17);
        assert_eq!(ctx.replica, 1);
        assert_eq!(ctx.pe, 5);
        assert!(ctx.to_string().contains("op#17"));
    }

    #[test]
    fn kinds_and_durations_are_serializable() {
        let kinds = vec![
            FaultKind::BitFlip { bit: 30 },
            FaultKind::RandomBitFlip,
            FaultKind::MultiBitFlip { count: 2 },
            FaultKind::StuckBit { bit: 3, high: true },
            FaultKind::Replace { value: 0.0 },
        ];
        for k in &kinds {
            let json = serde_json::to_string(k).unwrap();
            let back: FaultKind = serde_json::from_str(&json).unwrap();
            assert_eq!(*k, back);
        }
        let d = FaultDuration::Intermittent { activation: 0.5 };
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(d, serde_json::from_str::<FaultDuration>(&json).unwrap());
    }
}
