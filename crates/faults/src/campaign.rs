//! Campaign vocabulary and streaming aggregation.
//!
//! A *campaign* runs many independent trials — each with its own derived
//! seed — and aggregates how often injected faults were detected,
//! recovered, escalated or silently corrupted data. This is the measurement
//! machinery behind experiments X3/X4 (detection coverage vs bit error
//! rate; leaky-bucket availability).
//!
//! This module defines the *data* side of that story: trial outcomes,
//! campaign parameters, and the [`CampaignReport`] aggregate with its
//! streaming [`record`](CampaignReport::record)/[`merge`](CampaignReport::merge)
//! operations. *Execution* — the sharded, multi-threaded worker pool that
//! actually runs trials and feeds this aggregation — lives in the
//! `relcnn-runtime` crate (`relcnn_runtime::run_campaign`), which layers
//! deterministic sharding and early-abort hooks on top of these types.

use crate::injector::InjectorStats;
use serde::{Deserialize, Serialize};

/// The end state of one fault-injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TrialOutcome {
    /// Output equalled the golden (fault-free) result, and no fault needed
    /// recovery — either nothing was injected or injection was masked.
    Correct,
    /// At least one fault was detected and recovered (e.g. by rollback);
    /// final output equalled the golden result.
    DetectedRecovered,
    /// Faults were detected but recovery gave up (persistent-failure abort
    /// via the leaky bucket); no wrong data was emitted.
    DetectedAborted,
    /// Output differed from the golden result with no error signalled —
    /// silent data corruption, the outcome a safety case must bound.
    SilentCorruption,
}

impl TrialOutcome {
    /// Whether the trial ended safely (no undetected wrong output).
    pub fn is_safe(&self) -> bool {
        !matches!(self, TrialOutcome::SilentCorruption)
    }
}

/// Result of a single campaign trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// How the trial ended.
    pub outcome: TrialOutcome,
    /// Injector counters for the trial.
    pub injector: InjectorStats,
}

/// Campaign parameters.
///
/// Worker-thread count is an *execution* knob: it never changes the
/// aggregate statistics. The runtime partitions trials into `shards`
/// fixed, scheduling-independent blocks, so a campaign's results are a
/// pure function of `(trials, base_seed, shards)`. The `chunk` size is
/// even weaker: it only tunes work-stealing granularity and does not
/// change results at all (any chunking of the same shards aggregates
/// identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of independent trials.
    pub trials: u64,
    /// Base seed; trial `i` derives seed `base_seed + i` (documented so
    /// reports can cite exact reproduction commands).
    pub base_seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Work-queue shards (0 = runtime default). Part of the experiment's
    /// identity: shard boundaries fix the early-abort decision points.
    pub shards: usize,
    /// Trials per work-stealing chunk (0 = runtime default). Pure
    /// scheduling knob: smaller chunks rebalance skewed trial costs
    /// better at slightly higher queue traffic.
    pub chunk: u64,
    /// Whether the runtime may split a claimed chunk further *mid-run*
    /// when its starvation counters show idle workers (adaptive chunk
    /// sizing). Another pure scheduling knob — splitting never changes a
    /// trial's inputs or the aggregate — kept configurable so benchmarks
    /// can pin the static granularity of earlier engine generations.
    pub adaptive: bool,
    /// Maximum trials workers may execute ahead of the runtime's
    /// released watermark (0 = unbounded): hard-caps the aggregator's
    /// out-of-order buffer at this many trials. Pure scheduling flow
    /// control — any budget produces the identical aggregate; a tight
    /// budget trades worker parallelism for bounded reorder memory.
    pub reorder_budget: u64,
}

impl CampaignConfig {
    /// Creates a config with the given trial count and seed, auto
    /// threads/shards/chunking and adaptive chunk splitting enabled.
    pub fn new(trials: u64, base_seed: u64) -> Self {
        CampaignConfig {
            trials,
            base_seed,
            threads: 0,
            shards: 0,
            chunk: 0,
            adaptive: true,
            reorder_budget: 0,
        }
    }

    /// Overrides the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Overrides the work-stealing chunk size.
    pub fn with_chunk(mut self, chunk: u64) -> Self {
        self.chunk = chunk;
        self
    }

    /// Enables or disables mid-run adaptive chunk splitting.
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Caps how many trials workers may run ahead of the released
    /// watermark (0 = unbounded).
    pub fn with_reorder_budget(mut self, budget: u64) -> Self {
        self.reorder_budget = budget;
        self
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Trials executed.
    pub trials: u64,
    /// Trials per [`TrialOutcome`]: correct, recovered, aborted, silent.
    pub correct: u64,
    /// Trials that detected and recovered.
    pub detected_recovered: u64,
    /// Trials that detected and aborted.
    pub detected_aborted: u64,
    /// Trials that silently corrupted output.
    pub silent: u64,
    /// Sum of injector exposures over all trials.
    pub exposures: u64,
    /// Sum of fired faults over all trials.
    pub injected: u64,
    /// Sum of masked-at-source faults.
    pub masked: u64,
}

impl Default for CampaignReport {
    /// The monoid identity: [`CampaignReport::empty`]. Lets the runtime's
    /// worker threads construct chunk-local partial aggregates without a
    /// handle to the campaign sink.
    fn default() -> Self {
        CampaignReport::empty()
    }
}

impl CampaignReport {
    /// An all-zero report, ready for streaming accumulation.
    pub fn empty() -> Self {
        CampaignReport {
            trials: 0,
            correct: 0,
            detected_recovered: 0,
            detected_aborted: 0,
            silent: 0,
            exposures: 0,
            injected: 0,
            masked: 0,
        }
    }

    /// Folds one trial result into the aggregate.
    pub fn record(&mut self, result: &TrialResult) {
        self.trials += 1;
        match result.outcome {
            TrialOutcome::Correct => self.correct += 1,
            TrialOutcome::DetectedRecovered => self.detected_recovered += 1,
            TrialOutcome::DetectedAborted => self.detected_aborted += 1,
            TrialOutcome::SilentCorruption => self.silent += 1,
        }
        self.exposures += result.injector.exposures;
        self.injected += result.injector.injected;
        self.masked += result.injector.masked;
    }

    /// Merges another aggregate into this one (shard combination).
    pub fn merge(&mut self, other: &CampaignReport) {
        self.trials += other.trials;
        self.correct += other.correct;
        self.detected_recovered += other.detected_recovered;
        self.detected_aborted += other.detected_aborted;
        self.silent += other.silent;
        self.exposures += other.exposures;
        self.injected += other.injected;
        self.masked += other.masked;
    }

    /// Fraction of trials that ended safely.
    pub fn safety_rate(&self) -> f64 {
        if self.trials == 0 {
            return 1.0;
        }
        1.0 - self.silent as f64 / self.trials as f64
    }

    /// Detection coverage among trials where an *effective* (non-masked)
    /// fault fired: detected / (detected + silent).
    ///
    /// Returns `None` when no effective fault fired in any trial.
    pub fn detection_coverage(&self) -> Option<f64> {
        let detected = self.detected_recovered + self.detected_aborted;
        let denom = detected + self.silent;
        if denom == 0 {
            None
        } else {
            Some(detected as f64 / denom as f64)
        }
    }

    /// Availability: fraction of trials that produced a (correct) output
    /// rather than aborting.
    pub fn availability(&self) -> f64 {
        if self.trials == 0 {
            return 1.0;
        }
        (self.correct + self.detected_recovered) as f64 / self.trials as f64
    }

    /// Wilson 95% confidence interval on the silent-corruption rate.
    pub fn silent_rate_ci95(&self) -> (f64, f64) {
        wilson_interval(self.silent, self.trials, 1.96)
    }
}

/// Wilson score interval for a binomial proportion.
///
/// Returns `(lo, hi)`; `(0, 1)` when `n == 0`.
pub fn wilson_interval(successes: u64, n: u64, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let centre = p + z2 / (2.0 * n_f);
    let margin = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    (
        ((centre - margin) / denom).max(0.0),
        ((centre + margin) / denom).min(1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_trial(outcome: TrialOutcome) -> TrialResult {
        TrialResult {
            outcome,
            injector: InjectorStats {
                exposures: 10,
                injected: 1,
                masked: 0,
            },
        }
    }

    #[test]
    fn record_aggregates_counts() {
        let mut report = CampaignReport::empty();
        for i in 0..100u64 {
            report.record(&fake_trial(if i % 4 == 0 {
                TrialOutcome::SilentCorruption
            } else {
                TrialOutcome::Correct
            }));
        }
        assert_eq!(report.trials, 100);
        assert_eq!(report.silent, 25);
        assert_eq!(report.correct, 75);
        assert_eq!(report.exposures, 1000);
        assert!((report.safety_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut left = CampaignReport::empty();
        let mut right = CampaignReport::empty();
        let outcomes = [
            TrialOutcome::Correct,
            TrialOutcome::DetectedRecovered,
            TrialOutcome::DetectedAborted,
            TrialOutcome::SilentCorruption,
        ];
        for (i, outcome) in outcomes.iter().cycle().take(40).enumerate() {
            if i % 3 == 0 {
                left.record(&fake_trial(*outcome));
            } else {
                right.record(&fake_trial(*outcome));
            }
        }
        let mut ab = CampaignReport::empty();
        ab.merge(&left);
        ab.merge(&right);
        let mut ba = CampaignReport::empty();
        ba.merge(&right);
        ba.merge(&left);
        assert_eq!(ab, ba);
        assert_eq!(ab.trials, 40);
        assert_eq!(
            ab.correct + ab.detected_recovered + ab.detected_aborted + ab.silent,
            40
        );
    }

    #[test]
    fn coverage_and_availability() {
        let report = CampaignReport {
            trials: 10,
            correct: 5,
            detected_recovered: 3,
            detected_aborted: 1,
            silent: 1,
            exposures: 0,
            injected: 0,
            masked: 0,
        };
        assert_eq!(report.detection_coverage(), Some(0.8));
        assert!((report.availability() - 0.8).abs() < 1e-12);
        let clean = CampaignReport {
            trials: 5,
            correct: 5,
            detected_recovered: 0,
            detected_aborted: 0,
            silent: 0,
            exposures: 0,
            injected: 0,
            masked: 0,
        };
        assert_eq!(clean.detection_coverage(), None);
        assert_eq!(clean.safety_rate(), 1.0);
    }

    #[test]
    fn wilson_interval_sane() {
        let (lo, hi) = wilson_interval(0, 0, 1.96);
        assert_eq!((lo, hi), (0.0, 1.0));
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo < 0.5 && hi > 0.5);
        assert!(lo > 0.39 && hi < 0.61);
        let (lo, hi) = wilson_interval(0, 1000, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi < 0.005);
        let (lo, hi) = wilson_interval(1000, 1000, 1.96);
        assert!(lo > 0.995);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn default_is_the_merge_identity() {
        // The runtime folds chunk partials starting from `Default`; the
        // identity law is what makes per-worker partial aggregation exact.
        let mut report = CampaignReport::empty();
        for i in 0..9u64 {
            report.record(&fake_trial(if i % 2 == 0 {
                TrialOutcome::Correct
            } else {
                TrialOutcome::DetectedAborted
            }));
        }
        let mut merged = CampaignReport::default();
        merged.merge(&report);
        assert_eq!(merged, report);
        let mut reversed = report;
        reversed.merge(&CampaignReport::default());
        assert_eq!(reversed, report);
    }

    #[test]
    fn config_adaptive_defaults_on_and_toggles() {
        let config = CampaignConfig::new(10, 1);
        assert!(config.adaptive);
        assert!(!config.with_adaptive(false).adaptive);
    }

    #[test]
    fn zero_trials_report() {
        let report = CampaignReport::empty();
        assert_eq!(report.trials, 0);
        assert_eq!(report.safety_rate(), 1.0);
        assert_eq!(report.availability(), 1.0);
    }

    #[test]
    fn outcome_safety_classification() {
        assert!(TrialOutcome::Correct.is_safe());
        assert!(TrialOutcome::DetectedRecovered.is_safe());
        assert!(TrialOutcome::DetectedAborted.is_safe());
        assert!(!TrialOutcome::SilentCorruption.is_safe());
    }
}
