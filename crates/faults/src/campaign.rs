//! Seeded, parallel fault-injection campaigns.
//!
//! A *campaign* runs many independent trials — each with its own derived
//! seed — and aggregates how often injected faults were detected,
//! recovered, escalated or silently corrupted data. This is the measurement
//! machinery behind experiments X3/X4 (detection coverage vs bit error
//! rate; leaky-bucket availability).

use crate::injector::InjectorStats;
use serde::{Deserialize, Serialize};

/// The end state of one fault-injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TrialOutcome {
    /// Output equalled the golden (fault-free) result, and no fault needed
    /// recovery — either nothing was injected or injection was masked.
    Correct,
    /// At least one fault was detected and recovered (e.g. by rollback);
    /// final output equalled the golden result.
    DetectedRecovered,
    /// Faults were detected but recovery gave up (persistent-failure abort
    /// via the leaky bucket); no wrong data was emitted.
    DetectedAborted,
    /// Output differed from the golden result with no error signalled —
    /// silent data corruption, the outcome a safety case must bound.
    SilentCorruption,
}

impl TrialOutcome {
    /// Whether the trial ended safely (no undetected wrong output).
    pub fn is_safe(&self) -> bool {
        !matches!(self, TrialOutcome::SilentCorruption)
    }
}

/// Result of a single campaign trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// How the trial ended.
    pub outcome: TrialOutcome,
    /// Injector counters for the trial.
    pub injector: InjectorStats,
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of independent trials.
    pub trials: u64,
    /// Base seed; trial `i` derives seed `base_seed + i` (documented so
    /// reports can cite exact reproduction commands).
    pub base_seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

impl CampaignConfig {
    /// Creates a config with the given trial count and seed, auto threads.
    pub fn new(trials: u64, base_seed: u64) -> Self {
        CampaignConfig {
            trials,
            base_seed,
            threads: 0,
        }
    }

    /// Overrides the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Trials executed.
    pub trials: u64,
    /// Trials per [`TrialOutcome`]: correct, recovered, aborted, silent.
    pub correct: u64,
    /// Trials that detected and recovered.
    pub detected_recovered: u64,
    /// Trials that detected and aborted.
    pub detected_aborted: u64,
    /// Trials that silently corrupted output.
    pub silent: u64,
    /// Sum of injector exposures over all trials.
    pub exposures: u64,
    /// Sum of fired faults over all trials.
    pub injected: u64,
    /// Sum of masked-at-source faults.
    pub masked: u64,
}

impl CampaignReport {
    /// Fraction of trials that ended safely.
    pub fn safety_rate(&self) -> f64 {
        if self.trials == 0 {
            return 1.0;
        }
        1.0 - self.silent as f64 / self.trials as f64
    }

    /// Detection coverage among trials where an *effective* (non-masked)
    /// fault fired: detected / (detected + silent).
    ///
    /// Returns `None` when no effective fault fired in any trial.
    pub fn detection_coverage(&self) -> Option<f64> {
        let detected = self.detected_recovered + self.detected_aborted;
        let denom = detected + self.silent;
        if denom == 0 {
            None
        } else {
            Some(detected as f64 / denom as f64)
        }
    }

    /// Availability: fraction of trials that produced a (correct) output
    /// rather than aborting.
    pub fn availability(&self) -> f64 {
        if self.trials == 0 {
            return 1.0;
        }
        (self.correct + self.detected_recovered) as f64 / self.trials as f64
    }

    /// Wilson 95% confidence interval on the silent-corruption rate.
    pub fn silent_rate_ci95(&self) -> (f64, f64) {
        wilson_interval(self.silent, self.trials, 1.96)
    }
}

/// Wilson score interval for a binomial proportion.
///
/// Returns `(lo, hi)`; `(0, 1)` when `n == 0`.
pub fn wilson_interval(successes: u64, n: u64, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let centre = p + z2 / (2.0 * n_f);
    let margin = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    (
        ((centre - margin) / denom).max(0.0),
        ((centre + margin) / denom).min(1.0),
    )
}

/// Runs `config.trials` independent trials of `trial_fn` (called with the
/// trial's derived seed) across worker threads, aggregating the outcomes.
///
/// `trial_fn` must be deterministic in its seed argument for the campaign
/// to be reproducible.
pub fn run_campaign<F>(config: &CampaignConfig, trial_fn: F) -> CampaignReport
where
    F: Fn(u64) -> TrialResult + Sync,
{
    let threads = config.effective_threads().max(1);
    let trials = config.trials;
    let results = parking_lot::Mutex::new(Vec::with_capacity(trials as usize));
    let next = std::sync::atomic::AtomicU64::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(trials.max(1) as usize) {
            scope.spawn(|_| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= trials {
                        break;
                    }
                    local.push(trial_fn(config.base_seed.wrapping_add(i)));
                }
                results.lock().extend(local);
            });
        }
    })
    .expect("campaign worker panicked");

    let results = results.into_inner();
    let mut report = CampaignReport {
        trials: results.len() as u64,
        correct: 0,
        detected_recovered: 0,
        detected_aborted: 0,
        silent: 0,
        exposures: 0,
        injected: 0,
        masked: 0,
    };
    for r in &results {
        match r.outcome {
            TrialOutcome::Correct => report.correct += 1,
            TrialOutcome::DetectedRecovered => report.detected_recovered += 1,
            TrialOutcome::DetectedAborted => report.detected_aborted += 1,
            TrialOutcome::SilentCorruption => report.silent += 1,
        }
        report.exposures += r.injector.exposures;
        report.injected += r.injector.injected;
        report.masked += r.injector.masked;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BerInjector, FaultInjector, FaultSite, OpContext};

    fn fake_trial(outcome: TrialOutcome) -> TrialResult {
        TrialResult {
            outcome,
            injector: InjectorStats {
                exposures: 10,
                injected: 1,
                masked: 0,
            },
        }
    }

    #[test]
    fn aggregates_counts() {
        let config = CampaignConfig::new(100, 0).with_threads(4);
        let report = run_campaign(&config, |seed| {
            fake_trial(if seed % 4 == 0 {
                TrialOutcome::SilentCorruption
            } else {
                TrialOutcome::Correct
            })
        });
        assert_eq!(report.trials, 100);
        assert_eq!(report.silent, 25);
        assert_eq!(report.correct, 75);
        assert_eq!(report.exposures, 1000);
        assert!((report.safety_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // Outcome depends only on seed, so aggregation must not depend on
        // scheduling.
        let run = |threads| {
            let config = CampaignConfig::new(64, 7).with_threads(threads);
            run_campaign(&config, |seed| {
                let mut inj = BerInjector::new(seed, 0.5);
                let v = inj.perturb(OpContext::new(FaultSite::Multiplier, 0), 1.0);
                fake_trial(if v == 1.0 {
                    TrialOutcome::Correct
                } else {
                    TrialOutcome::DetectedRecovered
                })
            })
        };
        let a = run(1);
        let b = run(8);
        assert_eq!(a, b);
    }

    #[test]
    fn coverage_and_availability() {
        let report = CampaignReport {
            trials: 10,
            correct: 5,
            detected_recovered: 3,
            detected_aborted: 1,
            silent: 1,
            exposures: 0,
            injected: 0,
            masked: 0,
        };
        assert_eq!(report.detection_coverage(), Some(0.8));
        assert!((report.availability() - 0.8).abs() < 1e-12);
        let clean = CampaignReport {
            trials: 5,
            correct: 5,
            detected_recovered: 0,
            detected_aborted: 0,
            silent: 0,
            exposures: 0,
            injected: 0,
            masked: 0,
        };
        assert_eq!(clean.detection_coverage(), None);
        assert_eq!(clean.safety_rate(), 1.0);
    }

    #[test]
    fn wilson_interval_sane() {
        let (lo, hi) = wilson_interval(0, 0, 1.96);
        assert_eq!((lo, hi), (0.0, 1.0));
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo < 0.5 && hi > 0.5);
        assert!(lo > 0.39 && hi < 0.61);
        let (lo, hi) = wilson_interval(0, 1000, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi < 0.005);
        let (lo, hi) = wilson_interval(1000, 1000, 1.96);
        assert!(lo > 0.995);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn zero_trials_report() {
        let config = CampaignConfig::new(0, 0).with_threads(2);
        let report = run_campaign(&config, |_| fake_trial(TrialOutcome::Correct));
        assert_eq!(report.trials, 0);
        assert_eq!(report.safety_rate(), 1.0);
    }

    #[test]
    fn outcome_safety_classification() {
        assert!(TrialOutcome::Correct.is_safe());
        assert!(TrialOutcome::DetectedRecovered.is_safe());
        assert!(TrialOutcome::DetectedAborted.is_safe());
        assert!(!TrialOutcome::SilentCorruption.is_safe());
    }
}
