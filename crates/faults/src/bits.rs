//! Bit-level manipulation of IEEE-754 `f32` values.
//!
//! SEUs are modelled at the representation level: a strike flips (or
//! sticks) one bit of the 32-bit word holding a weight, activation or
//! intermediate product, exactly as in the GPU/accelerator reliability
//! literature the paper cites (\[31\], \[40\], \[41\]).

/// Number of bits in the modelled word.
pub const WORD_BITS: u32 = 32;

/// Index of the sign bit.
pub const SIGN_BIT: u32 = 31;

/// Inclusive bit range of the exponent field (`23..=30`).
pub const EXPONENT_BITS: std::ops::RangeInclusive<u32> = 23..=30;

/// Inclusive bit range of the mantissa field (`0..=22`).
pub const MANTISSA_BITS: std::ops::RangeInclusive<u32> = 0..=22;

/// Flips bit `bit` of `value`'s IEEE-754 representation.
///
/// # Panics
///
/// Panics if `bit >= 32`.
pub fn flip_bit(value: f32, bit: u32) -> f32 {
    assert!(bit < WORD_BITS, "bit index {bit} out of range");
    f32::from_bits(value.to_bits() ^ (1u32 << bit))
}

/// Forces bit `bit` of `value` to `high`.
///
/// # Panics
///
/// Panics if `bit >= 32`.
pub fn stick_bit(value: f32, bit: u32, high: bool) -> f32 {
    assert!(bit < WORD_BITS, "bit index {bit} out of range");
    let mask = 1u32 << bit;
    let bits = if high {
        value.to_bits() | mask
    } else {
        value.to_bits() & !mask
    };
    f32::from_bits(bits)
}

/// Whether bit `bit` of `value` is set.
///
/// # Panics
///
/// Panics if `bit >= 32`.
pub fn bit_is_set(value: f32, bit: u32) -> bool {
    assert!(bit < WORD_BITS, "bit index {bit} out of range");
    value.to_bits() & (1u32 << bit) != 0
}

/// Classifies which IEEE-754 field a bit index belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitField {
    /// Sign bit (31).
    Sign,
    /// Exponent bits (23–30); flips here change magnitude by powers of two
    /// and dominate silent-data-corruption severity.
    Exponent,
    /// Mantissa bits (0–22); flips here perturb the value by at most a
    /// relative 2⁻¹ and are often masked downstream.
    Mantissa,
}

/// Returns the [`BitField`] containing `bit`.
///
/// # Panics
///
/// Panics if `bit >= 32`.
pub fn classify_bit(bit: u32) -> BitField {
    assert!(bit < WORD_BITS, "bit index {bit} out of range");
    if bit == SIGN_BIT {
        BitField::Sign
    } else if EXPONENT_BITS.contains(&bit) {
        BitField::Exponent
    } else {
        BitField::Mantissa
    }
}

/// Hamming distance between the representations of two `f32` values —
/// how many bit strikes separate them.
pub fn hamming_f32(a: f32, b: f32) -> u32 {
    (a.to_bits() ^ b.to_bits()).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involution() {
        for v in [0.0f32, 1.0, -3.75, 1e-20, f32::MAX] {
            for bit in [0u32, 7, 22, 23, 30, 31] {
                assert_eq!(flip_bit(flip_bit(v, bit), bit).to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn flip_changes_exactly_one_bit() {
        let v = 123.456f32;
        for bit in 0..WORD_BITS {
            assert_eq!(hamming_f32(v, flip_bit(v, bit)), 1);
        }
    }

    #[test]
    fn sign_flip_negates() {
        assert_eq!(flip_bit(2.5f32, SIGN_BIT), -2.5f32);
        assert_eq!(flip_bit(-1.0f32, SIGN_BIT), 1.0f32);
    }

    #[test]
    fn exponent_flip_scales_by_power_of_two() {
        // Flipping exponent bit 23 of a normal number multiplies or divides
        // the magnitude by 2.
        let v = 3.0f32;
        let f = flip_bit(v, 23);
        assert!(f == 6.0 || f == 1.5, "got {f}");
    }

    #[test]
    fn stick_bit_idempotent() {
        let v = 0.7f32;
        for bit in [0u32, 23, 31] {
            for high in [false, true] {
                let once = stick_bit(v, bit, high);
                let twice = stick_bit(once, bit, high);
                assert_eq!(once.to_bits(), twice.to_bits());
                assert_eq!(bit_is_set(once, bit), high);
            }
        }
    }

    #[test]
    fn classify_fields() {
        assert_eq!(classify_bit(31), BitField::Sign);
        assert_eq!(classify_bit(30), BitField::Exponent);
        assert_eq!(classify_bit(23), BitField::Exponent);
        assert_eq!(classify_bit(22), BitField::Mantissa);
        assert_eq!(classify_bit(0), BitField::Mantissa);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_rejects_bad_bit() {
        flip_bit(1.0, 32);
    }

    #[test]
    fn hamming_zero_iff_identical_representation() {
        assert_eq!(hamming_f32(1.0, 1.0), 0);
        assert!(hamming_f32(1.0, 1.0000001) > 0);
        // NaN payloads compare by representation, not semantics.
        assert_eq!(hamming_f32(f32::NAN, f32::NAN), 0);
    }
}
