//! Single-event-upset (SEU) fault injection for the `relcnn` workspace.
//!
//! The paper's threat model (§II): "the failure of a number of calculations
//! in a CNN due to single event upsets acting on the processing element or
//! data corruption of the weights and input data may critically alter the
//! result". This crate is the *fault generator* half of that story — a
//! PyTorchFI-style injector that corrupts `f32` values at four
//! [sites](FaultSite) (weight load, activation load, multiplier output,
//! accumulator output) under configurable [duration models](FaultDuration)
//! (transient, intermittent, permanent).
//!
//! The qualified operators of `relcnn-relexec` pull every elementary value
//! through a [`FaultInjector`], so detection coverage can be measured
//! end-to-end with seeded, reproducible [campaigns](campaign).
//!
//! # Example
//!
//! ```rust
//! use relcnn_faults::{BerInjector, FaultInjector, FaultSite, OpContext};
//!
//! // A bit-error-rate injector: every value passed through has a 1e-3
//! // chance of a uniformly random single-bit flip.
//! let mut inj = BerInjector::new(42, 1e-3);
//! let ctx = OpContext::new(FaultSite::Multiplier, 0).with_replica(0);
//! let out = inj.perturb(ctx, 1.5);
//! // Either untouched or bit-flipped; the injector records which.
//! assert_eq!(inj.stats().injected > 0, out != 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod campaign;
pub mod skew;

mod injector;
mod model;

pub use injector::{
    BerInjector, FaultInjector, InjectorStats, NoFaults, ScriptedFault, ScriptedInjector,
    StuckBitInjector,
};
pub use model::{FaultDuration, FaultKind, FaultSite, OpContext};
pub use skew::SkewedCost;
