//! The canonical deterministic campaign workload the artefact binaries
//! share.
//!
//! `determinism_artifact` (single process, worker/chunk/budget matrix)
//! and the cluster binaries (`cluster_artifact`, `cluster_smoke` —
//! multi-process topology and chaos matrix) must byte-diff against each
//! other, so the campaign identity — trial count, seed, shard count and
//! the per-trial work itself — lives here exactly once. Drift between
//! the binaries would silently turn every cross-artefact diff into a
//! guaranteed mismatch.

use relcnn_cluster::{JobSpec, TaskOutput};
use relcnn_faults::{BerInjector, FaultInjector, FaultSite, OpContext, SkewedCost};
use relcnn_runtime::{
    merge_in_order, run_campaign_window_sink, CampaignConfig, CampaignReport, CampaignSink,
    EarlyStop, JsonlSink, TrialOutcome, TrialResult,
};
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Trials in the canonical campaign.
pub const TRIALS: u64 = 240;
/// Campaign seed (trial `i` runs at seed `BASE_SEED + i`).
pub const BASE_SEED: u64 = 0xD17E;
/// Shard count — the axis cluster tasks are cut along.
pub const SHARDS: usize = 12;

/// Maps the fault pattern of a trial's first 16 injector exposures to an
/// outcome. Both profiles share it (and the `(seed, 0.3)` injector), so
/// they make the same early-stop decision at the same shard — only the
/// exposure counts in the artefact differ.
pub fn outcome_of(inj: &mut BerInjector, extra_ops: u64) -> TrialOutcome {
    let mut flips = 0u32;
    let mut acc = 0.0f32;
    for op in 0..(16 + extra_ops) {
        let v = inj.perturb(OpContext::new(FaultSite::Multiplier, op), 1.0);
        if op < 16 && v != 1.0 {
            flips += 1;
        }
        acc += v;
    }
    std::hint::black_box(acc);
    match flips {
        0 => TrialOutcome::Correct,
        1..=3 => TrialOutcome::DetectedRecovered,
        4..=6 => TrialOutcome::DetectedAborted,
        _ => TrialOutcome::SilentCorruption,
    }
}

/// The campaign workload, split into the *dataset* half (a per-trial
/// cost descriptor derived from the trial index — what the ingestion
/// paths deliver by different routes) and the *execution* half (what a
/// trial does with its descriptor and seed).
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Sleeps per descriptor milliseconds (steals even on one core).
    Latency,
    /// Spins through descriptor extra injector exposures (pure compute).
    Cpu,
}

impl Profile {
    /// Parses the CLI / wire spelling (`latency` | `cpu`).
    pub fn parse(name: &str) -> Option<Profile> {
        match name {
            "latency" => Some(Profile::Latency),
            "cpu" => Some(Profile::Cpu),
            _ => None,
        }
    }

    /// The CLI / wire spelling — `parse` ∘ `name` is the identity.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Latency => "latency",
            Profile::Cpu => "cpu",
        }
    }

    /// The per-trial workload descriptor — the "dataset item" for trial
    /// `index`. A pure function of the index, as every `TrialSource`
    /// must be.
    pub fn item(self, index: u64) -> u64 {
        match self {
            Profile::Latency => SkewedCost::tail(0, 2, TRIALS / 3).evals(index),
            Profile::Cpu => SkewedCost::tail(512, 8192, TRIALS / 3).evals(index),
        }
    }

    /// Executes one trial on its pulled descriptor.
    pub fn run(self, item: u64, seed: u64) -> TrialResult {
        let mut inj = BerInjector::new(seed, 0.3).with_sites(vec![FaultSite::Multiplier]);
        let outcome = match self {
            Profile::Latency => {
                std::thread::sleep(Duration::from_millis(item));
                outcome_of(&mut inj, 0)
            }
            Profile::Cpu => outcome_of(&mut inj, item),
        };
        TrialResult {
            outcome,
            injector: inj.stats(),
        }
    }

    /// The classic index-driven trial: derives the descriptor from the
    /// seed itself (trial `i` runs at seed `BASE_SEED + i`).
    pub fn trial(self, seed: u64) -> TrialResult {
        self.run(self.item(seed - BASE_SEED), seed)
    }
}

/// Builds the [`JobSpec`] naming the canonical campaign at `threads`
/// engine threads per worker process.
pub fn cluster_job(profile: Profile, threads: usize) -> JobSpec {
    JobSpec {
        workload: profile.name().to_string(),
        trials: TRIALS,
        seed: BASE_SEED,
        shards: SHARDS,
        chunk: 0,
        threads,
    }
}

/// The cluster task function both cluster binaries pass to
/// [`run_worker_if_spawned`](relcnn_cluster::run_worker_if_spawned) and
/// [`run_cluster`](relcnn_cluster::run_cluster): computes shards
/// `[shard_lo, shard_hi)` of the job's campaign and returns the
/// `(partial aggregate JSON, footerless JSONL slice)` pair. A pure
/// function of its arguments — the byte-identity contract of the fabric.
pub fn cluster_task(job: &JobSpec, shard_lo: usize, shard_hi: usize) -> (String, String) {
    let profile = Profile::parse(&job.workload)
        .unwrap_or_else(|| panic!("unknown workload {:?}", job.workload));
    let config = CampaignConfig::new(job.trials, job.seed)
        .with_threads(job.threads)
        .with_shards(job.shards)
        .with_chunk(job.chunk);
    let buf = Arc::new(Mutex::new(Vec::new()));
    // No early stop: distributed tasks see only their window, so a stop
    // decision could not match the full run's (mirrors `--no-abort`).
    let sink = JsonlSink::new(
        SharedBuf(Arc::clone(&buf)),
        CampaignSink::new(EarlyStop::never()),
    )
    .without_footer();
    let outcome = run_campaign_window_sink(&config, shard_lo, shard_hi, sink, move |seed| {
        profile.trial(seed)
    });
    let payload = String::from_utf8(std::mem::take(&mut *buf.lock().expect("buffer poisoned")))
        .expect("JSONL artefact is UTF-8");
    let partial = serde_json::to_string(&outcome.summary).expect("partial aggregate serialization");
    (partial, payload)
}

/// Merges completed cluster tasks (already in task = shard order) back
/// into the full campaign: the concatenated JSONL stream plus the merged
/// aggregate, which must equal the single-process run byte for byte.
pub fn merge_cluster_outputs(outputs: &[TaskOutput]) -> (CampaignReport, String) {
    let mut payload = String::new();
    let parts: Vec<CampaignReport> = outputs
        .iter()
        .map(|o| {
            payload.push_str(&o.payload);
            serde_json::from_str(&o.partial)
                .unwrap_or_else(|e| panic!("task {}: parse partial aggregate: {e}", o.task))
        })
        .collect();
    (merge_in_order::<TrialResult, _>(parts), payload)
}

/// `Write` handle into a shared buffer — lets the task function keep the
/// JSONL bytes after the sink consumed the writer.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_names_roundtrip() {
        for p in [Profile::Latency, Profile::Cpu] {
            assert!(Profile::parse(p.name()) == Some(p));
        }
        assert!(Profile::parse("turbo").is_none());
    }

    #[test]
    fn cluster_tasks_stitch_back_into_the_full_campaign() {
        let job = cluster_job(Profile::Latency, 2);
        let (full_partial, full_payload) = cluster_task(&job, 0, SHARDS);
        let outputs: Vec<TaskOutput> = [(0usize, 0usize, 5usize), (1, 5, 8), (2, 8, 12)]
            .iter()
            .map(|&(task, shard_lo, shard_hi)| {
                let (partial, payload) = cluster_task(&job, shard_lo, shard_hi);
                TaskOutput {
                    task,
                    shard_lo,
                    shard_hi,
                    partial,
                    payload,
                }
            })
            .collect();
        let (merged, payload) = merge_cluster_outputs(&outputs);
        assert_eq!(payload, full_payload);
        assert_eq!(serde_json::to_string(&merged).unwrap(), full_partial);
    }

    #[test]
    fn trials_are_pure_functions_of_their_seed() {
        for profile in [Profile::Latency, Profile::Cpu] {
            let a = profile.trial(BASE_SEED + 7);
            let b = profile.trial(BASE_SEED + 7);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.injector.exposures, b.injector.exposures);
        }
    }
}
