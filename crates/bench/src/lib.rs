//! Shared plumbing for the `relcnn` benchmark harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper (see `DESIGN.md` §4 for the experiment index); the Criterion
//! benches in `benches/` provide statistically robust timing for the
//! quantities Table 1 reports. This library holds the small amount of
//! shared output plumbing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod workload;

use std::fs;
use std::path::{Path, PathBuf};

/// Directory where experiment binaries drop their CSV/JSON artefacts.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    fs::create_dir_all(&dir).ok();
    dir.canonicalize().unwrap_or(dir)
}

/// Writes a CSV file under [`results_dir`], returning its path.
///
/// # Panics
///
/// Panics on I/O failure — experiment binaries want loud failures.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = results_dir().join(name);
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    fs::write(&path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    path
}

/// Renders a crude ASCII plot of a series (for Figure-3-style terminal
/// output).
pub fn ascii_plot(series: &[f32], width: usize, height: usize) -> String {
    if series.is_empty() || height == 0 || width == 0 {
        return String::new();
    }
    let min = series.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = series.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let span = (max - min).max(1e-6);
    let mut grid = vec![vec![' '; width]; height];
    for (i, &v) in series.iter().enumerate() {
        let x = i * width / series.len();
        let y = ((v - min) / span * (height as f32 - 1.0)).round() as usize;
        let row = height - 1 - y.min(height - 1);
        grid[row][x.min(width - 1)] = '*';
    }
    let mut out = String::new();
    for row in grid {
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out
}

/// Formats a set of named monotonic counters as one comma-separated
/// line (`"steals 3, splits 1, ..."`). The single formatting shape for
/// every counter summary the harness prints — the gate's scheduler
/// frontier detail and its serve-side conservation line both go through
/// here, so the two read identically in CI logs.
pub fn counters_line(pairs: &[(&str, u64)]) -> String {
    pairs
        .iter()
        .map(|(name, value)| format!("{name} {value}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Default hard wall budget for the smoke binaries, in microseconds.
pub const DEFAULT_WALL_BUDGET_US: u64 = 60_000_000;

/// Hard wall budget for smoke binaries: `RELCNN_WALL_BUDGET_US`
/// (microseconds) when set, else [`DEFAULT_WALL_BUDGET_US`]. The CI
/// knob for slow or instrumented runners — a hung run trips the budget
/// panic instead of timing out the job.
///
/// # Panics
///
/// Panics when the variable is set but not a number — a silently
/// ignored budget override would defeat the point of setting one.
pub fn wall_budget_us() -> u64 {
    match std::env::var("RELCNN_WALL_BUDGET_US") {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            panic!("RELCNN_WALL_BUDGET_US must be a microsecond count, got {v:?}")
        }),
        Err(_) => DEFAULT_WALL_BUDGET_US,
    }
}

/// Returns true when the binary should run at smoke scale
/// (`RELCNN_QUICK=1` or `--quick` argument).
pub fn quick_mode() -> bool {
    std::env::var("RELCNN_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

/// Checks whether a path exists (checkpoint reuse helper).
pub fn exists(path: &Path) -> bool {
    path.exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_plot_shape() {
        let series: Vec<f32> = (0..64).map(|i| (i as f32 / 5.0).sin()).collect();
        let plot = ascii_plot(&series, 32, 8);
        assert_eq!(plot.lines().count(), 8);
        assert!(plot.contains('*'));
        assert!(ascii_plot(&[], 10, 5).is_empty());
    }

    #[test]
    fn results_dir_exists() {
        assert!(results_dir().is_dir());
    }

    #[test]
    fn counters_line_formats_name_value_pairs() {
        assert_eq!(
            counters_line(&[("steals", 3), ("splits", 0), ("parks", 12)]),
            "steals 3, splits 0, parks 12"
        );
        assert_eq!(counters_line(&[]), "");
    }
}
