//! Serving-latency benchmark: emits `results/serving_latency.json`.
//!
//! Replays a fixed overloaded open-loop trace (three-class Poisson
//! arrivals with per-class deadline budgets and a heavy-tail service
//! profile) through the full serving stack — admission with a critical
//! reservation, deadline-aware micro-batching under the AIMD overload
//! controller, hybrid-CNN inference via `classify_many` on the engine —
//! and records two kinds of numbers:
//!
//! * **deterministic serving metrics** (virtual-clock p50/p95/p99
//!   latency, shed rate, goodput and expiry counts — aggregate *and per
//!   class* — plus AIMD clamp counts and the minimum admission cap):
//!   pure functions of the trace and policy, identical on every
//!   machine — these are what `bench_gate` holds to the committed
//!   baseline, class by class;
//! * **wall-clock execution metrics** (engine dispatch time, per-image
//!   inference percentiles, end-to-end replay throughput): hardware
//!   measurement, reported for trajectory but not gated.
//!
//! `--quick` (or `RELCNN_QUICK=1`) runs a quarter-size trace for smoke
//! coverage.

use relcnn_faults::SkewedCost;
use relcnn_runtime::Engine;
use relcnn_serve::{
    BatchPolicy, CnnBackend, ControllerConfig, LoadGen, LoadGenConfig, RequestClass, Server,
    ServerConfig, ServiceModel,
};
use std::time::Instant;

const REQUESTS: u64 = 480;
const SEED: u64 = 0x5E12F;
const DEADLINE_US: u64 = 15_000;
const WORKERS: usize = 8;

fn server_config() -> ServerConfig {
    ServerConfig::new(
        24,
        BatchPolicy::new(8, 1_000).with_critical_delay(400),
        ServiceModel {
            batch_overhead_us: 150,
            cost: SkewedCost::periodic(200, 2_800, 13),
        },
    )
    .with_critical_reserve(4)
    .with_control(ControllerConfig::default())
}

fn main() {
    let requests = if relcnn_bench::quick_mode() {
        REQUESTS / 4
    } else {
        REQUESTS
    };
    let trace = LoadGen::new(
        LoadGenConfig::poisson(requests, SEED, 320, DEADLINE_US)
            .with_deadline_jitter(9_000)
            .with_class_mix([1, 3, 2])
            .with_class_deadlines([4_000, 0, 45_000]),
    )
    .generate();
    let backend = CnnBackend::tiny(0xC1A55).unwrap_or_else(|e| panic!("backend: {e}"));
    let engine = Engine::with_workers(WORKERS);

    let t0 = Instant::now();
    let run = Server::new(server_config())
        .backend(&backend)
        .engine(&engine)
        .run(&trace);
    let wall = t0.elapsed();

    let report = &run.report;
    let (p50, p95, p99) = report.latency.percentiles();
    let (inf_p50, inf_p95, inf_p99) = run.dispatch.inference_ns.percentiles();
    let throughput_rps = if wall.as_secs_f64() > 0.0 {
        report.completed as f64 / wall.as_secs_f64()
    } else {
        0.0
    };

    let classes: Vec<String> = RequestClass::ALL
        .iter()
        .map(|c| {
            let s = report.class(*c);
            let (cp50, cp95, cp99) = s.latency.percentiles();
            format!(
                "    \"{}\": {{\n      \"offered\": {},\n      \"completed\": {},\n      \
                 \"shed\": {},\n      \"expired\": {},\n      \"late\": {},\n      \
                 \"shed_rate\": {:.6},\n      \"goodput_rate\": {:.6},\n      \
                 \"p50_us\": {cp50},\n      \"p95_us\": {cp95},\n      \"p99_us\": {cp99}\n    }}",
                c.label(),
                s.offered,
                s.completed,
                s.shed,
                s.expired,
                s.late,
                s.shed_rate(),
                s.goodput_rate(),
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"serving_latency\",\n  \"requests\": {requests},\n  \
         \"workers\": {},\n  \"offered\": {},\n  \"completed\": {},\n  \"shed\": {},\n  \
         \"expired\": {},\n  \"late\": {},\n  \"batches\": {},\n  \
         \"mean_batch_fill\": {:.3},\n  \"shed_rate\": {:.6},\n  \
         \"goodput_rate\": {:.6},\n  \"p50_us\": {p50},\n  \
         \"p95_us\": {p95},\n  \"p99_us\": {p99},\n  \
         \"makespan_us\": {},\n  \"early_closes\": {},\n  \"aimd_clamps\": {},\n  \
         \"min_admit_cap\": {},\n  \"final_admit_cap\": {},\n  \"classes\": {{\n{}\n  }},\n  \
         \"wall_us\": {},\n  \
         \"throughput_rps\": {throughput_rps:.3},\n  \"engine_busy_us\": {},\n  \
         \"inference_p50_ns\": {inf_p50},\n  \"inference_p95_ns\": {inf_p95},\n  \
         \"inference_p99_ns\": {inf_p99},\n  \"engine_steals\": {}\n}}\n",
        engine.configured_workers(),
        report.offered,
        report.completed,
        report.shed,
        report.expired(),
        report.late,
        report.batches,
        report.mean_batch_fill(),
        report.shed_rate(),
        report.goodput_rate(),
        report.makespan_us,
        report.early_closes,
        report.aimd_clamps,
        report.min_admit_cap,
        report.final_admit_cap,
        classes.join(",\n"),
        wall.as_micros(),
        run.dispatch.engine_busy.as_micros(),
        run.dispatch.steals,
    );

    let path = relcnn_bench::results_dir().join("serving_latency.json");
    // The quick smoke run must not clobber the gated full-scale artefact.
    if relcnn_bench::quick_mode() {
        println!("quick mode: skipping write of {}", path.display());
    } else {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }
    println!(
        "serving: {} offered -> {} completed ({} late), {} shed ({:.1}%), {} expired, \
         {} batches (fill {:.2}), {} clamps (min cap {}); virtual p50/p95/p99 \
         {p50}/{p95}/{p99} us; wall {:.1} ms ({throughput_rps:.0} req/s)",
        report.offered,
        report.completed,
        report.late,
        report.shed,
        report.shed_rate() * 100.0,
        report.expired(),
        report.batches,
        report.mean_batch_fill(),
        report.aimd_clamps,
        report.min_admit_cap,
        wall.as_secs_f64() * 1e3,
    );
    for class in RequestClass::ALL {
        let s = report.class(class);
        let (_, _, cp99) = s.latency.percentiles();
        println!(
            "  {:<12} offered {:>4} completed {:>4} shed {:>4} expired {:>3} late {:>3} \
             goodput {:>5.1}% p99 {cp99} us",
            class.label(),
            s.offered,
            s.completed,
            s.shed,
            s.expired,
            s.late,
            s.goodput_rate() * 100.0,
        );
    }
    assert!(report.conserved(), "serving conservation broke: {report:?}");
}
