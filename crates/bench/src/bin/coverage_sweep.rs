//! **X4** — the reliability guarantee, measured.
//!
//! Sweeps the bit error rate and, for each redundancy mode, runs seeded
//! fault-injection campaigns over a reliable convolution, comparing the
//! measured silent-corruption rate against the analytic bound of
//! `relcnn_core::guarantee` (plain: `n·ber`; DMR: `n·ber²/32`;
//! TMR: `3n·ber²/32`).
//!
//! Campaigns execute on the `relcnn-runtime` worker pool: trials are
//! sharded deterministically, every `(ber, mode)` point streams its trial
//! outcomes into `results/coverage_sweep_trials.jsonl`, and a Wilson-CI
//! early-stop cuts a point short once the silent-corruption rate is
//! pinned down tightly enough.
//!
//! JSONL format: each point opens with a `{"point":{"ber":..,"mode":..}}`
//! header, followed by its `{"trial":..}` lines (indices restart at 0 per
//! point) and a `{"run":..}` footer with the engine counters.

use relcnn_bench::{quick_mode, results_dir, write_csv};
use relcnn_core::guarantee::{silent_layer_bound, silent_layer_probability};
use relcnn_faults::{BerInjector, FaultInjector, FaultSite};
use relcnn_relexec::conv::{reliable_conv2d, ReliableConvConfig};
use relcnn_relexec::{BucketConfig, DmrAlu, PlainAlu, RedundancyMode, RetryPolicy, TmrAlu};
use relcnn_runtime::{
    run_campaign_sink, CampaignConfig, CampaignSink, EarlyStop, JsonlSink, TrialOutcome,
    TrialResult,
};
use relcnn_tensor::conv::{conv2d, ConvGeometry};
use relcnn_tensor::init::{Init, Rand};
use relcnn_tensor::Shape;
use std::fs::File;
use std::io::{BufWriter, Write};

fn main() {
    let quick = quick_mode();
    let trials: u64 = if quick { 100 } else { 400 };
    println!("== X4: detection coverage & silent-corruption rate vs BER ==");

    // Small conv so each trial is cheap; ops = 2 * macs.
    let mut rng = Rand::seeded(4);
    let input = rng.tensor(Shape::d3(2, 10, 10), Init::Uniform { lo: -1.0, hi: 1.0 });
    let weights = rng.tensor(Shape::d4(4, 2, 3, 3), Init::HeNormal { fan_in: 18 });
    let geom = ConvGeometry::new(10, 10, 3, 3, 1, 0).expect("geometry");
    let golden = conv2d(&input, &weights, None, &geom).expect("golden");
    let ops = 2 * geom.mac_count(2, 4);
    println!(
        "layer: {} qualified ops per trial, up to {} trials per point\n",
        ops, trials
    );

    // Generous bucket so random transients don't abort: we measure
    // silent-vs-detected, not availability (X3 covers that).
    let config = ReliableConvConfig {
        bucket: BucketConfig::new(1, u32::MAX),
        retry: RetryPolicy::with_retries(4),
        pe_count: 8,
    };

    let jsonl_path = results_dir().join("coverage_sweep_trials.jsonl");
    let mut jsonl = BufWriter::new(File::create(&jsonl_path).expect("jsonl artefact"));

    println!(
        "{:>8} {:>7} {:>8} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "ber", "mode", "trials", "silent rate", "exact model", "bound", "coverage", "trials/s"
    );
    let mut rows = Vec::new();
    for ber in [1e-5f64, 1e-4, 1e-3] {
        for mode in RedundancyMode::ALL {
            let campaign = CampaignConfig::new(trials, 0xC0FFEE ^ (ber.to_bits()));
            // Point header: the trial/footer lines that follow (until the
            // next header) belong to this (ber, mode) campaign. Trial
            // indices restart at 0 per point.
            writeln!(
                jsonl,
                "{{\"point\":{{\"ber\":{ber:?},\"mode\":\"{mode}\"}}}}"
            )
            .expect("jsonl point header");
            // The guarantee experiment pins a *rate*; once the Wilson CI
            // on the silent rate is tighter than ±1%, more trials buy
            // nothing. The stop point is a deterministic shard boundary.
            let policy = EarlyStop::on_ci_width(0.02, trials / 4);
            let sink = JsonlSink::new(&mut jsonl, CampaignSink::new(policy));
            let outcome = run_campaign_sink(&campaign, sink, |seed| {
                let injector = BerInjector::new(seed, ber)
                    .with_sites(vec![FaultSite::Multiplier, FaultSite::Accumulator]);
                let run = |out: Result<relcnn_relexec::conv::ConvOutput, _>| match out {
                    Err(_) => (TrialOutcome::DetectedAborted, Default::default()),
                    Ok(out) => {
                        let silent = out
                            .output
                            .iter()
                            .zip(golden.iter())
                            .any(|(a, b)| (a - b).abs() > 1e-4);
                        let outcome = if silent {
                            TrialOutcome::SilentCorruption
                        } else if out.stats.retries > 0 {
                            TrialOutcome::DetectedRecovered
                        } else {
                            TrialOutcome::Correct
                        };
                        (outcome, out.stats)
                    }
                };
                let (outcome, _stats, injector_stats) = match mode {
                    RedundancyMode::Plain => {
                        let mut alu = PlainAlu::new(injector);
                        let r = run(reliable_conv2d(
                            &input, &weights, None, &geom, &mut alu, &config,
                        ));
                        (r.0, r.1, alu.into_injector().stats())
                    }
                    RedundancyMode::Dmr => {
                        let mut alu = DmrAlu::new(injector);
                        let r = run(reliable_conv2d(
                            &input, &weights, None, &geom, &mut alu, &config,
                        ));
                        (r.0, r.1, alu.into_injector().stats())
                    }
                    RedundancyMode::Tmr => {
                        let mut alu = TmrAlu::new(injector);
                        let r = run(reliable_conv2d(
                            &input, &weights, None, &geom, &mut alu, &config,
                        ));
                        (r.0, r.1, alu.into_injector().stats())
                    }
                };
                TrialResult {
                    outcome,
                    injector: injector_stats,
                }
            });
            let report = outcome.summary;

            let silent_rate = report.silent as f64 / report.trials as f64;
            let exact = silent_layer_probability(mode, ber, ops);
            let bound = silent_layer_bound(mode, ber, ops);
            let coverage = report
                .detection_coverage()
                .map(|c| format!("{c:.4}"))
                .unwrap_or_else(|| "n/a".into());
            println!(
                "{:>8.0e} {:>7} {:>8} {:>12.5} {:>12.5} {:>12.5} {:>10} {:>10.0}",
                ber,
                mode.to_string(),
                report.trials,
                silent_rate,
                exact,
                bound,
                coverage,
                outcome.stats.throughput
            );
            let (_, ci_hi) = report.silent_rate_ci95();
            rows.push(format!(
                "{ber},{mode},{},{silent_rate},{exact},{bound},{ci_hi}",
                report.trials
            ));

            // The guarantee: measured silent rate must sit within the
            // 95% CI of the analytic model (and under the bound).
            assert!(
                silent_rate
                    <= bound + 3.0 * (bound * (1.0 - bound) / report.trials as f64).sqrt() + 0.05,
                "{mode} at ber {ber}: measured {silent_rate} violates bound {bound}"
            );
        }
    }
    println!(
        "\nshape check: plain degrades linearly with BER; DMR/TMR stay at\n\
         ~zero silent corruptions (quadratic suppression) while detecting\n\
         and recovering the injected faults."
    );
    let path = write_csv(
        "coverage_sweep.csv",
        "ber,mode,trials,silent_rate,exact_model,bound,ci95_hi",
        &rows,
    );
    println!("wrote {}", path.display());
    println!("wrote {}", jsonl_path.display());
}
