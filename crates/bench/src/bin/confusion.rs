//! **X1 (in-text §III-B)** — "We compare both the confusion matrices of
//! the original and replaced filters and the accuracy and note no
//! substantial difference in classification accuracy."
//!
//! Trains the scaled AlexNet, replaces conv-1 filter 0 with the Sobel
//! bank, and prints both confusion matrices plus the accuracy delta.

use relcnn_bench::{quick_mode, write_csv};
use relcnn_core::experiments::{confusion_compare, paper_train_config, train_gtsrb_model};
use relcnn_gtsrb::{DatasetConfig, SignClass, SyntheticGtsrb};

fn main() {
    let quick = quick_mode();
    let dataset_config = if quick {
        DatasetConfig {
            image_size: 96,
            train_per_class: 8,
            test_per_class: 3,
            seed: 111,
            classes: SignClass::ALL.to_vec(),
        }
    } else {
        DatasetConfig::standard(111)
    };
    let mut train_config = paper_train_config(222);
    if quick {
        train_config.epochs = 1;
    }

    println!("== X1: confusion matrices, original vs Sobel-replaced filter 0 ==");
    let data = SyntheticGtsrb::generate(&dataset_config).expect("dataset");
    let (mut net, _) = train_gtsrb_model(&data, &train_config, 333).expect("training");
    let cmp = confusion_compare(&mut net, &data).expect("comparison");

    println!("\n-- original --\n{}", cmp.original);
    println!("\n-- filter 0 replaced by Sobel bank --\n{}", cmp.replaced);
    println!(
        "\naccuracy delta: {:+.4} (paper: 'no substantial difference')",
        cmp.accuracy_delta
    );
    println!(
        "matrix distance (element-wise |diff| sum): {}",
        cmp.matrix_distance
    );

    let rows = vec![
        format!("original,{}", cmp.original.accuracy()),
        format!("replaced,{}", cmp.replaced.accuracy()),
        format!("delta,{}", cmp.accuracy_delta),
        format!("matrix_distance,{}", cmp.matrix_distance),
    ];
    let path = write_csv("confusion_compare.csv", "metric,value", &rows);
    println!("wrote {}", path.display());
}
