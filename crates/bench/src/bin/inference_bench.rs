//! Per-image inference-latency benchmark: emits
//! `results/inference_latency.json`.
//!
//! Runs the scaled AlexNet (the serving model: 8 classes, 96×96 RGB)
//! over a fixed pool of synthetic images in a dedicated steady-state
//! loop and times every single forward pass, reporting exact sorted
//! percentiles for two legs:
//!
//! * **alloc** — the pre-optimisation allocating path: `Mode::Eval`
//!   forward with the conv weight-matrix cache invalidated before every
//!   image, faithfully reproducing the old per-call reshape-clone plus
//!   fresh im2col/output tensors (the allocating `im2col` and
//!   `Tensor::matmul` kernels are untouched by the optimisation — they
//!   *are* the pre-change kernels);
//! * **scratch** — the zero-allocation path: `forward_scratch` through
//!   one warmed per-worker `InferScratch` arena with register-tiled
//!   blocked GEMM/GEMV kernels writing into caller-owned buffers.
//!
//! Both legs run the same weights over the same images and the bench
//! asserts their logits are **bit-identical** before reporting —
//! a latency number for a kernel that drifted by one ulp would be
//! meaningless in this workspace.
//!
//! Measurement discipline: the two legs are interleaved sample by
//! sample (slow machine phases hit both legs equally instead of
//! skewing whichever leg ran in that window), and each recorded sample
//! is the best of [`TRIES`] back-to-back passes — scheduler
//! preemptions on a shared core are filtered out while systematic
//! per-image costs (the allocating leg pays its mmap/page-fault churn
//! on *every* pass) survive the min. `bench_gate` holds `speedup_p99`
//! to the hard floor and `scratch_p99_us` to the committed baseline.
//!
//! `--quick` (or `RELCNN_QUICK=1`) runs a quarter of the rounds for
//! smoke coverage and skips the artefact write so the gated file is
//! never clobbered by a smoke run.

use relcnn_nn::{alexnet, InferScratch, Mode, Network};
use relcnn_tensor::init::{Init, Rand};
use relcnn_tensor::{Shape, Tensor};
use std::time::Instant;

const CLASSES: usize = 8;
const IMAGE_PX: usize = 96;
const IMAGES: usize = 12;
const ROUNDS: usize = 24;
const TRIES: usize = 3;
const NET_SEED: u64 = 0x1FE7;
const IMAGE_SEED: u64 = 9_000;

/// Exact percentile over a sorted sample: nearest-rank on the
/// (n-1)-scaled index, no interpolation — small sample sets stay honest.
fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    assert!(!sorted_ns.is_empty(), "empty sample set");
    let idx = ((p / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

fn images(count: usize) -> Vec<Tensor> {
    (0..count)
        .map(|i| {
            let mut r = Rand::seeded(IMAGE_SEED + i as u64);
            r.tensor(
                Shape::d3(3, IMAGE_PX, IMAGE_PX),
                Init::Uniform { lo: -1.0, hi: 1.0 },
            )
        })
        .collect()
}

/// One timed sample of the allocating leg: best of [`TRIES`] passes.
/// Dropping the borrow from `params()` before each pass invalidates the
/// conv weight-matrix cache, so every pass pays the historical
/// reshape-clone exactly as the pre-arena kernel did.
fn alloc_sample(net: &mut Network, img: &Tensor) -> (u64, Tensor) {
    let mut best = u64::MAX;
    let mut out = None;
    for _ in 0..TRIES {
        let _ = net.params();
        let t0 = Instant::now();
        let y = net
            .forward(img, Mode::Eval)
            .unwrap_or_else(|e| panic!("alloc leg forward: {e}"));
        best = best.min(t0.elapsed().as_nanos() as u64);
        out = Some(y);
    }
    (best, out.expect("TRIES >= 1"))
}

/// One timed sample of the zero-allocation leg: best of [`TRIES`]
/// passes through the warmed arena.
fn scratch_sample(net: &mut Network, img: &Tensor, arena: &mut InferScratch) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..TRIES {
        let t0 = Instant::now();
        net.forward_scratch(img, arena)
            .unwrap_or_else(|e| panic!("scratch forward: {e}"));
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

fn assert_bit_identical(oracle: &Tensor, arena: &InferScratch) {
    let out = arena.front().as_slice();
    assert_eq!(out.len(), oracle.len(), "logit length drift");
    for (a, b) in out.iter().zip(oracle.iter()) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "scratch leg diverged from allocating leg: {a} vs {b}"
        );
    }
}

fn main() {
    let rounds = if relcnn_bench::quick_mode() {
        (ROUNDS / 4).max(1)
    } else {
        ROUNDS
    };
    let pool = images(IMAGES);

    // One set of weights serves both legs — bit-identity between the
    // legs is only meaningful when the parameters are the same object.
    let mut rng = Rand::seeded(NET_SEED);
    let mut net = alexnet::alexnet_gtsrb(CLASSES, IMAGE_PX, &mut rng)
        .unwrap_or_else(|e| panic!("network: {e}"));

    // Warmup: size the arena and fault in both paths' working sets.
    let mut arena = InferScratch::new();
    for img in &pool {
        let _ = net
            .forward(img, Mode::Eval)
            .unwrap_or_else(|e| panic!("warmup forward: {e}"));
        net.forward_scratch(img, &mut arena)
            .unwrap_or_else(|e| panic!("warmup scratch: {e}"));
    }
    let grow_events = arena.grow_events();

    let mut alloc_ns = Vec::with_capacity(rounds * pool.len());
    let mut scratch_ns = Vec::with_capacity(rounds * pool.len());
    for _ in 0..rounds {
        for img in &pool {
            let (a_ns, oracle) = alloc_sample(&mut net, img);
            let s_ns = scratch_sample(&mut net, img, &mut arena);
            assert_bit_identical(&oracle, &arena);
            alloc_ns.push(a_ns);
            scratch_ns.push(s_ns);
        }
    }
    assert_eq!(
        arena.grow_events(),
        grow_events,
        "arena regrew after warmup"
    );
    alloc_ns.sort_unstable();
    scratch_ns.sort_unstable();

    let (a50, a95, a99) = (
        percentile_us(&alloc_ns, 50.0),
        percentile_us(&alloc_ns, 95.0),
        percentile_us(&alloc_ns, 99.0),
    );
    let (s50, s95, s99) = (
        percentile_us(&scratch_ns, 50.0),
        percentile_us(&scratch_ns, 95.0),
        percentile_us(&scratch_ns, 99.0),
    );
    let speedup_p50 = a50 / s50;
    let speedup_p99 = a99 / s99;
    let samples = scratch_ns.len();

    let json = format!(
        "{{\n  \"bench\": \"inference_latency\",\n  \"classes\": {CLASSES},\n  \
         \"image_px\": {IMAGE_PX},\n  \"images\": {IMAGES},\n  \"rounds\": {rounds},\n  \
         \"tries_per_sample\": {TRIES},\n  \"samples\": {samples},\n  \
         \"alloc_p50_us\": {a50:.3},\n  \
         \"alloc_p95_us\": {a95:.3},\n  \"alloc_p99_us\": {a99:.3},\n  \
         \"scratch_p50_us\": {s50:.3},\n  \"scratch_p95_us\": {s95:.3},\n  \
         \"scratch_p99_us\": {s99:.3},\n  \"speedup_p50\": {speedup_p50:.3},\n  \
         \"speedup_p99\": {speedup_p99:.3},\n  \"arena_grow_events\": {grow_events}\n}}\n"
    );

    let path = relcnn_bench::results_dir().join("inference_latency.json");
    // The quick smoke run must not clobber the gated full-scale artefact.
    if relcnn_bench::quick_mode() {
        println!("quick mode: skipping write of {}", path.display());
    } else {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }
    println!(
        "inference: {samples} samples/leg over {IMAGES} images x {rounds} rounds \
         (best of {TRIES} passes each); \
         alloc p50/p95/p99 {a50:.0}/{a95:.0}/{a99:.0} us, \
         scratch p50/p95/p99 {s50:.0}/{s95:.0}/{s99:.0} us; \
         speedup p50 {speedup_p50:.2}x p99 {speedup_p99:.2}x; \
         {grow_events} arena grow events (warmup only)"
    );
}
