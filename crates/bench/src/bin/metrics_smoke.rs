//! Live metrics-plane smoke: scrapes `/metrics` off runs *in flight*.
//!
//! The CI-facing proof that the observability acceptance criteria hold
//! end to end, with no mocks anywhere:
//!
//! 1. binds the vendored [`ScrapeServer`] on an ephemeral loopback port,
//!    backed by one shared registry;
//! 2. runs an observed **campaign** on a background thread, polls
//!    [`Engine::stats_snapshot`] until the run is provably in flight,
//!    and scrapes mid-run — the page must be valid Prometheus text and
//!    must already carry engine worker/trial/reorder series;
//! 3. runs an observed **serving replay** (real hybrid-CNN inference on
//!    the same observed engine) on a background thread and scrapes once
//!    admission traffic is visible;
//! 4. after both runs complete, scrapes a final page and asserts the
//!    admission conservation identity (`offered == shed + expired +
//!    dispatched`) and the dispatch/completion agreement straight off
//!    the exposition text, using the same parser CI uses.
//!
//! Exits non-zero (panics) on any violation. `--quick` shrinks both
//! workloads.

use relcnn_faults::SkewedCost;
use relcnn_obs::{scrape_once, Registry, ScrapeServer};
use relcnn_runtime::{CollectSink, Engine, FnTrial, RunPlan, TrialCtx};
use relcnn_serve::{
    run_server_observed, BatchPolicy, CnnBackend, LoadGen, LoadGenConfig, ServeMetrics,
    ServerConfig, ServiceModel,
};
use std::net::SocketAddr;
use std::time::Duration;

/// Scrapes `/metrics` and validates the page, returning the parse.
fn scrape_valid(addr: SocketAddr, what: &str) -> (String, relcnn_obs::parse::Parsed) {
    let (status, body) = scrape_once(addr, "/metrics").unwrap_or_else(|e| panic!("{what}: {e}"));
    assert!(status.contains("200"), "{what}: {status}");
    let parsed = relcnn_obs::parse::validate(&body)
        .unwrap_or_else(|e| panic!("{what}: invalid exposition: {e}\n{body}"));
    (body, parsed)
}

fn main() {
    let quick = relcnn_bench::quick_mode();
    let registry = Registry::new();
    let server = ScrapeServer::bind("127.0.0.1:0", registry.clone()).expect("bind scrape server");
    let addr = server.addr();
    println!("metrics_smoke: scrape endpoint on http://{addr}/metrics");

    // --- 1. campaign, scraped in flight -----------------------------
    let engine = Engine::with_workers(4).observed(&registry);
    let watcher = engine.clone(); // shares the metrics handles
    let trials = if quick { 160 } else { 480 };
    let campaign = std::thread::spawn(move || {
        engine.run(
            &RunPlan::new(trials, 0x0B5E7).with_shards(12),
            &FnTrial::new(|ctx: &mut TrialCtx| {
                // ~1 ms per trial keeps the run in flight long enough
                // for a mid-run scrape at any scheduling.
                std::thread::sleep(Duration::from_millis(1));
                ctx.index
            }),
            CollectSink::new(),
        )
    });
    let mut mid_flight = None;
    for _ in 0..5_000 {
        let snap = watcher.stats_snapshot();
        if snap.in_flight() && snap.trials_executed > 0 {
            mid_flight = Some(scrape_valid(addr, "mid-campaign scrape"));
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let outcome = campaign.join().expect("campaign thread");
    let (page, parsed) = mid_flight.expect("campaign finished before a scrape landed");
    for family in [
        "relcnn_engine_trials_executed_total",
        "relcnn_engine_workers_live",
        "relcnn_engine_reorder_resident_trials",
        "relcnn_engine_trial_duration_nanoseconds_count",
    ] {
        assert!(
            parsed.has(family),
            "mid-campaign page missing {family}:\n{page}"
        );
    }
    let seen = parsed
        .value("relcnn_engine_trials_executed_total", &[])
        .expect("trials_executed sample");
    assert!(
        seen > 0.0 && seen <= trials as f64,
        "mid-flight scrape saw {seen} of {trials} trials"
    );
    if seen < trials as f64 {
        assert_eq!(
            parsed.value("relcnn_engine_workers_live", &[]),
            Some(4.0),
            "scrape landed in flight, workers must be live:\n{page}"
        );
    } else {
        // A stalled runner can let the run finish between the snapshot
        // poll and the scrape; the page is still the in-flight contract.
        println!("note: scrape landed at run end; live-worker check skipped");
    }
    println!(
        "mid-campaign scrape: {seen:.0}/{trials} trials visible, page valid \
         ({} bytes)",
        page.len()
    );
    assert_eq!(outcome.stats.trials, trials);

    // --- 2. serving replay, scraped live ----------------------------
    let serve_metrics = ServeMetrics::registered(&registry);
    let offered_probe = ServeMetrics::registered(&registry).offered;
    let requests = if quick { 120 } else { 480 };
    let serve = std::thread::spawn({
        let engine = watcher.clone();
        move || {
            let trace = LoadGen::new(
                LoadGenConfig::poisson(requests, 0x5E12F, 320, 15_000).with_deadline_jitter(9_000),
            )
            .generate();
            let config = ServerConfig {
                queue_capacity: 24,
                policy: BatchPolicy {
                    max_batch: 8,
                    max_delay_us: 1_000,
                },
                service: ServiceModel {
                    batch_overhead_us: 150,
                    cost: SkewedCost::periodic(200, 2_800, 13),
                },
            };
            let backend = CnnBackend::tiny(0xC1A55).unwrap_or_else(|e| panic!("backend: {e}"));
            run_server_observed(&trace, &config, &backend, &engine, &serve_metrics)
        }
    });
    for _ in 0..5_000 {
        if offered_probe.get() > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let (serve_page, serve_parsed) = scrape_valid(addr, "serve scrape");
    assert!(
        serve_parsed.has("relcnn_serve_requests_offered_total"),
        "serve page missing admission counters:\n{serve_page}"
    );
    println!(
        "serve scrape: {} requests offered so far, page valid",
        serve_parsed
            .value("relcnn_serve_requests_offered_total", &[])
            .unwrap_or(0.0)
    );
    let run = serve.join().expect("serve thread");

    // --- 3. final page: conservation straight off the wire ----------
    let (final_page, fin) = scrape_valid(addr, "final scrape");
    let get = |name: &str| {
        fin.value(name, &[])
            .unwrap_or_else(|| panic!("final page missing {name}:\n{final_page}"))
    };
    assert_eq!(
        get("relcnn_serve_requests_offered_total"),
        get("relcnn_serve_requests_shed_total")
            + get("relcnn_serve_requests_expired_total")
            + get("relcnn_serve_requests_dispatched_total"),
        "admission conservation broke on the scraped page:\n{final_page}"
    );
    assert_eq!(get("relcnn_serve_requests_offered_total"), requests as f64);
    assert_eq!(
        get("relcnn_serve_requests_completed_total"),
        run.report.completed as f64
    );
    assert_eq!(
        get("relcnn_serve_requests_dispatched_total"),
        get("relcnn_serve_requests_completed_total"),
        "every dispatched request must complete (no mid-batch aborts)"
    );
    assert_eq!(get("relcnn_serve_queue_depth"), 0.0);
    // The serving replay dispatched real inference on the observed
    // engine, so engine trial counters moved past the campaign's.
    assert!(
        get("relcnn_engine_trials_executed_total") > trials as f64,
        "serve dispatch should have executed engine trials:\n{final_page}"
    );

    server.shutdown();
    println!(
        "metrics_smoke: OK — {} families on the final page, campaign {trials} trials, \
         serving {} completed / {} shed / {} expired of {requests}",
        final_page
            .lines()
            .filter(|l| l.starts_with("# TYPE"))
            .count(),
        run.report.completed,
        run.report.shed,
        run.report.expired(),
    );
}
