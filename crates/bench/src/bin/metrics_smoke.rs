//! Live metrics-plane smoke: scrapes `/metrics` off runs *in flight*.
//!
//! The CI-facing proof that the observability acceptance criteria hold
//! end to end, with no mocks anywhere:
//!
//! 1. binds the vendored [`ScrapeServer`] on an ephemeral loopback port,
//!    backed by one shared registry;
//! 2. runs an observed **campaign** on a background thread, polls
//!    [`Engine::stats_snapshot`] until the run is provably in flight,
//!    and scrapes mid-run — the page must be valid Prometheus text and
//!    must already carry engine worker/trial/reorder series;
//! 3. runs an observed **serving replay** (three-class mix, real
//!    hybrid-CNN inference on the same observed engine, via the `Server`
//!    builder) on a background thread and scrapes once admission traffic
//!    is visible — the page must carry one `class`-labeled series per
//!    priority lane;
//! 4. after both runs complete, scrapes a final page and asserts the
//!    admission conservation identity (`offered == shed + expired +
//!    dispatched`, summed across class series) and the
//!    dispatch/completion agreement straight off the exposition text,
//!    using the same parser CI uses;
//! 5. runs a **wall-clock front-end** (`WallClock` + `observed`): the
//!    front-end binds its own scrape endpoint by default, announces it
//!    through `scrape_notify`, and this smoke scrapes it live mid-run,
//!    then checks off-the-wire conservation when the run drains.
//!
//! Exits non-zero (panics) on any violation. `--quick` shrinks the
//! workloads.

use relcnn_faults::SkewedCost;
use relcnn_obs::{scrape_once, Registry, ScrapeServer};
use relcnn_runtime::{CollectSink, Engine, FnTrial, RunPlan, TrialCtx};
use relcnn_serve::{
    BatchPolicy, CnnBackend, ControllerConfig, LoadGen, LoadGenConfig, RequestClass, ServeMetrics,
    Server, ServerConfig, ServiceModel, WallClock,
};
use std::net::SocketAddr;
use std::time::Duration;

/// Scrapes `/metrics` and validates the page, returning the parse.
fn scrape_valid(addr: SocketAddr, what: &str) -> (String, relcnn_obs::parse::Parsed) {
    let (status, body) = scrape_once(addr, "/metrics").unwrap_or_else(|e| panic!("{what}: {e}"));
    assert!(status.contains("200"), "{what}: {status}");
    let parsed = relcnn_obs::parse::validate(&body)
        .unwrap_or_else(|e| panic!("{what}: invalid exposition: {e}\n{body}"));
    (body, parsed)
}

fn main() {
    let quick = relcnn_bench::quick_mode();
    let registry = Registry::new();
    let server = ScrapeServer::bind("127.0.0.1:0", registry.clone()).expect("bind scrape server");
    let addr = server.addr();
    println!("metrics_smoke: scrape endpoint on http://{addr}/metrics");

    // --- 1. campaign, scraped in flight -----------------------------
    let engine = Engine::with_workers(4).observed(&registry);
    let watcher = engine.clone(); // shares the metrics handles
    let trials = if quick { 160 } else { 480 };
    let campaign = std::thread::spawn(move || {
        engine.run(
            &RunPlan::new(trials, 0x0B5E7).with_shards(12),
            &FnTrial::new(|ctx: &mut TrialCtx| {
                // ~1 ms per trial keeps the run in flight long enough
                // for a mid-run scrape at any scheduling.
                std::thread::sleep(Duration::from_millis(1));
                ctx.index
            }),
            CollectSink::new(),
        )
    });
    let mut mid_flight = None;
    for _ in 0..5_000 {
        let snap = watcher.stats_snapshot();
        if snap.in_flight() && snap.trials_executed > 0 {
            mid_flight = Some(scrape_valid(addr, "mid-campaign scrape"));
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let outcome = campaign.join().expect("campaign thread");
    let (page, parsed) = mid_flight.expect("campaign finished before a scrape landed");
    for family in [
        "relcnn_engine_trials_executed_total",
        "relcnn_engine_workers_live",
        "relcnn_engine_reorder_resident_trials",
        "relcnn_engine_trial_duration_nanoseconds_count",
    ] {
        assert!(
            parsed.has(family),
            "mid-campaign page missing {family}:\n{page}"
        );
    }
    let seen = parsed
        .value("relcnn_engine_trials_executed_total", &[])
        .expect("trials_executed sample");
    assert!(
        seen > 0.0 && seen <= trials as f64,
        "mid-flight scrape saw {seen} of {trials} trials"
    );
    if seen < trials as f64 {
        assert_eq!(
            parsed.value("relcnn_engine_workers_live", &[]),
            Some(4.0),
            "scrape landed in flight, workers must be live:\n{page}"
        );
    } else {
        // A stalled runner can let the run finish between the snapshot
        // poll and the scrape; the page is still the in-flight contract.
        println!("note: scrape landed at run end; live-worker check skipped");
    }
    println!(
        "mid-campaign scrape: {seen:.0}/{trials} trials visible, page valid \
         ({} bytes)",
        page.len()
    );
    assert_eq!(outcome.stats.trials, trials);

    // --- 2. serving replay, scraped live ----------------------------
    let offered_probe = ServeMetrics::registered(&registry);
    let requests = if quick { 120 } else { 480 };
    let serve_config = ServerConfig::new(
        24,
        BatchPolicy::new(8, 1_000).with_critical_delay(400),
        ServiceModel {
            batch_overhead_us: 150,
            cost: SkewedCost::periodic(200, 2_800, 13),
        },
    )
    .with_critical_reserve(4)
    .with_control(ControllerConfig::default());
    let serve = std::thread::spawn({
        let engine = watcher.clone();
        let registry = registry.clone();
        move || {
            let trace = LoadGen::new(
                LoadGenConfig::poisson(requests, 0x5E12F, 320, 15_000)
                    .with_deadline_jitter(9_000)
                    .with_class_mix([1, 3, 2])
                    .with_class_deadlines([4_000, 0, 45_000]),
            )
            .generate();
            let backend = CnnBackend::tiny(0xC1A55).unwrap_or_else(|e| panic!("backend: {e}"));
            Server::new(serve_config)
                .backend(&backend)
                .engine(&engine)
                .observed(&registry)
                .run(&trace)
        }
    });
    let offered_so_far = |m: &ServeMetrics| -> u64 {
        RequestClass::ALL
            .iter()
            .map(|c| m.class(*c).offered.get())
            .sum()
    };
    for _ in 0..5_000 {
        if offered_so_far(&offered_probe) > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let (serve_page, serve_parsed) = scrape_valid(addr, "serve scrape");
    assert!(
        serve_parsed.has("relcnn_serve_requests_offered_total"),
        "serve page missing admission counters:\n{serve_page}"
    );
    assert_eq!(
        serve_parsed.label_values("relcnn_serve_requests_offered_total", "class"),
        vec!["bulk", "critical", "interactive"],
        "per-class admission series missing:\n{serve_page}"
    );
    println!(
        "serve scrape: {} requests offered so far across {} class series, page valid",
        serve_parsed.sum("relcnn_serve_requests_offered_total"),
        RequestClass::COUNT,
    );
    let run = serve.join().expect("serve thread");

    // --- 3. final page: conservation straight off the wire ----------
    // Per-request families are class-labeled, so cross-class totals come
    // from summing each family across its series.
    let (final_page, fin) = scrape_valid(addr, "final scrape");
    let get = |name: &str| {
        assert!(fin.has(name), "final page missing {name}:\n{final_page}");
        fin.sum(name)
    };
    assert_eq!(
        get("relcnn_serve_requests_offered_total"),
        get("relcnn_serve_requests_shed_total")
            + get("relcnn_serve_requests_expired_total")
            + get("relcnn_serve_requests_dispatched_total"),
        "admission conservation broke on the scraped page:\n{final_page}"
    );
    assert_eq!(get("relcnn_serve_requests_offered_total"), requests as f64);
    assert_eq!(
        get("relcnn_serve_requests_completed_total"),
        run.report.completed as f64
    );
    assert_eq!(
        get("relcnn_serve_requests_dispatched_total"),
        get("relcnn_serve_requests_completed_total"),
        "every dispatched request must complete (no mid-batch aborts)"
    );
    assert_eq!(get("relcnn_serve_queue_depth"), 0.0);
    // Per-class conservation, each lane read off its own series.
    for class in RequestClass::ALL {
        let labels = [("class", class.label())];
        let of = |name: &str| fin.value(name, &labels).unwrap_or(0.0);
        assert_eq!(
            of("relcnn_serve_requests_offered_total"),
            of("relcnn_serve_requests_shed_total")
                + of("relcnn_serve_requests_expired_total")
                + of("relcnn_serve_requests_dispatched_total"),
            "class {} conservation broke on the wire:\n{final_page}",
            class.label()
        );
    }
    // The serving replay dispatched real inference on the observed
    // engine, so engine trial counters moved past the campaign's.
    assert!(
        get("relcnn_engine_trials_executed_total") > trials as f64,
        "serve dispatch should have executed engine trials:\n{final_page}"
    );
    server.shutdown();

    // --- 4. wall-clock front-end with its own live endpoint ---------
    let wall_requests = if quick { 120 } else { 300 };
    let wall_registry = Registry::new();
    let (tx, rx) = std::sync::mpsc::channel();
    let wall_run = std::thread::spawn({
        let wall_registry = wall_registry.clone();
        move || {
            let trace = LoadGen::new(
                LoadGenConfig::poisson(wall_requests, 0x7A11, 700, 30_000)
                    .with_class_mix([1, 3, 2])
                    .with_class_deadlines([6_000, 0, 60_000]),
            )
            .generate();
            let backend = CnnBackend::tiny(0xC1A55).unwrap_or_else(|e| panic!("backend: {e}"));
            Server::new(
                ServerConfig::new(
                    24,
                    BatchPolicy::new(8, 1_500),
                    ServiceModel {
                        batch_overhead_us: 100,
                        cost: SkewedCost::uniform(250),
                    },
                )
                .with_critical_reserve(3)
                .with_control(ControllerConfig::default()),
            )
            .backend(&backend)
            .observed(&wall_registry)
            .clock(WallClock::with_budget(60_000_000))
            .scrape_notify(tx)
            .run(&trace)
        }
    });
    // The wall front-end binds its own scrape endpoint by default and
    // announces it; scrape it while the run is live.
    let wall_addr = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("wall front-end scrape address");
    let (wall_page, wall_parsed) = scrape_valid(wall_addr, "wall mid-run scrape");
    assert!(
        wall_parsed.has("relcnn_serve_queue_capacity"),
        "wall page missing serving families:\n{wall_page}"
    );
    assert_eq!(
        wall_parsed.label_values("relcnn_serve_requests_offered_total", "class"),
        vec!["bulk", "critical", "interactive"],
        "wall endpoint must export per-class series:\n{wall_page}"
    );
    println!(
        "wall scrape on http://{wall_addr}/metrics: {} offered live, page valid",
        wall_parsed.sum("relcnn_serve_requests_offered_total"),
    );
    let wall = wall_run.join().expect("wall thread");
    assert!(wall.report.conserved(), "wall report: {:?}", wall.report);
    let wall_fin = relcnn_obs::parse::validate(&wall_registry.render()).expect("wall final page");
    assert_eq!(
        wall_fin.sum("relcnn_serve_requests_offered_total"),
        wall_requests as f64
    );
    assert_eq!(
        wall_fin.sum("relcnn_serve_requests_shed_total")
            + wall_fin.sum("relcnn_serve_requests_expired_total")
            + wall_fin.sum("relcnn_serve_requests_completed_total"),
        wall_requests as f64,
        "wall conservation broke off the wire"
    );

    println!(
        "metrics_smoke: OK — {} families on the final page, campaign {trials} trials, \
         serving {} completed / {} shed / {} expired of {requests}, wall front-end \
         {} completed / {} shed / {} expired of {wall_requests}",
        final_page
            .lines()
            .filter(|l| l.starts_with("# TYPE"))
            .count(),
        run.report.completed,
        run.report.shed,
        run.report.expired(),
        wall.report.completed,
        wall.report.shed,
        wall.report.expired(),
    );
}
