//! Emits the determinism-matrix JSONL artefact.
//!
//! Runs a fixed, skewed, early-aborting fault-injection campaign at a
//! chosen worker count / chunk size and writes the engine's footerless
//! JSONL result stream to a file. The stream is a pure function of the
//! campaign identity `(trials, seed, shards)` — *not* of the worker
//! count, the chunk size or the steal schedule — so CI runs this binary
//! at workers 1/2/8 (and different chunkings) and diffs the artefacts
//! byte for byte.
//!
//! ```text
//! determinism_artifact --workers 8 --chunk 1 --out /tmp/w8.jsonl
//! determinism_artifact --workers 8 --profile cpu --out /tmp/w8_cpu.jsonl
//! ```
//!
//! Two workload profiles cover the engine's two scheduling regimes:
//!
//! * `latency` (default) — trials sleep per [`SkewedCost`], so
//!   multi-worker runs overlap waits and steal even on a 1-core host;
//! * `cpu` — trials spin through a skewed number of injector exposures
//!   with no sleeps, driving the *partial-aggregation* result path the
//!   way a compute-bound campaign does (send-blocking, coalescing and
//!   adaptive splits under full CPU contention).
//!
//! Both profiles exercise every determinism hazard at once: skewed
//! per-trial cost (forcing steals and adaptive splits at multi-worker
//! counts), all four `TrialOutcome` variants, and an escalation
//! early-stop that fires mid-run (the stop shard must also be
//! schedule-independent).
//!
//! Each artefact ends with a `{"partial_aggregate":...}` line produced by
//! a second run of the same campaign on the bare partial-aggregation
//! result path (no raw trials cross the channel), asserted in-process to
//! match the replayed aggregate — so the CI byte-diff covers both result
//! paths, not just the raw replay that feeds the JSONL lines.

use relcnn_faults::{BerInjector, FaultInjector, FaultSite, OpContext, SkewedCost};
use relcnn_runtime::{
    run_campaign_sink, CampaignConfig, CampaignSink, EarlyStop, JsonlSink, TrialOutcome,
    TrialResult,
};
use std::time::Duration;

const TRIALS: u64 = 240;
const BASE_SEED: u64 = 0xD17E;
const SHARDS: usize = 12;

/// Maps the fault pattern of a trial's first 16 injector exposures to an
/// outcome. Both profiles share it (and the `(seed, 0.3)` injector), so
/// they make the same early-stop decision at the same shard — only the
/// exposure counts in the artefact differ.
fn outcome_of(inj: &mut BerInjector, extra_ops: u64) -> TrialOutcome {
    let mut flips = 0u32;
    let mut acc = 0.0f32;
    for op in 0..(16 + extra_ops) {
        let v = inj.perturb(OpContext::new(FaultSite::Multiplier, op), 1.0);
        if op < 16 && v != 1.0 {
            flips += 1;
        }
        acc += v;
    }
    std::hint::black_box(acc);
    match flips {
        0 => TrialOutcome::Correct,
        1..=3 => TrialOutcome::DetectedRecovered,
        4..=6 => TrialOutcome::DetectedAborted,
        _ => TrialOutcome::SilentCorruption,
    }
}

/// Latency-bound trial: sleeps per [`SkewedCost`] so multi-worker runs
/// actually steal.
fn latency_trial(seed: u64) -> TrialResult {
    let index = seed - BASE_SEED;
    let cost = SkewedCost::tail(0, 2, TRIALS / 3);
    std::thread::sleep(Duration::from_millis(cost.evals(index)));
    let mut inj = BerInjector::new(seed, 0.3).with_sites(vec![FaultSite::Multiplier]);
    let outcome = outcome_of(&mut inj, 0);
    TrialResult {
        outcome,
        injector: inj.stats(),
    }
}

/// CPU-bound trial: a skewed number of injector exposures, no sleeps —
/// the tail trials cost ~16x the clean ones in pure compute.
fn cpu_trial(seed: u64) -> TrialResult {
    let index = seed - BASE_SEED;
    let cost = SkewedCost::tail(512, 8192, TRIALS / 3);
    let mut inj = BerInjector::new(seed, 0.3).with_sites(vec![FaultSite::Multiplier]);
    let outcome = outcome_of(&mut inj, cost.evals(index));
    TrialResult {
        outcome,
        injector: inj.stats(),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: determinism_artifact --workers N --out PATH [--chunk C] [--no-abort] \
         [--profile latency|cpu]\n\
         Writes the footerless JSONL result stream of a fixed skewed campaign."
    );
    std::process::exit(2)
}

fn main() {
    let mut workers = 1usize;
    let mut chunk = 0u64;
    let mut out: Option<String> = None;
    let mut early_stop = true;
    let mut profile = "latency".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--chunk" => {
                chunk = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--no-abort" => early_stop = false,
            "--profile" => profile = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    let Some(out) = out else { usage() };
    let trial: fn(u64) -> TrialResult = match profile.as_str() {
        "latency" => latency_trial,
        "cpu" => cpu_trial,
        _ => usage(),
    };

    let config = CampaignConfig::new(TRIALS, BASE_SEED)
        .with_threads(workers)
        .with_shards(SHARDS)
        .with_chunk(chunk);
    let policy = if early_stop {
        // Fires deep into the shard prefix on this workload — past the
        // skewed tail's onset — so the artefact witnesses both heavy
        // stolen chunks and the stop decision.
        EarlyStop::on_escalations(48)
    } else {
        EarlyStop::never()
    };

    // `JsonlSink` buffers internally, so the raw file handle is enough.
    // Teeing through `JsonlSink` forces the engine's raw-replay result
    // path (every trial crosses the channel and is replayed per-`absorb`).
    let file = std::fs::File::create(&out).unwrap_or_else(|e| panic!("create {out}: {e}"));
    let sink = JsonlSink::new(file, CampaignSink::new(policy)).without_footer();
    let outcome = run_campaign_sink(&config, sink, trial);

    // Second run on the bare `CampaignSink`: the partial-aggregation
    // path, where workers fold chunk-local `CampaignReport`s and no raw
    // trial ever crosses the channel. Its aggregate is appended to the
    // artefact, so the CI byte-diff across worker counts covers *both*
    // result paths — and the two paths must agree with each other here
    // and now.
    let partial = run_campaign_sink(&config, CampaignSink::new(policy), trial);
    assert_eq!(
        partial.summary, outcome.summary,
        "partial-aggregation path diverged from the raw-replay path"
    );
    assert_eq!(partial.stats.shards, outcome.stats.shards);
    {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&out)
            .unwrap_or_else(|e| panic!("append {out}: {e}"));
        let report = serde_json::to_string(&partial.summary)
            .unwrap_or_else(|e| panic!("serialize partial aggregate: {e}"));
        writeln!(file, "{{\"partial_aggregate\":{report}}}")
            .unwrap_or_else(|e| panic!("append partial aggregate to {out}: {e}"));
    }

    eprintln!(
        "{out}: profile={profile} workers={workers} chunk={chunk} trials={} shards={}/{} \
         aborted={} steals={} splits={} safety={:.4}",
        outcome.summary.trials,
        outcome.stats.shards,
        outcome.stats.planned_shards,
        outcome.stats.aborted,
        outcome.stats.steals,
        outcome.stats.splits,
        outcome.summary.safety_rate()
    );
}
