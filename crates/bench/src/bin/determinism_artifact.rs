//! Emits the determinism-matrix JSONL artefact.
//!
//! Runs a fixed, skewed, early-aborting fault-injection campaign at a
//! chosen worker count / chunk size and writes the engine's footerless
//! JSONL result stream to a file. The stream is a pure function of the
//! campaign identity `(trials, seed, shards)` — *not* of the worker
//! count, the chunk size, the steal schedule, the reorder budget or the
//! ingestion path — so CI runs this binary at workers 1/2/8 (and
//! different chunkings, budgets and sources) and diffs the artefacts
//! byte for byte.
//!
//! ```text
//! determinism_artifact --workers 8 --chunk 1 --out /tmp/w8.jsonl
//! determinism_artifact --workers 8 --profile cpu --out /tmp/w8_cpu.jsonl
//! determinism_artifact --workers 8 --reorder-budget 24 --out /tmp/w8_b24.jsonl
//! determinism_artifact --workers 8 --source streaming --out /tmp/w8_s.jsonl
//! ```
//!
//! Two workload profiles cover the engine's two scheduling regimes:
//!
//! * `latency` (default) — trials sleep per `SkewedCost`, so
//!   multi-worker runs overlap waits and steal even on a 1-core host;
//! * `cpu` — trials spin through a skewed number of injector exposures
//!   with no sleeps, driving the *partial-aggregation* result path the
//!   way a compute-bound campaign does (send-blocking, coalescing and
//!   adaptive splits under full CPU contention).
//!
//! Three ingestion paths cover the engine's trial-input plumbing: `plan`
//! (the classic index-driven path), `eager` (the same per-trial workload
//! descriptors materialised up front and pulled through a
//! `SliceSource`), and `streaming` (descriptors generated lazily, one
//! chunk at a time, through an `FnSource`). All three must produce
//! byte-identical artefacts — the streaming leg of the CI matrix.
//!
//! `--reorder-budget N` engages the scheduler's run-frontier flow
//! control; the binary then asserts in-process that the observed
//! out-of-order residency never exceeded the budget (the satellite
//! contract that makes the reorder cap testable) while the bytes still
//! match the unbounded reference.
//!
//! `--metrics` runs the same campaign on a registry-observed engine
//! (live `relcnn-obs` publication on). The artefact must still be
//! byte-identical to the metrics-off reference — the CI matrix leg that
//! proves metrics publication is write-only side traffic off the
//! deterministic path.
//!
//! `--trace` runs the same campaign on a flight-recorded engine (ring
//! buffers on, spans recorded for every chunk, steal, park and release).
//! The exported Chrome-trace JSON is validated in-process and the
//! artefact must again be byte-identical to the trace-off reference —
//! the matrix leg that proves tracing is equally off the deterministic
//! path.
//!
//! Each artefact ends with a `{"partial_aggregate":...}` line produced by
//! a second run of the same campaign on the bare partial-aggregation
//! result path (no raw trials cross the channel), asserted in-process to
//! match the replayed aggregate — so the CI byte-diff covers both result
//! paths, not just the raw replay that feeds the JSONL lines.

use relcnn_bench::workload::{Profile, BASE_SEED, SHARDS, TRIALS};
use relcnn_runtime::{
    run_campaign_sink_on, run_campaign_source_on, CampaignConfig, CampaignSink, EarlyStop, Engine,
    FnSource, JsonlSink, RunOutcome, Sink, SliceSource, TrialResult,
};

/// Which route delivers the workload descriptors to the workers.
#[derive(Clone, Copy, PartialEq)]
enum Source {
    /// Classic index-driven path: the trial derives its own descriptor.
    Plan,
    /// Dataset materialised up front, pulled through a `SliceSource`.
    Eager,
    /// Dataset generated lazily per chunk through an `FnSource`.
    Streaming,
}

/// Runs the campaign once through the chosen ingestion path on `engine`
/// (plain or metrics-observed — the artefact bytes must not care).
fn run_one<S: Sink<TrialResult>>(
    engine: &Engine,
    config: &CampaignConfig,
    profile: Profile,
    source: Source,
    sink: S,
) -> RunOutcome<S::Summary> {
    match source {
        Source::Plan => run_campaign_sink_on(engine, config, sink, move |seed| {
            profile.run(profile.item(seed - BASE_SEED), seed)
        }),
        Source::Eager => {
            let dataset: Vec<u64> = (0..TRIALS).map(|i| profile.item(i)).collect();
            run_campaign_source_on(
                engine,
                config,
                &SliceSource::new(&dataset),
                sink,
                move |item: &u64, seed| profile.run(*item, seed),
            )
        }
        Source::Streaming => run_campaign_source_on(
            engine,
            config,
            &FnSource::new(TRIALS, move |i| profile.item(i)),
            sink,
            move |item, seed| profile.run(item, seed),
        ),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: determinism_artifact --workers N --out PATH [--chunk C] [--no-abort] \
         [--profile latency|cpu] [--source plan|eager|streaming] [--reorder-budget B] \
         [--metrics] [--trace]\n\
         Writes the footerless JSONL result stream of a fixed skewed campaign.\n\
         --metrics runs the campaign on a registry-observed engine (live metrics \
         publication on); --trace runs it on a flight-recorded engine (span rings \
         on, export validated in-process); the artefact bytes must be identical \
         either way — the CI matrix diffs exactly that."
    );
    std::process::exit(2)
}

fn main() {
    let mut workers = 1usize;
    let mut chunk = 0u64;
    let mut reorder_budget = 0u64;
    let mut out: Option<String> = None;
    let mut early_stop = true;
    let mut metrics = false;
    let mut trace = false;
    let mut profile = Profile::Latency;
    let mut source = Source::Plan;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics" => metrics = true,
            "--trace" => trace = true,
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--chunk" => {
                chunk = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--reorder-budget" => {
                reorder_budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--no-abort" => early_stop = false,
            "--profile" => {
                profile = args
                    .next()
                    .as_deref()
                    .and_then(Profile::parse)
                    .unwrap_or_else(|| usage())
            }
            "--source" => {
                source = match args.next().as_deref() {
                    Some("plan") => Source::Plan,
                    Some("eager") => Source::Eager,
                    Some("streaming") => Source::Streaming,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }
    let Some(out) = out else { usage() };

    let config = CampaignConfig::new(TRIALS, BASE_SEED)
        .with_threads(workers)
        .with_shards(SHARDS)
        .with_chunk(chunk)
        .with_reorder_budget(reorder_budget);
    let policy = if early_stop {
        // Fires deep into the shard prefix on this workload — past the
        // skewed tail's onset — so the artefact witnesses both heavy
        // stolen chunks and the stop decision.
        EarlyStop::on_escalations(48)
    } else {
        EarlyStop::never()
    };

    // With `--metrics` the same campaign runs on a registry-observed
    // engine — live publication on, artefact bytes required identical
    // (the CI matrix leg byte-diffs metrics-on vs metrics-off).
    let registry = relcnn_obs::Registry::new();
    // With `--trace` the same campaign runs on a flight-recorded engine —
    // rings on, spans recorded; the artefact bytes must again be
    // identical (the CI matrix leg byte-diffs trace-on vs trace-off).
    let recorder = if trace {
        relcnn_obs::TraceRecorder::new("determinism_artifact")
    } else {
        relcnn_obs::TraceRecorder::off()
    };
    let mut engine = Engine::with_workers(workers);
    if metrics {
        engine = engine.observed(&registry);
    }
    if trace {
        engine = engine.traced(&recorder);
    }

    // `JsonlSink` buffers internally, so the raw file handle is enough.
    // Teeing through `JsonlSink` forces the engine's raw-replay result
    // path (every trial crosses the channel and is replayed per-`absorb`).
    let file = std::fs::File::create(&out).unwrap_or_else(|e| panic!("create {out}: {e}"));
    let sink = JsonlSink::new(file, CampaignSink::new(policy)).without_footer();
    let outcome = run_one(&engine, &config, profile, source, sink);

    // Second run on the bare `CampaignSink`: the partial-aggregation
    // path, where workers fold chunk-local `CampaignReport`s and no raw
    // trial ever crosses the channel. Its aggregate is appended to the
    // artefact, so the CI byte-diff across worker counts covers *both*
    // result paths — and the two paths must agree with each other here
    // and now.
    let partial = run_one(&engine, &config, profile, source, CampaignSink::new(policy));
    assert_eq!(
        partial.summary, outcome.summary,
        "partial-aggregation path diverged from the raw-replay path"
    );
    assert_eq!(partial.stats.shards, outcome.stats.shards);
    // The satellite contract that makes the reorder cap testable: with a
    // finite budget set, the out-of-order buffer's steady-state depth
    // must never have exceeded it, on either result path.
    if reorder_budget > 0 {
        for (path, stats) in [("replay", &outcome.stats), ("partial", &partial.stats)] {
            assert!(
                stats.max_reorder_depth <= reorder_budget,
                "{path} path: reorder depth {} exceeded the budget {reorder_budget}",
                stats.max_reorder_depth
            );
        }
    }
    {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&out)
            .unwrap_or_else(|e| panic!("append {out}: {e}"));
        let report = serde_json::to_string(&partial.summary)
            .unwrap_or_else(|e| panic!("serialize partial aggregate: {e}"));
        writeln!(file, "{{\"partial_aggregate\":{report}}}")
            .unwrap_or_else(|e| panic!("append partial aggregate to {out}: {e}"));
    }

    // When observed, the registry must have collected both runs and
    // render as structurally valid exposition text (stderr only — the
    // artefact file never sees a metric).
    if metrics {
        let page = registry.render();
        let parsed = relcnn_obs::parse::validate(&page)
            .unwrap_or_else(|e| panic!("observed run rendered invalid exposition: {e}"));
        // Early abort lets workers execute past the released prefix
        // (schedule-dependent overshoot), so executed is a lower-bounded
        // check, not an equality.
        let released = (outcome.summary.trials + partial.summary.trials) as f64;
        let executed = parsed
            .value("relcnn_engine_trials_executed_total", &[])
            .expect("registry missing relcnn_engine_trials_executed_total");
        assert!(
            executed >= released,
            "registry saw {executed} executed trials < {released} released"
        );
        assert_eq!(
            parsed.value("relcnn_engine_runs_completed_total", &[]),
            Some(2.0),
            "registry should have observed both runs"
        );
        eprintln!(
            "{out}: metrics on — registry valid, {} families, {executed} trials executed \
             across both runs ({released} released)",
            page.lines().filter(|l| l.starts_with("# TYPE")).count(),
        );
    }

    // When traced, the recorder must hold both runs' timelines and the
    // Chrome-trace export must be validator-clean (stderr only — the
    // artefact file never sees a trace event).
    if trace {
        let snapshot = recorder.drain();
        let recorded = snapshot.recorded_events();
        let dropped = snapshot.dropped_events();
        let chrome = relcnn_obs::trace::export_chrome(&[snapshot]);
        let parsed = relcnn_obs::trace::validate(&chrome)
            .unwrap_or_else(|e| panic!("traced run exported an invalid timeline: {e}"));
        assert_eq!(
            parsed.count('B', "run"),
            2,
            "recorder should hold a run span per campaign run"
        );
        assert!(
            parsed.count('B', "chunk") > 0,
            "traced campaign recorded no chunk spans"
        );
        assert!(
            parsed.count('i', "release") > 0,
            "traced campaign recorded no aggregator releases"
        );
        eprintln!(
            "{out}: trace on — {} events exported ({recorded} recorded, {dropped} dropped), \
             validator clean",
            parsed.event_count(),
        );
    }

    let profile_name = profile.name();
    let source_name = match source {
        Source::Plan => "plan",
        Source::Eager => "eager",
        Source::Streaming => "streaming",
    };
    eprintln!(
        "{out}: profile={profile_name} source={source_name} workers={workers} chunk={chunk} \
         budget={reorder_budget} trials={} shards={}/{} aborted={} steals={} splits={} \
         frontier_parks={} frontier_stall_us={} max_reorder_depth={} safety={:.4}",
        outcome.summary.trials,
        outcome.stats.shards,
        outcome.stats.planned_shards,
        outcome.stats.aborted,
        outcome.stats.steals,
        outcome.stats.splits,
        outcome.stats.frontier_parks,
        outcome.stats.frontier_stall.as_micros(),
        outcome.stats.max_reorder_depth,
        outcome.summary.safety_rate()
    );
}
