//! Emits the determinism-matrix JSONL artefact.
//!
//! Runs a fixed, skewed, early-aborting fault-injection campaign at a
//! chosen worker count / chunk size and writes the engine's footerless
//! JSONL result stream to a file. The stream is a pure function of the
//! campaign identity `(trials, seed, shards)` — *not* of the worker
//! count, the chunk size or the steal schedule — so CI runs this binary
//! at workers 1/2/8 (and different chunkings) and diffs the artefacts
//! byte for byte.
//!
//! ```text
//! determinism_artifact --workers 8 --chunk 1 --out /tmp/w8.jsonl
//! ```
//!
//! The workload deliberately exercises every determinism hazard at once:
//! skewed per-trial cost (forcing steals at multi-worker counts), all
//! four `TrialOutcome` variants, and an escalation early-stop that fires
//! mid-run (the stop shard must also be schedule-independent).

use relcnn_faults::{BerInjector, FaultInjector, FaultSite, OpContext, SkewedCost};
use relcnn_runtime::{
    run_campaign_sink, CampaignConfig, CampaignSink, EarlyStop, JsonlSink, TrialOutcome,
    TrialResult,
};
use std::io::BufWriter;
use std::time::Duration;

const TRIALS: u64 = 240;
const BASE_SEED: u64 = 0xD17E;
const SHARDS: usize = 12;

/// Deterministic trial mixing every outcome; sleeps per [`SkewedCost`] so
/// multi-worker runs actually steal.
fn trial(seed: u64) -> TrialResult {
    let index = seed - BASE_SEED;
    let cost = SkewedCost::tail(0, 2, TRIALS / 3);
    std::thread::sleep(Duration::from_millis(cost.evals(index)));
    let mut inj = BerInjector::new(seed, 0.3).with_sites(vec![FaultSite::Multiplier]);
    let mut flips = 0u32;
    for op in 0..16u64 {
        if inj.perturb(OpContext::new(FaultSite::Multiplier, op), 1.0) != 1.0 {
            flips += 1;
        }
    }
    let outcome = match flips {
        0 => TrialOutcome::Correct,
        1..=3 => TrialOutcome::DetectedRecovered,
        4..=6 => TrialOutcome::DetectedAborted,
        _ => TrialOutcome::SilentCorruption,
    };
    TrialResult {
        outcome,
        injector: inj.stats(),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: determinism_artifact --workers N --out PATH [--chunk C] [--no-abort]\n\
         Writes the footerless JSONL result stream of a fixed skewed campaign."
    );
    std::process::exit(2)
}

fn main() {
    let mut workers = 1usize;
    let mut chunk = 0u64;
    let mut out: Option<String> = None;
    let mut early_stop = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--chunk" => {
                chunk = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--no-abort" => early_stop = false,
            _ => usage(),
        }
    }
    let Some(out) = out else { usage() };

    let config = CampaignConfig::new(TRIALS, BASE_SEED)
        .with_threads(workers)
        .with_shards(SHARDS)
        .with_chunk(chunk);
    let policy = if early_stop {
        // Fires deep into the shard prefix on this workload — past the
        // skewed tail's onset — so the artefact witnesses both heavy
        // stolen chunks and the stop decision.
        EarlyStop::on_escalations(48)
    } else {
        EarlyStop::never()
    };

    let file = std::fs::File::create(&out).unwrap_or_else(|e| panic!("create {out}: {e}"));
    let sink = JsonlSink::new(BufWriter::new(file), CampaignSink::new(policy)).without_footer();
    let outcome = run_campaign_sink(&config, sink, trial);

    eprintln!(
        "{out}: workers={workers} chunk={chunk} trials={} shards={}/{} aborted={} \
         steals={} safety={:.4}",
        outcome.summary.trials,
        outcome.stats.shards,
        outcome.stats.planned_shards,
        outcome.stats.aborted,
        outcome.stats.steals,
        outcome.summary.safety_rate()
    );
}
