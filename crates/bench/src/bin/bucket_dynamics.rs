//! **X3** — leaky-bucket dynamics (Algorithm 3's error counter).
//!
//! The paper: "a stream of correctly executed operations will cancel one,
//! but not two successive errors" and "we can subsequently adjust the
//! number of errors required to report an error condition serious enough
//! to consider the application irrecoverable."
//!
//! This binary measures availability (fraction of convolution runs that
//! complete) under scripted fault patterns across bucket configurations,
//! making the factor/ceiling trade-off the paper alludes to concrete. The
//! `pattern × bucket` grid is embarrassingly parallel, so the cells run as
//! one `relcnn-runtime` engine batch (results stay in deterministic grid
//! order regardless of worker count).

use relcnn_bench::write_csv;
use relcnn_faults::{bits, FaultSite, ScriptedFault, ScriptedInjector};
use relcnn_relexec::conv::{reliable_conv2d, ReliableConvConfig};
use relcnn_relexec::{BucketConfig, DmrAlu, RetryPolicy};
use relcnn_runtime::{CollectSink, Engine, FnTrial, RunPlan, TrialCtx};
use relcnn_tensor::conv::ConvGeometry;
use relcnn_tensor::init::{Init, Rand};
use relcnn_tensor::Shape;

/// Fault patterns exercised against each bucket configuration.
fn patterns() -> Vec<(&'static str, Vec<ScriptedFault>)> {
    let flip = |op: u64| {
        ScriptedFault::transient_flip(op, bits::SIGN_BIT)
            .on_replica(1)
            .at_site(FaultSite::Multiplier)
    };
    vec![
        ("clean", vec![]),
        ("single transient", vec![flip(100)]),
        ("two isolated", vec![flip(100), flip(500)]),
        (
            "burst of 2 (adjacent ops)",
            vec![
                flip(100),
                ScriptedFault::transient_flip(101, bits::SIGN_BIT)
                    .on_replica(1)
                    .at_site(FaultSite::Accumulator),
            ],
        ),
        (
            "burst of 3",
            vec![
                flip(100),
                ScriptedFault::transient_flip(101, bits::SIGN_BIT)
                    .on_replica(1)
                    .at_site(FaultSite::Accumulator),
                flip(102),
            ],
        ),
        ("permanent", vec![flip(100).permanent()]),
    ]
}

fn main() {
    println!("== X3: leaky-bucket dynamics and availability ==");
    let mut rng = Rand::seeded(3);
    let input = rng.tensor(Shape::d3(2, 12, 12), Init::Uniform { lo: -1.0, hi: 1.0 });
    let weights = rng.tensor(Shape::d4(4, 2, 3, 3), Init::HeNormal { fan_in: 18 });
    let geom = ConvGeometry::new(12, 12, 3, 3, 1, 0).expect("geometry");

    let bucket_configs = [
        ("paper (f=2,c=3)", BucketConfig::new(2, 3)),
        ("lenient (f=1,c=4)", BucketConfig::new(1, 4)),
        ("strict (f=3,c=3)", BucketConfig::new(3, 3)),
        ("tolerant (f=1,c=16)", BucketConfig::new(1, 16)),
    ];
    let patterns = patterns();
    let cells = patterns.len() * bucket_configs.len();

    // One engine trial per grid cell; one shard per cell keeps the
    // schedule maximally parallel while the collected output stays in
    // grid order.
    let outcome = Engine::default().run(
        &RunPlan::new(cells as u64, 0).with_shards(cells),
        &FnTrial::new(|ctx: &mut TrialCtx| {
            let cell = ctx.index as usize;
            let (_, faults) = &patterns[cell / bucket_configs.len()];
            let (_, bucket) = bucket_configs[cell % bucket_configs.len()];
            let config = ReliableConvConfig {
                bucket,
                retry: RetryPolicy::paper(),
                pe_count: 8,
            };
            let mut alu = DmrAlu::new(ScriptedInjector::new(faults.clone()));
            let result = reliable_conv2d(&input, &weights, None, &geom, &mut alu, &config);
            match &result {
                Ok(out) => (true, out.stats.retries, out.stats.recovered),
                Err(_) => (false, 0, 0),
            }
        }),
        CollectSink::new(),
    );

    println!(
        "\n{:<28}{:<22}{:>10}{:>10}{:>10}",
        "fault pattern", "bucket", "completed", "retries", "recovered"
    );
    let mut rows = Vec::new();
    for (cell, (completed, retries, recovered)) in outcome.summary.into_iter().enumerate() {
        let (pattern_name, _) = &patterns[cell / bucket_configs.len()];
        let (bucket_name, _) = bucket_configs[cell % bucket_configs.len()];
        println!(
            "{:<28}{:<22}{:>10}{:>10}{:>10}",
            pattern_name,
            bucket_name,
            if completed { "yes" } else { "ABORT" },
            retries,
            recovered
        );
        rows.push(format!(
            "{pattern_name},{bucket_name},{completed},{retries},{recovered}"
        ));
    }
    println!(
        "\nexpectations (paper bucket f=2,c=3):\n\
         * single transients and isolated pairs recovered by one-op rollback;\n\
         * adjacent bursts and permanent faults reported as persistent;\n\
         * tolerant buckets trade detection latency for availability.\n\
         grid of {cells} cells in {:?} ({:.0} cells/s across {} workers)",
        outcome.stats.wall, outcome.stats.throughput, outcome.stats.workers
    );
    let path = write_csv(
        "bucket_dynamics.csv",
        "pattern,bucket,completed,retries,recovered",
        &rows,
    );
    println!("wrote {}", path.display());
}
