//! CI bench-regression gate.
//!
//! Compares the freshly generated `results/runtime_scaling.json` and
//! `results/skewed_steal.json` (run `cargo bench -p relcnn-bench --bench
//! runtime_scaling --bench skewed_steal` first) against the committed
//! baselines in `results/baseline/`, and fails (exit 1) when:
//!
//! * latency-bound campaign throughput regresses more than the tolerance
//!   (default 10%, `RELCNN_GATE_TOLERANCE` overrides, e.g. `0.15`) at any
//!   worker count — this series is sleep-dominated, so its absolute
//!   trials/s are comparable across machines;
//! * the cpu-bound *scaling shape* (each worker count's throughput
//!   normalised to the same run's 1-worker throughput) falls more than
//!   the tolerance below the baseline's shape — absolute cpu-bound
//!   trials/s are raw hardware speed and would false-alarm on any runner
//!   slower than the baseline machine, so only the ratios are gated;
//! * the cpu-bound 8x/1x speedup drops below a *parallelism-aware* floor:
//!   `0.375 × cores` capped at 3x, so the full 3x contract binds only on
//!   ≥ 8-core hosts — CPU-bound scaling is physically bounded by the
//!   core count, and a fixed 3x demand would make the gate unsatisfiable
//!   on the 1-core containers this repo is developed in (where the
//!   honest ceiling is ~1x) and flaky on small SMT-limited CI runners;
//! * the latency-bound 8x/1x speedup drops below the hard 3x floor the
//!   ROADMAP pins;
//! * the skewed-workload steal speedup drops below 2x, or more than the
//!   tolerance below its baseline;
//! * the skewed steal schedule stops stealing entirely;
//! * the serving replay's deterministic metrics (from
//!   `results/serving_latency.json`, run `cargo run --release -p
//!   relcnn-bench --bin serve_bench` first) regress against
//!   `results/baseline/serving_latency.json`: virtual p99 latency more
//!   than the tolerance above baseline, shed rate more than the
//!   tolerance (relative, plus one percentage point of slack) above
//!   baseline, goodput rate more than the tolerance below baseline, or
//!   the conservation identity `offered == completed + shed + expired`
//!   broken — **in aggregate and per priority class** (`critical` /
//!   `interactive` / `bulk` each carry their own baseline slice, so a
//!   regression in one lane can't hide inside a healthy total). These
//!   metrics are virtual-clock deterministic — identical on every
//!   machine for an unchanged policy — so a deviation is a
//!   *behavioural* change to admission/batching/expiry/AIMD control,
//!   not noise, and an intended one must ship a refreshed baseline.
//!
//! The per-image inference-latency artefact
//! (`results/inference_latency.json`, run `cargo run --release -p
//! relcnn-bench --bin inference_bench` first) is gated two ways: the
//! zero-allocation scratch path's p99 speedup over the allocating
//! pre-optimisation kernels must clear a hard 1.5x floor (the kernels
//! are bit-identical, so the ratio is pure efficiency and largely
//! machine-independent — both legs run interleaved on the same host),
//! and the scratch p99 must not regress more than the tolerance above
//! its committed baseline. The arena must also report zero grow events
//! after warmup.
//!
//! The scheduler's frontier counters (`frontier_parks`,
//! `frontier_stall_us`, `max_reorder_depth`) are carried through the
//! scaling entries and **printed as informational fields** — the
//! scaling benches run with an unbounded reorder budget, so the numbers
//! describe observed reorder pressure, not a gated contract.
//!
//! The cluster smoke's loss/requeue counters (`results/cluster_smoke.json`,
//! run `cargo run --release -p relcnn-bench --bin cluster_smoke` first)
//! are printed in the same counters-line shape and held to hard
//! robustness invariants — every seeded chaos leg must have finished
//! degraded with a lost worker and a requeued task. A missing file is an
//! informational skip, not a failure, so the other gates stay usable on
//! their own.
//!
//! The flight-recorder smoke's event counters (`results/trace_smoke.json`,
//! run `cargo run --release -p relcnn-bench --bin trace_smoke` first) are
//! printed the same way — recorded/dropped events per subsystem are
//! informational — with one hard invariant: the chaos leg's merged
//! timeline must contain at least one `requeue` event. Also an
//! informational skip when missing.
//!
//! The gate reads artefacts rather than timing anything itself, so it is
//! cheap to re-run while iterating on a regression.

use serde::Deserialize;
use std::path::PathBuf;
use std::process::ExitCode;

/// Hard floor on the latency-bound 8-worker speedup (ROADMAP contract).
const MIN_LATENCY_SPEEDUP: f64 = 3.0;
/// Hard floor on the skewed-workload work-stealing speedup.
const MIN_STEAL_SPEEDUP: f64 = 2.0;
/// Hard floor on the zero-alloc inference path's p99 speedup over the
/// allocating pre-optimisation kernels (measured ~2.5x on the dev host;
/// the floor leaves headroom for noisier shared runners).
const MIN_INFERENCE_SPEEDUP: f64 = 1.5;
/// CPU-bound 8x/1x speedup contract on hosts with enough cores to show
/// it (the partial-aggregation result path's headline number).
const MIN_CPU_SPEEDUP: f64 = 3.0;
/// Extra absolute slack on the shed-rate check: one percentage point, so
/// a near-zero baseline shed rate doesn't turn a single shed request
/// into a relative-tolerance failure.
const SHED_RATE_SLACK: f64 = 0.01;

/// The cpu-bound scaling floor this host can honestly be held to:
/// `0.375 × cores`, capped at [`MIN_CPU_SPEEDUP`] — i.e. the full 3x
/// contract binds only at ≥ 8 cores, and below that the gate demands
/// 37.5% of the never-reached linear ideal (a 4-vCPU CI runner, which is
/// usually 2 physical cores plus SMT, must clear 1.5x; a 1-core host
/// caps at 0.375, i.e. "8 workers must not collapse under 1-worker
/// throughput"). Deliberately loose: the shape check against the
/// committed baseline is the tight regression guard; this floor is the
/// absolute sanity backstop, and it must never go red on unregressed
/// code just because the runner has fewer cores than the contract
/// assumes.
fn cpu_speedup_floor() -> f64 {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    MIN_CPU_SPEEDUP.min(0.375 * cores as f64)
}

#[derive(Debug, Deserialize)]
struct ScalingEntry {
    workers: u64,
    trials_per_s: f64,
    mean_trial_ns: u64,
    steals: u64,
    splits: u64,
    send_block_us: u64,
    frontier_parks: u64,
    frontier_stall_us: u64,
    max_reorder_depth: u64,
}

#[derive(Debug, Deserialize)]
struct Scaling {
    bench: String,
    worker_counts: Vec<u64>,
    cpu_bound: Vec<ScalingEntry>,
    latency_bound: Vec<ScalingEntry>,
    cpu_bound_speedup_8x_over_1x: f64,
    speedup_8x_over_1x: f64,
}

/// One priority class's slice of the serving artefact. Gated class by
/// class: per-class SLOs are only meaningful if a regression in one lane
/// can't hide inside a healthy aggregate.
#[derive(Debug, Deserialize)]
struct ClassEntry {
    offered: u64,
    completed: u64,
    shed: u64,
    expired: u64,
    late: u64,
    shed_rate: f64,
    goodput_rate: f64,
    p99_us: u64,
}

#[derive(Debug, Deserialize)]
struct ServingClasses {
    critical: ClassEntry,
    interactive: ClassEntry,
    bulk: ClassEntry,
}

#[derive(Debug, Deserialize)]
struct Serving {
    bench: String,
    offered: u64,
    completed: u64,
    shed: u64,
    expired: u64,
    late: u64,
    batches: u64,
    shed_rate: f64,
    goodput_rate: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    aimd_clamps: u64,
    min_admit_cap: u64,
    classes: ServingClasses,
    throughput_rps: f64,
}

#[derive(Debug, Deserialize)]
struct Skewed {
    bench: String,
    workers: u64,
    trials: u64,
    shards: u64,
    skew_factor: f64,
    block_wall_us: u64,
    steal_wall_us: u64,
    steal_speedup: f64,
    steals: u64,
    chunks_stolen: u64,
}

/// The per-image inference-latency artefact (`inference_latency.json`).
#[derive(Debug, Deserialize)]
struct Inference {
    bench: String,
    images: u64,
    rounds: u64,
    samples: u64,
    alloc_p50_us: f64,
    alloc_p99_us: f64,
    scratch_p50_us: f64,
    scratch_p99_us: f64,
    speedup_p50: f64,
    speedup_p99: f64,
    arena_grow_events: u64,
}

/// Regeneration hint for the scaling/steal artefacts.
const BENCH_HINT: &str = "cargo bench -p relcnn-bench --bench runtime_scaling --bench skewed_steal";
/// Regeneration hint for the serving artefact.
const SERVE_HINT: &str = "cargo run --release -p relcnn-bench --bin serve_bench";
/// Regeneration hint for the inference-latency artefact.
const INFER_HINT: &str = "cargo run --release -p relcnn-bench --bin inference_bench";

/// A fresh artefact paired with its committed baseline — the one shape
/// every check in this gate compares.
struct Baselined<T> {
    fresh: T,
    base: T,
}

/// Loads `results/<file>` and `results/baseline/<file>` together. Every
/// gated artefact goes through here, so a missing or unparseable file on
/// either side fails with the same regeneration hint.
fn load_pair<T: Deserialize>(file: &str, regen_hint: &str) -> Result<Baselined<T>, String> {
    let results = relcnn_bench::results_dir();
    let one = |path: PathBuf| -> Result<T, String> {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("{}: {e} (generate it with `{regen_hint}`)", path.display()))?;
        serde_json::from_str(&text).map_err(|e| format!("{}: parse error: {e}", path.display()))
    };
    Ok(Baselined {
        fresh: one(results.join(file))?,
        base: one(results.join("baseline").join(file))?,
    })
}

fn tolerance() -> f64 {
    std::env::var("RELCNN_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.10)
}

/// Named threshold: `metric` must not fall more than the tolerance below
/// its baseline (throughputs, speedups, goodput — anything where lower
/// is worse).
fn gate_not_below(failures: &mut Vec<String>, metric: &str, fresh: f64, baseline: f64, tol: f64) {
    if fresh < baseline * (1.0 - tol) {
        failures.push(format!(
            "{metric}: regressed {baseline:.3} -> {fresh:.3} (tolerance {:.0}%)",
            tol * 100.0
        ));
    }
}

/// Named threshold: `metric` must not rise more than the tolerance (plus
/// an absolute `slack`) above its baseline (latencies, shed rates —
/// anything where higher is worse).
fn gate_not_above(
    failures: &mut Vec<String>,
    metric: &str,
    fresh: f64,
    baseline: f64,
    tol: f64,
    slack: f64,
) {
    if fresh > baseline * (1.0 + tol) + slack {
        failures.push(format!(
            "{metric}: regressed {baseline:.3} -> {fresh:.3} (tolerance {:.0}%{})",
            tol * 100.0,
            if slack > 0.0 {
                format!(" + {slack} absolute slack")
            } else {
                String::new()
            }
        ));
    }
}

/// Named threshold: `metric` must clear an absolute floor regardless of
/// what the baseline says (the ROADMAP's hard contracts).
fn gate_floor(failures: &mut Vec<String>, metric: &str, value: f64, floor: f64) {
    if value < floor {
        failures.push(format!(
            "{metric}: {value:.2}x dropped below the {floor:.2}x floor"
        ));
    }
}

/// Pairs each baseline series entry with the fresh entry at the same
/// worker count, reporting missing counts as failures.
fn paired_by_workers<'a>(
    label: &str,
    fresh: &'a [ScalingEntry],
    base: &'a [ScalingEntry],
    failures: &mut Vec<String>,
) -> Vec<(&'a ScalingEntry, &'a ScalingEntry)> {
    let mut pairs = Vec::new();
    for b in base {
        match fresh.iter().find(|e| e.workers == b.workers) {
            Some(now) => pairs.push((now, b)),
            None => failures.push(format!(
                "{label}: baseline has workers={} but the fresh run does not",
                b.workers
            )),
        }
    }
    pairs
}

/// Informational print of one scaling entry's scheduler counters
/// (steals, splits, backpressure and the new frontier/reorder fields —
/// printed, not gated: the scaling benches run unbounded). Shares its
/// formatting with the serving conservation line via
/// [`relcnn_bench::counters_line`].
fn entry_detail(e: &ScalingEntry) -> String {
    relcnn_bench::counters_line(&[
        ("steals", e.steals),
        ("splits", e.splits),
        ("send_block_us", e.send_block_us),
        ("frontier_parks", e.frontier_parks),
        ("frontier_stall_us", e.frontier_stall_us),
        ("max_reorder_depth", e.max_reorder_depth),
        ("mean_trial_ns", e.mean_trial_ns),
    ])
}

/// Checks a scaling series' *shape*: each worker count's throughput
/// normalised to the same run's 1-worker throughput, so the comparison is
/// independent of the host's raw speed. Used for the cpu-bound series,
/// whose absolute trials/s are pure hardware measurement.
fn check_series_shape(
    label: &str,
    fresh: &[ScalingEntry],
    base: &[ScalingEntry],
    tol: f64,
    failures: &mut Vec<String>,
) {
    let one_worker = |series: &[ScalingEntry]| {
        series
            .iter()
            .find(|e| e.workers == 1)
            .map(|e| e.trials_per_s)
            .filter(|&t| t > 0.0)
    };
    let (Some(fresh_1), Some(base_1)) = (one_worker(fresh), one_worker(base)) else {
        failures.push(format!("{label}: missing or zero 1-worker entry"));
        return;
    };
    for (now, base) in paired_by_workers(label, fresh, base, failures) {
        if now.workers == 1 {
            continue;
        }
        let base_ratio = base.trials_per_s / base_1;
        let now_ratio = now.trials_per_s / fresh_1;
        println!(
            "  {label:>13} workers={:<2} {:>8.3}x of 1-worker (baseline {:>8.3}x, {})",
            now.workers,
            now_ratio,
            base_ratio,
            entry_detail(now)
        );
        gate_not_below(
            failures,
            &format!("{label}: scaling shape at workers={}", now.workers),
            now_ratio,
            base_ratio,
            tol,
        );
    }
}

/// Checks one scaling series for per-worker-count absolute throughput
/// regressions (only meaningful for machine-independent, sleep-dominated
/// series).
fn check_series(
    label: &str,
    fresh: &[ScalingEntry],
    base: &[ScalingEntry],
    tol: f64,
    failures: &mut Vec<String>,
) {
    for (now, base) in paired_by_workers(label, fresh, base, failures) {
        let delta = (now.trials_per_s / base.trials_per_s - 1.0) * 100.0;
        println!(
            "  {label:>13} workers={:<2} {:>12.1} trials/s (baseline {:>12.1}, {delta:+.1}%, {})",
            now.workers,
            now.trials_per_s,
            base.trials_per_s,
            entry_detail(now)
        );
        gate_not_below(
            failures,
            &format!("{label}: throughput at workers={}", now.workers),
            now.trials_per_s,
            base.trials_per_s,
            tol,
        );
    }
}

fn check_scaling(pair: &Baselined<Scaling>, tol: f64, failures: &mut Vec<String>) {
    let (fresh, base) = (&pair.fresh, &pair.base);
    assert_eq!(fresh.bench, "runtime_scaling");
    println!(
        "runtime_scaling: worker counts {:?}, latency 8x/1x {:.2}x \
         (baseline {:.2}x), cpu 8x/1x {:.2}x",
        fresh.worker_counts,
        fresh.speedup_8x_over_1x,
        base.speedup_8x_over_1x,
        fresh.cpu_bound_speedup_8x_over_1x
    );
    check_series_shape(
        "cpu_bound",
        &fresh.cpu_bound,
        &base.cpu_bound,
        tol,
        failures,
    );
    check_series(
        "latency_bound",
        &fresh.latency_bound,
        &base.latency_bound,
        tol,
        failures,
    );
    gate_floor(
        failures,
        "runtime_scaling: latency-bound 8x/1x speedup",
        fresh.speedup_8x_over_1x,
        MIN_LATENCY_SPEEDUP,
    );
    let cpu_floor = cpu_speedup_floor();
    println!(
        "cpu-bound scaling floor on this host: {cpu_floor:.2}x ({} core(s) available)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    gate_floor(
        failures,
        "runtime_scaling: cpu-bound 8x/1x speedup (host parallelism-aware floor)",
        fresh.cpu_bound_speedup_8x_over_1x,
        cpu_floor,
    );
}

fn check_skewed(pair: &Baselined<Skewed>, tol: f64, failures: &mut Vec<String>) {
    let (fresh, base) = (&pair.fresh, &pair.base);
    assert_eq!(fresh.bench, "skewed_steal");
    println!(
        "skewed_steal: {} trials / {} shards / {} workers, skew {:.1}: \
         block {} us vs steal {} us => {:.2}x (baseline {:.2}x), \
         {} steals / {} chunks moved",
        fresh.trials,
        fresh.shards,
        fresh.workers,
        fresh.skew_factor,
        fresh.block_wall_us,
        fresh.steal_wall_us,
        fresh.steal_speedup,
        base.steal_speedup,
        fresh.steals,
        fresh.chunks_stolen
    );
    gate_floor(
        failures,
        "skewed_steal: steal speedup",
        fresh.steal_speedup,
        MIN_STEAL_SPEEDUP,
    );
    gate_not_below(
        failures,
        "skewed_steal: steal speedup vs baseline",
        fresh.steal_speedup,
        base.steal_speedup,
        tol,
    );
    if fresh.steals == 0 {
        failures.push("skewed_steal: no steals on the skewed schedule".into());
    }
}

/// Gates one priority class's slice against its own baseline: the
/// conservation identity, virtual p99, shed rate and goodput, with the
/// same tolerances as the aggregate.
fn check_serving_class(
    label: &str,
    fresh: &ClassEntry,
    base: &ClassEntry,
    tol: f64,
    failures: &mut Vec<String>,
) {
    println!(
        "  class {:<12} {}",
        label,
        relcnn_bench::counters_line(&[
            ("offered", fresh.offered),
            ("completed", fresh.completed),
            ("late", fresh.late),
            ("shed", fresh.shed),
            ("expired", fresh.expired),
            ("p99_us", fresh.p99_us),
        ])
    );
    if fresh.completed + fresh.shed + fresh.expired != fresh.offered {
        failures.push(format!(
            "serving_latency[{label}]: conservation broke: {} completed + {} shed + \
             {} expired != {} offered",
            fresh.completed, fresh.shed, fresh.expired, fresh.offered
        ));
    }
    gate_not_above(
        failures,
        &format!("serving_latency[{label}]: virtual p99 (deterministic)"),
        fresh.p99_us as f64,
        base.p99_us as f64,
        tol,
        0.0,
    );
    gate_not_above(
        failures,
        &format!("serving_latency[{label}]: shed rate"),
        fresh.shed_rate,
        base.shed_rate,
        tol,
        SHED_RATE_SLACK,
    );
    gate_not_below(
        failures,
        &format!("serving_latency[{label}]: goodput rate"),
        fresh.goodput_rate,
        base.goodput_rate,
        tol,
    );
}

fn check_serving(pair: &Baselined<Serving>, tol: f64, failures: &mut Vec<String>) {
    let (fresh, base) = (&pair.fresh, &pair.base);
    assert_eq!(fresh.bench, "serving_latency");
    println!(
        "serving_latency: {} offered -> {} completed ({} late) / {} shed / \
         {} expired in {} batches; virtual p50/p95/p99 {}/{}/{} us \
         (baseline p99 {} us), shed rate {:.1}% (baseline {:.1}%), \
         goodput {:.1}% (baseline {:.1}%), {} AIMD clamps (min cap {}), \
         wall throughput {:.0} req/s",
        fresh.offered,
        fresh.completed,
        fresh.late,
        fresh.shed,
        fresh.expired,
        fresh.batches,
        fresh.p50_us,
        fresh.p95_us,
        fresh.p99_us,
        base.p99_us,
        fresh.shed_rate * 100.0,
        base.shed_rate * 100.0,
        fresh.goodput_rate * 100.0,
        base.goodput_rate * 100.0,
        fresh.aimd_clamps,
        fresh.min_admit_cap,
        fresh.throughput_rps,
    );
    // The serve-side conservation counters, in the same shape as the
    // scheduler's frontier detail lines above.
    println!(
        "  conservation: {}",
        relcnn_bench::counters_line(&[
            ("offered", fresh.offered),
            ("completed", fresh.completed),
            ("late", fresh.late),
            ("shed", fresh.shed),
            ("expired", fresh.expired),
            ("batches", fresh.batches),
        ])
    );
    if fresh.completed + fresh.shed + fresh.expired != fresh.offered {
        failures.push(format!(
            "serving_latency: conservation broke: {} completed + {} shed + \
             {} expired != {} offered",
            fresh.completed, fresh.shed, fresh.expired, fresh.offered
        ));
    }
    // Deterministic virtual-clock metrics: a regression here is a
    // behavioural batching/admission change, never machine noise.
    gate_not_above(
        failures,
        "serving_latency: virtual p99 (deterministic — behavioural change)",
        fresh.p99_us as f64,
        base.p99_us as f64,
        tol,
        0.0,
    );
    gate_not_above(
        failures,
        "serving_latency: shed rate",
        fresh.shed_rate,
        base.shed_rate,
        tol,
        SHED_RATE_SLACK,
    );
    gate_not_below(
        failures,
        "serving_latency: goodput rate",
        fresh.goodput_rate,
        base.goodput_rate,
        tol,
    );
    // Per-class gates: each lane held to its own baseline slice.
    for (label, fresh_class, base_class) in [
        ("critical", &fresh.classes.critical, &base.classes.critical),
        (
            "interactive",
            &fresh.classes.interactive,
            &base.classes.interactive,
        ),
        ("bulk", &fresh.classes.bulk, &base.classes.bulk),
    ] {
        check_serving_class(label, fresh_class, base_class, tol, failures);
    }
}

/// Gates the per-image inference latency: the hard speedup floor (the
/// two legs are bit-identical kernels measured interleaved on the same
/// host, so their ratio is efficiency, not machine speed), a
/// baseline-relative ceiling on the scratch p99, and the
/// zero-allocation invariant (no arena growth after warmup).
fn check_inference(pair: &Baselined<Inference>, tol: f64, failures: &mut Vec<String>) {
    let (fresh, base) = (&pair.fresh, &pair.base);
    assert_eq!(fresh.bench, "inference_latency");
    println!(
        "inference_latency: {} samples/leg over {} images x {} rounds; \
         alloc p50/p99 {:.0}/{:.0} us, scratch p50/p99 {:.0}/{:.0} us \
         (baseline scratch p99 {:.0} us); speedup p50 {:.2}x, \
         p99 {:.2}x (baseline {:.2}x); {} arena grow events",
        fresh.samples,
        fresh.images,
        fresh.rounds,
        fresh.alloc_p50_us,
        fresh.alloc_p99_us,
        fresh.scratch_p50_us,
        fresh.scratch_p99_us,
        base.scratch_p99_us,
        fresh.speedup_p50,
        fresh.speedup_p99,
        base.speedup_p99,
        fresh.arena_grow_events,
    );
    gate_floor(
        failures,
        "inference_latency: scratch-over-alloc p99 speedup",
        fresh.speedup_p99,
        MIN_INFERENCE_SPEEDUP,
    );
    gate_not_above(
        failures,
        "inference_latency: scratch p99 vs baseline",
        fresh.scratch_p99_us,
        base.scratch_p99_us,
        tol,
        0.0,
    );
    if fresh.arena_grow_events > 8 {
        failures.push(format!(
            "inference_latency: {} arena grow events (warmup should settle \
             the arena in at most one growth per distinct layer buffer)",
            fresh.arena_grow_events
        ));
    }
}

/// The cluster smoke's counter summary (`results/cluster_smoke.json`).
#[derive(Deserialize)]
struct ClusterSmoke {
    topology_legs: u64,
    chaos_legs: u64,
    workers_spawned: u64,
    workers_lost: u64,
    tasks_requeued: u64,
    task_retries: u64,
    corrupt_frames: u64,
    task_timeouts: u64,
    local_fallbacks: u64,
    degraded_runs: u64,
}

/// Prints the cluster fabric's loss/requeue counters and holds the
/// robustness invariants. No baseline pair: the counters are
/// deterministic products of the seeded chaos plans, not measurements —
/// every chaos leg must have degraded, lost a worker and requeued its
/// task. Skipped (informationally) when the smoke has not run, so the
/// gate stays cheap to re-run while iterating on a scaling regression.
fn check_cluster(failures: &mut Vec<String>) {
    let path = relcnn_bench::results_dir().join("cluster_smoke.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(_) => {
            println!(
                "cluster: no {} — skipped (generate it with \
                 `cargo run --release -p relcnn-bench --bin cluster_smoke`)",
                path.display()
            );
            return;
        }
    };
    let c: ClusterSmoke = match serde_json::from_str(&text) {
        Ok(c) => c,
        Err(e) => {
            failures.push(format!("{}: parse error: {e}", path.display()));
            return;
        }
    };
    println!(
        "cluster: {} topology legs byte-identical, {} chaos legs degraded-but-identical",
        c.topology_legs, c.chaos_legs
    );
    println!(
        "  counters: {}",
        relcnn_bench::counters_line(&[
            ("workers_spawned", c.workers_spawned),
            ("workers_lost", c.workers_lost),
            ("tasks_requeued", c.tasks_requeued),
            ("task_retries", c.task_retries),
            ("corrupt_frames", c.corrupt_frames),
            ("task_timeouts", c.task_timeouts),
            ("local_fallbacks", c.local_fallbacks),
        ])
    );
    if c.degraded_runs != c.chaos_legs {
        failures.push(format!(
            "cluster: {} of {} chaos legs finished degraded (all must)",
            c.degraded_runs, c.chaos_legs
        ));
    }
    if c.workers_lost < c.chaos_legs || c.tasks_requeued < c.chaos_legs {
        failures.push(format!(
            "cluster: {} chaos legs but only {} workers lost / {} tasks requeued",
            c.chaos_legs, c.workers_lost, c.tasks_requeued
        ));
    }
}

/// The trace smoke's event summary (`results/trace_smoke.json`).
#[derive(Deserialize)]
struct TraceSmoke {
    campaign_events: u64,
    campaign_dropped: u64,
    serving_events: u64,
    serving_dropped: u64,
    cluster_events: u64,
    cluster_dropped: u64,
    cluster_pid_tracks: u64,
    kill_events: u64,
    requeue_events: u64,
    degraded_completion_events: u64,
    byte_identical_legs: u64,
}

/// Prints the flight recorder's per-subsystem recorded/dropped event
/// counters (informational — ring sizing varies with the workload) and
/// holds one hard invariant: the chaos leg's merged timeline must
/// contain at least one `requeue` event, or the recovery story the
/// recorder exists to tell has gone missing. Skipped (informationally)
/// when the smoke has not run.
fn check_trace(failures: &mut Vec<String>) {
    let path = relcnn_bench::results_dir().join("trace_smoke.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(_) => {
            println!(
                "trace: no {} — skipped (generate it with \
                 `cargo run --release -p relcnn-bench --bin trace_smoke`)",
                path.display()
            );
            return;
        }
    };
    let t: TraceSmoke = match serde_json::from_str(&text) {
        Ok(t) => t,
        Err(e) => {
            failures.push(format!("{}: parse error: {e}", path.display()));
            return;
        }
    };
    println!(
        "trace: {} legs byte-identical trace-on vs trace-off; chaos timeline \
         spans {} pid tracks",
        t.byte_identical_legs, t.cluster_pid_tracks
    );
    println!(
        "  events: {}",
        relcnn_bench::counters_line(&[
            ("campaign_recorded", t.campaign_events),
            ("campaign_dropped", t.campaign_dropped),
            ("serving_recorded", t.serving_events),
            ("serving_dropped", t.serving_dropped),
            ("cluster_recorded", t.cluster_events),
            ("cluster_dropped", t.cluster_dropped),
            ("kill_events", t.kill_events),
            ("requeue_events", t.requeue_events),
            ("degraded_completions", t.degraded_completion_events),
        ])
    );
    if t.requeue_events < 1 {
        failures.push(
            "trace: chaos timeline recorded no requeue events (the kill->requeue \
             recovery story is missing)"
                .into(),
        );
    }
}

fn main() -> ExitCode {
    let tol = tolerance();
    let mut failures: Vec<String> = Vec::new();

    println!("bench gate (tolerance {:.0}%)", tol * 100.0);

    match load_pair::<Scaling>("runtime_scaling.json", BENCH_HINT) {
        Ok(pair) => check_scaling(&pair, tol, &mut failures),
        Err(e) => failures.push(e),
    }
    match load_pair::<Skewed>("skewed_steal.json", BENCH_HINT) {
        Ok(pair) => check_skewed(&pair, tol, &mut failures),
        Err(e) => failures.push(e),
    }
    match load_pair::<Serving>("serving_latency.json", SERVE_HINT) {
        Ok(pair) => check_serving(&pair, tol, &mut failures),
        Err(e) => failures.push(e),
    }
    match load_pair::<Inference>("inference_latency.json", INFER_HINT) {
        Ok(pair) => check_inference(&pair, tol, &mut failures),
        Err(e) => failures.push(e),
    }
    check_cluster(&mut failures);
    check_trace(&mut failures);

    if failures.is_empty() {
        println!("bench gate: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("bench gate: {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
