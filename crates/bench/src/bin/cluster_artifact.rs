//! Emits the multi-process determinism artefact.
//!
//! Runs the canonical campaign (`relcnn_bench::workload`) over the
//! cluster fabric — head process, N forked workers, shard-range tasks on
//! checksummed pipes — and writes the stitched JSONL stream plus the
//! merged `{"partial_aggregate":...}` footer. The output is required
//! byte-identical to `determinism_artifact --no-abort` at the same
//! profile and to every other `--procs/--threads` topology, including
//! `--procs 0` (head computes everything in-process, no forks): the
//! process count joins the worker count, chunk size and steal schedule
//! on the list of things the artefact must not depend on.
//!
//! ```text
//! cluster_artifact --procs 4 --threads 2 --out /tmp/p4t2.jsonl
//! cluster_artifact --procs 1 --threads 8 --profile cpu --out /tmp/p1t8c.jsonl
//! cluster_artifact --procs 3 --threads 2 --chaos kill --out /tmp/chaos.jsonl
//! ```
//!
//! `--chaos kill|corrupt|hang` injects the named deterministic fault
//! (victim derived from the campaign seed); the run must then finish
//! *degraded* — nonzero loss/requeue counters in the stats line — with
//! the same bytes.

use relcnn_bench::workload::{cluster_job, cluster_task, merge_cluster_outputs, Profile, SHARDS};
use relcnn_cluster::ClusterHooks;
use relcnn_cluster::{run_cluster_hooked, run_worker_if_spawned, ChaosPlan, ClusterConfig};
use relcnn_obs::trace::{export_chrome, validate, TraceRecorder};

fn usage() -> ! {
    eprintln!(
        "usage: cluster_artifact --procs N --out PATH [--threads T] [--profile latency|cpu] \
         [--task-shards W] [--chaos none|kill|corrupt|hang] [--task-timeout-ms MS] \
         [--trace PATH]\n\
         Writes the stitched JSONL artefact of the canonical campaign run over the\n\
         multi-process cluster fabric. --procs 0 computes every task in the head\n\
         process (the no-fork reference topology). --trace flight-records the head\n\
         and every worker and writes the merged Chrome-trace timeline to PATH;\n\
         the artefact stays byte-identical either way."
    );
    std::process::exit(2)
}

fn main() {
    // Must run before argument parsing: a forked worker re-enters this
    // same binary and must never fall through into head code.
    run_worker_if_spawned(cluster_task);

    let mut procs = 1usize;
    let mut threads = 2usize;
    let mut task_shards = 2usize;
    let mut task_timeout_ms: Option<u64> = None;
    let mut profile = Profile::Latency;
    let mut chaos_name = String::from("none");
    let mut out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--procs" => {
                procs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--task-shards" => {
                task_shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--task-timeout-ms" => {
                task_timeout_ms = args.next().and_then(|v| v.parse().ok());
                if task_timeout_ms.is_none() {
                    usage()
                }
            }
            "--profile" => {
                profile = args
                    .next()
                    .as_deref()
                    .and_then(Profile::parse)
                    .unwrap_or_else(|| usage())
            }
            "--chaos" => chaos_name = args.next().unwrap_or_else(|| usage()),
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace_out = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let Some(out) = out else { usage() };

    let job = cluster_job(profile, threads);
    let chaos = match chaos_name.as_str() {
        "none" => ChaosPlan::none(),
        "kill" => ChaosPlan::kill_one(job.seed, procs),
        "corrupt" => ChaosPlan::corrupt_one(job.seed, procs),
        "hang" => ChaosPlan::hang_one(job.seed, procs),
        _ => usage(),
    };
    if !chaos.is_none() && procs == 0 {
        eprintln!("--chaos needs worker processes to injure (--procs >= 1)");
        std::process::exit(2);
    }

    let mut config = ClusterConfig::new(procs)
        .with_task_shards(task_shards)
        .with_chaos(chaos);
    if let Some(ms) = task_timeout_ms {
        config = config.with_task_timeout_ms(ms);
    }

    let recorder = if trace_out.is_some() {
        TraceRecorder::new("cluster-head")
    } else {
        TraceRecorder::off()
    };
    let mut hooks = ClusterHooks::none();
    if trace_out.is_some() {
        hooks = hooks.with_trace(&recorder);
    }

    let outcome = run_cluster_hooked(&config, &job, cluster_task, &hooks)
        .unwrap_or_else(|e| panic!("cluster run failed: {e}"));
    let (merged, payload) = merge_cluster_outputs(&outcome.outputs);

    let report = serde_json::to_string(&merged)
        .unwrap_or_else(|e| panic!("serialize merged aggregate: {e}"));
    let artefact = format!("{payload}{{\"partial_aggregate\":{report}}}\n");
    std::fs::write(&out, artefact).unwrap_or_else(|e| panic!("write {out}: {e}"));

    if let Some(trace_path) = trace_out {
        // Merged multi-process timeline: head drain first (pid 1), then
        // every worker snapshot that made it home, in worker order.
        let mut snapshots = vec![recorder.drain()];
        snapshots.extend(outcome.traces.iter().cloned());
        let chrome = export_chrome(&snapshots);
        let parsed =
            validate(&chrome).unwrap_or_else(|e| panic!("exported trace failed validation: {e}"));
        std::fs::write(&trace_path, &chrome).unwrap_or_else(|e| panic!("write {trace_path}: {e}"));
        eprintln!(
            "{trace_path}: {} events across {} pid tracks ({} recorded, {} dropped)",
            parsed.event_count(),
            parsed.pids().len(),
            snapshots.iter().map(|s| s.recorded_events()).sum::<u64>(),
            snapshots.iter().map(|s| s.dropped_events()).sum::<u64>(),
        );
    }

    let s = &outcome.stats;
    eprintln!(
        "{out}: profile={} procs={procs} threads={threads} task_shards={task_shards}/{SHARDS} \
         chaos={chaos_name} degraded={} stats={}",
        profile.name(),
        s.degraded,
        s.to_json(),
    );
    if !chaos.is_none() {
        assert!(
            s.degraded && s.workers_lost > 0 && s.tasks_requeued > 0,
            "chaos run must finish degraded with loss/requeue counters: {}",
            s.to_json()
        );
    }
}
