//! Wall-clock serving smoke: the CI leg that proves the real-time
//! front-end is production-shaped *and* oracle-checked.
//!
//! Two halves, one fixed three-class trace:
//!
//! 1. **Wall run** — the `Server` builder with a [`WallClock`] under a
//!    hard budget replays the trace in real time (producer thread paces
//!    arrivals on `Instant`, batcher waits out adaptive windows, AIMD
//!    controller clamps admission live). Wall timing is physics, so the
//!    checks are the invariants physics can't excuse: per-class and
//!    aggregate conservation, the critical reservation surviving every
//!    clamp, and **controller purity** — the decision log recorded
//!    against wall observations must replay bit-identically through a
//!    fresh [`OverloadController`].
//! 2. **Virtual oracle** — the same trace and config on the virtual
//!    clock at engine workers {1, 2, 8}: reports, outcomes and control
//!    logs must be byte-identical across worker counts, and the wall
//!    run's per-class offered populations must match the oracle's (the
//!    trace structure is clock-independent).
//!
//! Exits non-zero (panics) on any violation. `--quick` shrinks the
//! trace. The wall budget (60 s by default, `RELCNN_WALL_BUDGET_US`
//! microseconds when set) bounds CI wall time: a hung front-end trips
//! the budget panic instead of timing out the job.

use relcnn_faults::SkewedCost;
use relcnn_runtime::Engine;
use relcnn_serve::{
    BatchPolicy, CnnBackend, ControllerConfig, LoadGen, LoadGenConfig, OverloadController,
    RequestClass, Server, ServerConfig, ServiceModel, WallClock,
};

const SEED: u64 = 0x3A11;

fn server_config() -> ServerConfig {
    ServerConfig::new(
        16,
        BatchPolicy::new(6, 1_500).with_critical_delay(300),
        ServiceModel {
            batch_overhead_us: 150,
            // Heavy-tail service against a ~300 µs arrival gap: the wall
            // run genuinely overloads, so shedding, AIMD clamps and
            // early-closed windows all appear.
            cost: SkewedCost::periodic(250, 2_500, 11),
        },
    )
    .with_critical_reserve(3)
    .with_control(ControllerConfig::default())
}

fn trace(requests: u64) -> Vec<relcnn_serve::Request> {
    LoadGen::new(
        LoadGenConfig::burst(requests, SEED, 20, 16, 6_000, 18_000)
            .with_class_mix([1, 2, 2])
            .with_class_deadlines([3_000, 0, 45_000]),
    )
    .generate()
}

fn main() {
    let requests = if relcnn_bench::quick_mode() { 120 } else { 360 };
    let trace = trace(requests);
    let config = server_config();
    let backend = CnnBackend::tiny(0xC1A55).unwrap_or_else(|e| panic!("backend: {e}"));

    // --- 1. wall run under a hard budget ----------------------------
    let wall = Server::new(config)
        .backend(&backend)
        .clock(WallClock::with_budget(relcnn_bench::wall_budget_us()))
        .run(&trace);
    let report = &wall.report;
    println!(
        "wall run: {} offered -> {} completed ({} late), {} shed, {} expired, \
         {} batches, {} clamps (min cap {}), {} early closes, makespan {:.1} ms",
        report.offered,
        report.completed,
        report.late,
        report.shed,
        report.expired(),
        report.batches,
        report.aimd_clamps,
        report.min_admit_cap,
        report.early_closes,
        report.makespan_us as f64 / 1e3,
    );
    assert!(report.conserved(), "wall conservation broke: {report:?}");
    assert_eq!(report.offered, requests);
    for class in RequestClass::ALL {
        let c = report.class(class);
        assert_eq!(
            c.offered,
            c.completed + c.shed + c.expired,
            "wall class {} leaked: {c:?}",
            class.label()
        );
        println!(
            "  class {:<12} offered {:>4} completed {:>4} shed {:>4} expired {:>3} late {:>3}",
            class.label(),
            c.offered,
            c.completed,
            c.shed,
            c.expired,
            c.late,
        );
    }
    // The AIMD floor: however hard physics pushed, the cap never dropped
    // below the critical reservation.
    assert!(
        report.min_admit_cap >= config.critical_reserve as u64,
        "cap {} fell below the reservation {}",
        report.min_admit_cap,
        config.critical_reserve
    );
    // Controller purity: wall-observed decisions replay bit-identically.
    let replayed = OverloadController::replay(
        ControllerConfig::default(),
        config.queue_capacity,
        config.critical_reserve,
        &wall.control,
    );
    assert_eq!(
        replayed, wall.control,
        "wall controller decisions are not a pure function of observations"
    );
    assert_eq!(wall.control.len() as u64, report.batches);
    println!(
        "wall controller: {} decisions replayed bit-identically",
        wall.control.len()
    );

    // --- 2. virtual oracle across worker counts ---------------------
    let engine = Engine::with_workers(1);
    let reference = Server::new(config)
        .backend(&backend)
        .engine(&engine)
        .run(&trace);
    assert!(reference.report.conserved());
    assert!(
        reference.report.shed > 0,
        "the oracle trace should overload: {:?}",
        reference.report
    );
    for workers in [2, 8] {
        let engine = Engine::with_workers(workers);
        let run = Server::new(config)
            .backend(&backend)
            .engine(&engine)
            .run(&trace);
        assert_eq!(
            run.report.to_json(),
            reference.report.to_json(),
            "virtual replay diverged at workers={workers}"
        );
        assert_eq!(run.outcomes, reference.outcomes, "workers={workers}");
        assert_eq!(run.control, reference.control, "workers={workers}");
    }
    println!(
        "virtual oracle: byte-identical at workers {{1, 2, 8}} \
         ({} completed, {} shed, {} control decisions)",
        reference.report.completed,
        reference.report.shed,
        reference.control.len()
    );
    // The trace structure is clock-independent: wall and virtual agree
    // exactly on how many requests of each class were offered.
    for class in RequestClass::ALL {
        assert_eq!(
            report.class(class).offered,
            reference.report.class(class).offered,
            "class {} population differs between clocks",
            class.label()
        );
    }
    println!("wall_smoke: OK — conservation, purity and oracle identity all hold");
}
