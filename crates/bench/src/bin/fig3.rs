//! **Figure 3** — "The time-series generated from a real-world (GTSRB),
//! slightly angled stop sign. The eight corners can be clearly identified.
//! The SAX word is visible above the time-series plot."
//!
//! The real GTSRB photo is substituted by the synthetic renderer's stop
//! sign at the same slight tilt; the artefact is the same: the radial
//! time series, an ASCII rendering of the plot, and the SAX word.

use relcnn_bench::{ascii_plot, write_csv};
use relcnn_core::experiments::fig3_series;
use relcnn_sax::SaxConfig;

fn main() {
    let tilt = 0.12f32; // the "slightly angled" pose
    let out = fig3_series(227, tilt, 256, SaxConfig::default(), 7).expect("fig3 series generation");

    println!("== Figure 3: radial time series of a slightly angled stop sign ==");
    println!("tilt: {tilt} rad, 256 ray angles, SAX 16 segments / 8 letters\n");
    println!("SAX word: {}", out.word);
    println!("{}", ascii_plot(&out.series, 96, 14));
    println!(
        "radial max/min ratio: {:.3} (analytic octagon: {:.3})",
        out.radial_ratio,
        1.0 / (std::f32::consts::PI / 8.0).cos()
    );
    println!(
        "detected corners: {} (paper: 'the eight corners can be clearly identified')",
        out.corners
    );

    let rows: Vec<String> = out
        .series
        .iter()
        .enumerate()
        .map(|(i, v)| format!("{i},{v}"))
        .collect();
    let path = write_csv("fig3_series.csv", "angle_index,radius_px", &rows);
    println!("wrote {}", path.display());

    assert!(
        (6..=10).contains(&out.corners),
        "octagon corners not identifiable: got {}",
        out.corners
    );
}
