//! Cluster smoke: the CI leg that proves multi-process campaigns are
//! topology-invariant *and* fault-tolerant without losing a byte.
//!
//! Three stages, one canonical campaign (`relcnn_bench::workload`), all
//! under a hard wall budget (`RELCNN_WALL_BUDGET_US` microseconds, 60 s
//! default — a hung fabric trips the watchdog instead of timing out the
//! CI job):
//!
//! 1. **Topology matrix** — for both workload profiles, the stitched
//!    artefact of 1 proc × 8 threads, 2 × 4 and 4 × 2 must byte-match
//!    the no-fork reference (`procs = 0`, head computes every task
//!    in-process), with zero losses.
//! 2. **Chaos legs** — seeded kill / corrupt-frame / hang plans against
//!    a 3-worker cluster: each run must finish **degraded** (worker
//!    lost, task requeued, the mode-specific detector fired) with the
//!    *same bytes* as the clean reference.
//! 3. **Results** — per-leg stats land in `results/cluster_smoke.json`
//!    for `bench_gate`'s cluster counters line.
//!
//! Exits non-zero (panics or watchdog exit 3) on any violation.
//! `--quick` drops the cpu-profile topology legs.

use relcnn_bench::workload::{cluster_job, cluster_task, merge_cluster_outputs, Profile};
use relcnn_cluster::{run_cluster, run_worker_if_spawned, ChaosPlan, ClusterConfig, ClusterStats};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-task deadline for the hang leg: long enough for a genuine
/// 2-shard latency task (tens of milliseconds of sleeps), short enough
/// that the smoke stays fast when the deterministic hang fires.
const HANG_TASK_TIMEOUT_MS: u64 = 2_000;

/// Runs one cluster leg and returns the artefact bytes plus stats.
fn leg(
    profile: Profile,
    procs: usize,
    threads: usize,
    config: ClusterConfig,
) -> (String, ClusterStats) {
    let job = cluster_job(profile, threads);
    let outcome = run_cluster(&config, &job, cluster_task)
        .unwrap_or_else(|e| panic!("cluster run ({} p{procs} t{threads}): {e}", profile.name()));
    let (merged, payload) = merge_cluster_outputs(&outcome.outputs);
    let report = serde_json::to_string(&merged).expect("serialize merged aggregate");
    (
        format!("{payload}{{\"partial_aggregate\":{report}}}\n"),
        outcome.stats,
    )
}

/// Points at the first differing line of two artefacts (assert_eq! on
/// multi-thousand-line strings is unreadable in CI logs).
fn assert_same_bytes(what: &str, got: &str, reference: &str) {
    if got == reference {
        return;
    }
    let line = got
        .lines()
        .zip(reference.lines())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| got.lines().count().min(reference.lines().count()));
    panic!(
        "{what}: artefact diverged from the reference at line {line} \
         ({} vs {} bytes)",
        got.len(),
        reference.len()
    );
}

fn main() {
    // Must run before anything else: a forked worker re-enters this
    // binary and must never fall through into head code.
    run_worker_if_spawned(cluster_task);

    let budget = relcnn_bench::wall_budget_us();
    let done = Arc::new(AtomicBool::new(false));
    {
        // Watchdog: requeue/backoff bugs tend to present as hangs, and a
        // hung smoke must fail the leg, not stall the CI job.
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(budget));
            if !done.load(Ordering::SeqCst) {
                eprintln!("cluster_smoke: exceeded the {budget} us wall budget");
                std::process::exit(3);
            }
        });
    }

    let profiles: &[Profile] = if relcnn_bench::quick_mode() {
        &[Profile::Latency]
    } else {
        &[Profile::Latency, Profile::Cpu]
    };

    // --- 1. topology matrix ----------------------------------------
    let mut latency_reference = String::new();
    let mut spawned = 0u64;
    for &profile in profiles {
        let (reference, ref_stats) = leg(profile, 0, 8, ClusterConfig::new(0).with_task_shards(2));
        assert!(
            !ref_stats.degraded && ref_stats.workers_lost == 0,
            "no-fork reference cannot degrade: {}",
            ref_stats.to_json()
        );
        for (procs, threads) in [(1usize, 8usize), (2, 4), (4, 2)] {
            let config = ClusterConfig::new(procs).with_task_shards(2);
            let (artefact, stats) = leg(profile, procs, threads, config);
            assert_same_bytes(
                &format!("{} {procs}x{threads}", profile.name()),
                &artefact,
                &reference,
            );
            assert!(
                !stats.degraded && stats.workers_lost == 0 && stats.tasks_requeued == 0,
                "clean topology run degraded: {}",
                stats.to_json()
            );
            spawned += stats.workers_spawned;
            println!(
                "topology {} {procs} procs x {threads} threads: byte-identical \
                 ({} tasks, {} frames in)",
                profile.name(),
                stats.tasks_completed,
                stats.frames_received
            );
        }
        if profile == Profile::Latency {
            latency_reference = reference;
        }
    }

    // --- 2. chaos legs against the latency reference ---------------
    let seed = cluster_job(Profile::Latency, 2).seed;
    let chaos_legs: [(&str, ChaosPlan, ClusterConfig); 3] = [
        (
            "kill",
            ChaosPlan::kill_one(seed, 3),
            ClusterConfig::new(3).with_task_shards(2),
        ),
        (
            "corrupt",
            ChaosPlan::corrupt_one(seed, 3),
            ClusterConfig::new(3).with_task_shards(2),
        ),
        (
            "hang",
            ChaosPlan::hang_one(seed, 3),
            ClusterConfig::new(3)
                .with_task_shards(2)
                .with_task_timeout_ms(HANG_TASK_TIMEOUT_MS),
        ),
    ];
    let mut chaos_stats: Vec<(String, ClusterStats)> = Vec::new();
    for (name, chaos, config) in chaos_legs {
        let (artefact, stats) = leg(Profile::Latency, 3, 2, config.with_chaos(chaos));
        assert_same_bytes(&format!("chaos {name}"), &artefact, &latency_reference);
        assert!(
            stats.degraded && stats.workers_lost >= 1 && stats.tasks_requeued >= 1,
            "chaos {name} must degrade and requeue: {}",
            stats.to_json()
        );
        let detector_fired = match name {
            "corrupt" => stats.corrupt_frames >= 1,
            "hang" => stats.task_timeouts >= 1,
            _ => true, // kill is detected as pipe EOF; no dedicated counter
        };
        assert!(
            detector_fired,
            "chaos {name}: expected detector did not fire: {}",
            stats.to_json()
        );
        spawned += stats.workers_spawned;
        println!(
            "chaos {name}: degraded completion, byte-identical aggregate \
             (lost {}, requeued {}, retries {}, local fallbacks {})",
            stats.workers_lost, stats.tasks_requeued, stats.task_retries, stats.local_fallbacks
        );
        chaos_stats.push((name.to_string(), stats));
    }

    // --- 3. results for the gate ------------------------------------
    let totals =
        |f: &dyn Fn(&ClusterStats) -> u64| -> u64 { chaos_stats.iter().map(|(_, s)| f(s)).sum() };
    let json = format!(
        "{{\"topology_legs\":{},\"chaos_legs\":{},\"workers_spawned\":{},\"workers_lost\":{},\
         \"tasks_requeued\":{},\"task_retries\":{},\"corrupt_frames\":{},\"task_timeouts\":{},\
         \"local_fallbacks\":{},\"degraded_runs\":{}}}",
        profiles.len() * 3,
        chaos_stats.len(),
        spawned,
        totals(&|s| s.workers_lost),
        totals(&|s| s.tasks_requeued),
        totals(&|s| s.task_retries),
        totals(&|s| s.corrupt_frames),
        totals(&|s| s.task_timeouts),
        totals(&|s| s.local_fallbacks),
        chaos_stats.iter().filter(|(_, s)| s.degraded).count(),
    );
    let path = relcnn_bench::results_dir().join("cluster_smoke.json");
    std::fs::write(&path, format!("{json}\n"))
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));

    done.store(true, Ordering::SeqCst);
    println!(
        "cluster_smoke: OK — topology identity and degraded-mode identity hold \
         ({} -> gate)",
        path.display()
    );
}
