//! Flight-recorder smoke: the CI leg that proves tracing is *loadable*
//! and *off the deterministic path* in every instrumented subsystem.
//!
//! Three legs, each run twice — flight recorder off (reference) and on —
//! with the deterministic artefact required byte-identical both ways,
//! and every exported Chrome-trace JSON revalidated with the in-tree
//! validator before it lands in `results/`:
//!
//! 1. **Campaign** — the canonical skewed fault-injection campaign on a
//!    traced engine; the JSONL result stream must not move a byte, and
//!    the timeline must narrate chunks, releases and shard completions.
//! 2. **Serving replay** — the virtual-clock serving artefact trace on a
//!    traced server + traced engine; outcomes, report and controller
//!    decision log must not move a byte.
//! 3. **Chaos cluster** — a 3-worker cluster run with a seeded
//!    deterministic kill; the stitched aggregate must byte-match the
//!    trace-off run, and the merged multi-process timeline must show the
//!    whole recovery story: ≥ 3 pid tracks with `kill`, `requeue` and
//!    `degraded_completion` events.
//!
//! Per-leg event counts land in `results/trace_smoke.json` for
//! `bench_gate`'s trace counters line (which hard-asserts the requeue
//! events survived). Exits non-zero on any violation.

use relcnn_bench::workload::{
    cluster_job, cluster_task, merge_cluster_outputs, Profile, BASE_SEED, SHARDS, TRIALS,
};
use relcnn_cluster::{
    run_cluster_hooked, run_worker_if_spawned, ChaosPlan, ClusterConfig, ClusterHooks,
};
use relcnn_faults::SkewedCost;
use relcnn_obs::trace::{export_chrome, validate, ParsedTrace, TraceRecorder, TraceSnapshot};
use relcnn_runtime::{
    run_campaign_sink_on, CampaignConfig, CampaignSink, EarlyStop, Engine, JsonlSink,
};
use relcnn_serve::{
    BatchPolicy, CnnBackend, ControllerConfig, LoadGen, LoadGenConfig, Server, ServerConfig,
    ServiceModel,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Validates an exported timeline, writes it under `results/`, and
/// returns the parsed view for event assertions.
fn export_and_validate(name: &str, snapshots: &[TraceSnapshot]) -> ParsedTrace {
    let chrome = export_chrome(snapshots);
    let parsed =
        validate(&chrome).unwrap_or_else(|e| panic!("{name}: exported trace invalid: {e}"));
    let path = relcnn_bench::results_dir().join(name);
    std::fs::write(&path, &chrome).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!(
        "{}: {} events, {} pid tracks, validator clean",
        path.display(),
        parsed.event_count(),
        parsed.pids().len()
    );
    parsed
}

fn assert_identical(leg: &str, traced: &str, reference: &str) {
    assert!(
        traced == reference,
        "{leg}: trace-on artefact diverged from trace-off ({} vs {} bytes)",
        traced.len(),
        reference.len()
    );
}

/// Campaign leg: the determinism artefact's byte surface on a traced
/// engine. Returns the artefact string.
fn campaign_artifact(recorder: &TraceRecorder) -> String {
    let profile = Profile::Latency;
    let config = CampaignConfig::new(TRIALS, BASE_SEED)
        .with_threads(4)
        .with_shards(SHARDS)
        .with_chunk(2);
    let engine = Engine::with_workers(4).traced(recorder);
    let mut buf = Vec::new();
    let sink =
        JsonlSink::new(&mut buf, CampaignSink::new(EarlyStop::on_escalations(48))).without_footer();
    run_campaign_sink_on(&engine, &config, sink, move |seed| {
        profile.run(profile.item(seed - BASE_SEED), seed)
    });
    String::from_utf8(buf).expect("JSONL artefact is UTF-8")
}

/// Serving leg: the virtual-clock replay's byte surface on a traced
/// server and engine.
fn serving_artifact(recorder: &TraceRecorder) -> String {
    let config = ServerConfig::new(
        16,
        BatchPolicy::new(6, 2_000).with_critical_delay(500),
        ServiceModel {
            batch_overhead_us: 150,
            cost: SkewedCost::periodic(180, 3_000, 13),
        },
    )
    .with_critical_reserve(3)
    .with_control(ControllerConfig::default());
    let load = LoadGenConfig::poisson(240, 201, 300, 5_500)
        .with_deadline_jitter(4_800)
        .with_class_mix([1, 3, 2])
        .with_class_deadlines([2_500, 0, 30_000]);
    let trace = LoadGen::new(load).generate();
    let backend = CnnBackend::tiny(0xC1A55).unwrap_or_else(|e| panic!("backend: {e}"));
    let engine = Engine::with_workers(2).traced(recorder);
    let run = Server::new(config)
        .backend(&backend)
        .engine(&engine)
        .traced(recorder)
        .run(&trace);
    let mut artefact = format!("{:?}\n{}\n", run.outcomes, run.report.to_json());
    for record in &run.control {
        artefact.push_str(&record.to_json());
        artefact.push('\n');
    }
    artefact
}

/// Chaos-kill cluster leg. Returns the stitched artefact plus the
/// merged (head + shipped worker) snapshots.
fn cluster_artifact(recorder: &TraceRecorder) -> (String, Vec<TraceSnapshot>) {
    let job = cluster_job(Profile::Latency, 2);
    let config = ClusterConfig::new(3)
        .with_task_shards(2)
        .with_chaos(ChaosPlan::kill_one(job.seed, 3));
    let hooks = if recorder.is_on() {
        ClusterHooks::none().with_trace(recorder)
    } else {
        ClusterHooks::none()
    };
    let outcome = run_cluster_hooked(&config, &job, cluster_task, &hooks)
        .unwrap_or_else(|e| panic!("chaos cluster run: {e}"));
    assert!(
        outcome.stats.degraded && outcome.stats.tasks_requeued >= 1,
        "chaos kill leg must degrade and requeue: {}",
        outcome.stats.to_json()
    );
    let (merged, payload) = merge_cluster_outputs(&outcome.outputs);
    let report = serde_json::to_string(&merged).expect("serialize merged aggregate");
    let mut snapshots = vec![recorder.drain()];
    snapshots.extend(outcome.traces);
    (
        format!("{payload}{{\"partial_aggregate\":{report}}}\n"),
        snapshots,
    )
}

fn main() {
    // Must run before anything else: a forked worker re-enters this
    // binary and must never fall through into head code.
    run_worker_if_spawned(cluster_task);

    let budget = relcnn_bench::wall_budget_us();
    let done = Arc::new(AtomicBool::new(false));
    {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(budget));
            if !done.load(Ordering::SeqCst) {
                eprintln!("trace_smoke: exceeded the {budget} us wall budget");
                std::process::exit(3);
            }
        });
    }

    // --- 1. campaign ------------------------------------------------
    let reference = campaign_artifact(&TraceRecorder::off());
    let recorder = TraceRecorder::new("campaign");
    let traced = campaign_artifact(&recorder);
    assert_identical("campaign", &traced, &reference);
    let snapshot = recorder.drain();
    let (campaign_recorded, campaign_dropped) =
        (snapshot.recorded_events(), snapshot.dropped_events());
    let campaign = export_and_validate("trace_campaign.json", &[snapshot]);
    assert!(campaign.count('B', "run") >= 1, "campaign: no run span");
    assert!(
        campaign.count('B', "chunk") >= 1,
        "campaign: no chunk spans"
    );
    assert!(
        campaign.count('i', "release") >= 1,
        "campaign: no aggregator releases"
    );
    println!("campaign: byte-identical with tracing on");

    // --- 2. serving replay ------------------------------------------
    let reference = serving_artifact(&TraceRecorder::off());
    let recorder = TraceRecorder::new("serving");
    let traced = serving_artifact(&recorder);
    assert_identical("serving", &traced, &reference);
    let snapshot = recorder.drain();
    let (serving_recorded, serving_dropped) =
        (snapshot.recorded_events(), snapshot.dropped_events());
    let serving = export_and_validate("trace_serving.json", &[snapshot]);
    assert!(serving.count('B', "batch") >= 1, "serving: no batch spans");
    assert!(
        serving.count('i', "admit") >= 1,
        "serving: no admit instants"
    );
    assert!(
        serving.count('i', "complete") >= 1,
        "serving: no completions"
    );
    println!("serving: byte-identical with tracing on");

    // --- 3. chaos cluster -------------------------------------------
    let (reference, _) = cluster_artifact(&TraceRecorder::off());
    let recorder = TraceRecorder::new("cluster-head");
    let (traced, snapshots) = cluster_artifact(&recorder);
    assert_identical("cluster chaos kill", &traced, &reference);
    let cluster_recorded: u64 = snapshots.iter().map(|s| s.recorded_events()).sum();
    let cluster_dropped: u64 = snapshots.iter().map(|s| s.dropped_events()).sum();
    let cluster = export_and_validate("trace_cluster_chaos.json", &snapshots);
    let pid_tracks = cluster.pids().len();
    let kill_events = cluster.count('i', "kill");
    let requeue_events = cluster.count('i', "requeue");
    let degraded_events = cluster.count('i', "degraded_completion");
    assert!(
        pid_tracks >= 3,
        "merged chaos timeline has {pid_tracks} pid tracks, need >= 3"
    );
    assert!(
        kill_events >= 1 && requeue_events >= 1 && degraded_events >= 1,
        "merged chaos timeline must show kill ({kill_events}), requeue ({requeue_events}) \
         and degraded completion ({degraded_events})"
    );
    println!(
        "cluster chaos: byte-identical with tracing on; merged timeline shows \
         kill -> requeue -> degraded completion across {pid_tracks} pid tracks"
    );

    // --- results for the gate ---------------------------------------
    let json = format!(
        "{{\"campaign_events\":{campaign_recorded},\"campaign_dropped\":{campaign_dropped},\
         \"serving_events\":{serving_recorded},\"serving_dropped\":{serving_dropped},\
         \"cluster_events\":{cluster_recorded},\"cluster_dropped\":{cluster_dropped},\
         \"cluster_pid_tracks\":{pid_tracks},\"kill_events\":{kill_events},\
         \"requeue_events\":{requeue_events},\"degraded_completion_events\":{degraded_events},\
         \"byte_identical_legs\":3}}"
    );
    let path = relcnn_bench::results_dir().join("trace_smoke.json");
    std::fs::write(&path, format!("{json}\n"))
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));

    done.store(true, Ordering::SeqCst);
    println!(
        "trace_smoke: OK — tracing is provably off the deterministic path \
         ({} -> gate)",
        path.display()
    );
}
