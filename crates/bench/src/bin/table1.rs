//! **Table 1** — execution time of the reliable convolution (Algorithm 3)
//! over AlexNet conv-1 (96 filters, 11×11×3, 227×227×3 input), with
//! Algorithm-1 (plain) vs Algorithm-2 (redundant) multiplication, plus the
//! in-text reference points: native execution and the naïve SAX shape
//! determination.
//!
//! Paper numbers (Python, i9-9900): plain 301.91 s, redundant 648.87 s,
//! native TensorFlow 0.05 s, SAX 1.942 s. Absolute values differ in Rust;
//! the reproduction targets are the *ratios*: redundant/plain ≈ 2.15,
//! both ≫ native, SAX ≪ reliable conv.
//!
//! Every configuration executes as a single-shard `relcnn-runtime` run,
//! so the measurement carries the engine's latency counters; the per-run
//! stats are appended to `results/table1_runs.jsonl` for the perf
//! trajectory.

use relcnn_bench::{quick_mode, results_dir, write_csv};
use relcnn_faults::NoFaults;
use relcnn_relexec::conv::{reliable_conv2d, ConvOutput, ReliableConvConfig};
use relcnn_relexec::{DmrAlu, PlainAlu, TmrAlu};
use relcnn_runtime::{CollectSink, Engine, FnTrial, RunPlan, RunStats, TrialCtx};
use relcnn_sax::{SaxConfig, SaxEncoder};
use relcnn_tensor::conv::{conv2d_im2col, ConvGeometry};
use relcnn_tensor::init::{Init, Rand};
use relcnn_tensor::{Shape, Tensor};
use relcnn_vision::{radial, sobel, threshold};
use std::time::Duration;

/// Runs `f` once through the engine (one trial, one shard, one worker)
/// and returns its output with the run's latency counters.
fn timed<T: Send>(name: &str, f: impl Fn() -> T + Sync) -> (T, Duration, RunStats) {
    let outcome = Engine::with_workers(1).run(
        &RunPlan::new(1, 0).with_shards(1),
        &FnTrial::new(|_ctx: &mut TrialCtx| f()),
        CollectSink::new(),
    );
    let mut results = outcome.summary;
    let value = results.pop().unwrap_or_else(|| panic!("{name}: no result"));
    (value, outcome.stats.mean_trial, outcome.stats)
}

fn main() {
    let quick = quick_mode();
    let (size, filters) = if quick { (64, 16) } else { (227, 96) };
    println!("== Table 1: reliable convolution of AlexNet conv-1 ==");
    println!(
        "input {size}x{size}x3, {filters} filters 11x11x3 stride 4{}",
        if quick { " (--quick scale)" } else { "" }
    );

    let mut rng = Rand::seeded(1);
    let input = rng.tensor(Shape::d3(3, size, size), Init::Uniform { lo: 0.0, hi: 1.0 });
    let weights = rng.tensor(
        Shape::d4(filters, 3, 11, 11),
        Init::HeNormal { fan_in: 363 },
    );
    let bias = Tensor::zeros(Shape::d1(filters));
    let geom = ConvGeometry::new(size, size, 11, 11, 4, 0).expect("valid geometry");
    let config = ReliableConvConfig::default();
    let macs = geom.mac_count(3, filters);
    println!("MAC count: {macs}");

    let mut run_log: Vec<String> = Vec::new();

    // Native (unprotected im2col) — the paper's "0.05 s TensorFlow" line.
    let (native_out, native, stats) = timed("native", || {
        conv2d_im2col(&input, &weights, Some(&bias), &geom).expect("native conv")
    });
    run_log.push(format!(
        "{{\"config\":\"native\",\"run\":{}}}",
        stats.to_json()
    ));

    // Algorithm 3 with Algorithm 1 (plain qualified) operations.
    let (plain_out, plain, stats) = timed("plain", || {
        let mut alu = PlainAlu::new(NoFaults::new());
        reliable_conv2d(&input, &weights, Some(&bias), &geom, &mut alu, &config)
            .expect("plain reliable conv")
    });
    run_log.push(format!(
        "{{\"config\":\"alg3_plain\",\"run\":{}}}",
        stats.to_json()
    ));

    // Algorithm 3 with Algorithm 2 (redundant) operations.
    let (dmr_out, dmr, stats) = timed("dmr", || {
        let mut alu = DmrAlu::new(NoFaults::new());
        reliable_conv2d(&input, &weights, Some(&bias), &geom, &mut alu, &config)
            .expect("dmr reliable conv")
    });
    run_log.push(format!(
        "{{\"config\":\"alg3_dmr\",\"run\":{}}}",
        stats.to_json()
    ));

    // TMR (the voting variant §IV mentions) — beyond Table 1's two columns.
    let (_tmr_out, tmr, stats): (ConvOutput, _, _) = timed("tmr", || {
        let mut alu = TmrAlu::new(NoFaults::new());
        reliable_conv2d(&input, &weights, Some(&bias), &geom, &mut alu, &config)
            .expect("tmr reliable conv")
    });
    run_log.push(format!(
        "{{\"config\":\"alg3_tmr\",\"run\":{}}}",
        stats.to_json()
    ));

    // Sanity: all outputs agree with native.
    for (a, b) in native_out.iter().zip(plain_out.output.iter()) {
        assert!((a - b).abs() < 1e-2, "plain deviates from native");
    }
    for (a, b) in native_out.iter().zip(dmr_out.output.iter()) {
        assert!((a - b).abs() < 1e-2, "dmr deviates from native");
    }

    // The SAX qualifier reference (paper: naïve SAX completes in 1.942 s).
    let mut img = Tensor::zeros(Shape::d2(size, size));
    relcnn_vision::draw::fill_regular_polygon(
        &mut img,
        8,
        (size as f32 / 2.0, size as f32 / 2.0),
        size as f32 * 0.35,
        0.1,
        1.0,
    );
    let (word, sax_time, stats) = timed("sax", || {
        let edges = sobel::gradient_magnitude(&img).expect("edges");
        let mask = threshold::binarize(&edges, threshold::otsu_threshold(&edges));
        let sig = radial::radial_signature(&mask, 256).expect("signature");
        SaxEncoder::new(SaxConfig::default())
            .encode(sig.samples())
            .expect("sax word")
    });
    run_log.push(format!(
        "{{\"config\":\"sax\",\"run\":{}}}",
        stats.to_json()
    ));

    let rows = [
        ("native (unprotected im2col)", native, "0.05 s"),
        ("Algorithm 3 + Algorithm 1 (plain)", plain, "301.91 s"),
        ("Algorithm 3 + Algorithm 2 (DMR)", dmr, "648.87 s"),
        ("Algorithm 3 + TMR (voting)", tmr, "(not reported)"),
        ("SAX shape determination", sax_time, "1.942 s"),
    ];
    println!(
        "\n{:<38}{:>14}{:>18}",
        "configuration", "measured", "paper (Python)"
    );
    for (name, t, paper) in rows {
        println!("{:<38}{:>12.4?}{:>18}", name, t, paper);
    }
    let ratio = dmr.as_secs_f64() / plain.as_secs_f64();
    // Hardware-model ratio from the ALUs' cycle accounting — the quantity
    // the paper's FPGA target exhibits ("in hardware, constant").
    let cycle_ratio = dmr_out.stats.cycles as f64 / plain_out.stats.cycles as f64;
    let paper_ratio = 648.87 / 301.91;
    println!("\nredundant/plain ratio: wall-clock {ratio:.3}, cycle-model {cycle_ratio:.3}, paper {paper_ratio:.3}");
    println!(
        "  (the Rust wall-clock ratio is bookkeeping-dominated: a native f32\n\
         multiply costs ~1ns against ~2ns of qualifier/checkpoint overhead,\n\
         whereas the paper's Python pays ~1us per overloaded call, so its\n\
         ratio isolates the 2 muls + compare of Algorithm 2. The cycle model\n\
         prices the hardware operators the paper targets and lands in the\n\
         paper's band.)"
    );
    println!(
        "plain/native ratio:    measured {:.1}x",
        plain.as_secs_f64() / native.as_secs_f64()
    );
    println!("SAX word: {word}");

    let csv_rows: Vec<String> = vec![
        format!("native,{}", native.as_secs_f64()),
        format!("alg3_plain,{}", plain.as_secs_f64()),
        format!("alg3_dmr,{}", dmr.as_secs_f64()),
        format!("alg3_tmr,{}", tmr.as_secs_f64()),
        format!("sax,{}", sax_time.as_secs_f64()),
        format!("dmr_over_plain_wall,{ratio}"),
        format!("dmr_over_plain_cycles,{cycle_ratio}"),
    ];
    let path = write_csv("table1.csv", "configuration,seconds", &csv_rows);
    println!("\nwrote {}", path.display());

    let jsonl_path = results_dir().join("table1_runs.jsonl");
    std::fs::write(&jsonl_path, run_log.join("\n") + "\n")
        .unwrap_or_else(|e| panic!("write {}: {e}", jsonl_path.display()));
    println!("wrote {}", jsonl_path.display());

    assert!(
        ratio > 1.1,
        "redundant execution must cost measurably more than plain (got {ratio})"
    );
    assert!(
        (1.8..2.5).contains(&cycle_ratio),
        "cycle-model redundant/plain ratio {cycle_ratio} outside the Table-1 band"
    );
}
