//! Emits the serving-determinism JSONL artefact.
//!
//! Replays a fixed open-loop serving trace — seeded three-class arrivals
//! with per-class deadline budgets, admission with a critical
//! reservation, deadline-aware micro-batching under the AIMD overload
//! controller, real hybrid-CNN inference through `classify_many` on the
//! engine — and writes one JSON line per request, a deterministic report
//! line, and one line per controller decision. The serving history runs
//! on a *virtual* clock with a deterministic service model, so the
//! artefact is a pure function of `(arrival seed, arrival process)`:
//! CI runs this binary at workers {1, 2, 8} × two arrival seeds and
//! diffs the outputs byte for byte. The worker count only changes *how
//! fast* the batches classify, never what any line says.
//!
//! ```text
//! serving_artifact --workers 8 --seed 201 --out /tmp/serve.jsonl
//! serving_artifact --workers 2 --seed 202 --arrival burst --out /tmp/b.jsonl
//! ```

use relcnn_faults::SkewedCost;
use relcnn_runtime::Engine;
use relcnn_serve::{
    BatchPolicy, CnnBackend, ControllerConfig, LoadGen, LoadGenConfig, Outcome, Server,
    ServerConfig, ServiceModel,
};
use std::io::Write;

const REQUESTS: u64 = 240;
const DEADLINE_US: u64 = 5_500;

/// The fixed serving configuration of the determinism artefact: enough
/// overload (heavy-tail service vs. arrival rate, a 16-slot queue) that
/// completions, shedding, boundary/pre-dispatch expiry, late service,
/// AIMD clamps and early-closed windows all appear in the artefact.
fn server_config() -> ServerConfig {
    ServerConfig::new(
        16,
        BatchPolicy::new(6, 2_000).with_critical_delay(500),
        ServiceModel {
            batch_overhead_us: 150,
            // Every 13th request takes an escalation-grade service hit.
            cost: SkewedCost::periodic(180, 3_000, 13),
        },
    )
    .with_critical_reserve(3)
    .with_control(ControllerConfig::default())
}

fn load_config(seed: u64, arrival: &str) -> LoadGenConfig {
    // Jittered deadline budgets (0.7–5.5 ms) make the *pre-dispatch*
    // expiry sweep reachable, not just the batch-boundary one — with
    // uniform budgets the FIFO head always dies first and the boundary
    // sweep shadows it. The class mix gives critical a tight budget and
    // bulk a loose one, so priority dispatch and the reservation both
    // leave visible marks on the artefact.
    let base = match arrival {
        "poisson" => LoadGenConfig::poisson(REQUESTS, seed, 300, DEADLINE_US),
        "burst" => LoadGenConfig::burst(REQUESTS, seed, 24, 20, 9_000, DEADLINE_US),
        other => {
            eprintln!("unknown arrival process `{other}`");
            usage()
        }
    };
    base.with_deadline_jitter(4_800)
        .with_class_mix([1, 3, 2])
        .with_class_deadlines([2_500, 0, 30_000])
}

fn usage() -> ! {
    eprintln!(
        "usage: serving_artifact --workers N --seed S --out PATH [--arrival poisson|burst]\n\
         Writes the deterministic JSONL serving replay of a fixed trace."
    );
    std::process::exit(2)
}

fn main() {
    let mut workers = 1usize;
    let mut seed = 201u64;
    let mut arrival = "poisson".to_string();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--arrival" => arrival = args.next().unwrap_or_else(|| usage()),
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let Some(out) = out else { usage() };

    let trace = LoadGen::new(load_config(seed, &arrival)).generate();
    let backend = CnnBackend::tiny(0xC1A55).unwrap_or_else(|e| panic!("backend: {e}"));
    let engine = Engine::with_workers(workers);
    let run = Server::new(server_config())
        .backend(&backend)
        .engine(&engine)
        .run(&trace);

    let file = std::fs::File::create(&out).unwrap_or_else(|e| panic!("create {out}: {e}"));
    let mut w = std::io::BufWriter::new(file);
    for (req, outcome) in trace.iter().zip(&run.outcomes) {
        // `lane` is the request's priority class; `class` on completed
        // lines stays the CNN verdict's class index.
        let line = match outcome {
            Outcome::Completed {
                batch,
                latency_us,
                late,
                verdict,
            } => format!(
                "{{\"req\":{},\"arrival_us\":{},\"lane\":\"{}\",\"outcome\":\"completed\",\
                 \"batch\":{batch},\"latency_us\":{latency_us},\"late\":{late},\"class\":{},\
                 \"qualified\":{},\"confidence_bits\":{}}}",
                req.id,
                req.arrival_us,
                req.class.label(),
                verdict.class,
                verdict.qualified,
                verdict.confidence_bits
            ),
            Outcome::Shed => format!(
                "{{\"req\":{},\"arrival_us\":{},\"lane\":\"{}\",\"outcome\":\"shed\"}}",
                req.id,
                req.arrival_us,
                req.class.label()
            ),
            Outcome::Expired => format!(
                "{{\"req\":{},\"arrival_us\":{},\"lane\":\"{}\",\"outcome\":\"expired\"}}",
                req.id,
                req.arrival_us,
                req.class.label()
            ),
        };
        writeln!(w, "{line}").unwrap_or_else(|e| panic!("write {out}: {e}"));
    }
    writeln!(w, "{{\"report\":{}}}", run.report.to_json())
        .unwrap_or_else(|e| panic!("write report to {out}: {e}"));
    // The controller's decision log is part of the byte-diff surface:
    // a nondeterministic cap or early-close decision shows up here.
    for record in &run.control {
        writeln!(w, "{{\"control\":{}}}", record.to_json())
            .unwrap_or_else(|e| panic!("write control to {out}: {e}"));
    }
    w.flush().unwrap_or_else(|e| panic!("flush {out}: {e}"));

    eprintln!(
        "{out}: arrival={arrival} seed={seed} workers={workers} completed={} shed={} \
         expired={} late={} batches={} clamps={} early_closes={} min_cap={} \
         (engine: {} images in {} dispatches, {} steals)",
        run.report.completed,
        run.report.shed,
        run.report.expired(),
        run.report.late,
        run.report.batches,
        run.report.aimd_clamps,
        run.report.early_closes,
        run.report.min_admit_cap,
        run.dispatch.images,
        run.dispatch.engine_batches,
        run.dispatch.steals,
    );
}
