//! **X2 (in-text §III-B)** — pre-initialising one conv-1 filter to the
//! Sobel bank and keeping it constant during training.
//!
//! "In theory the training tool offers the ability to freeze a filter
//! during training. In practice, after every epoch or batch, the filter
//! values are minimally changed… It can be shown the filter undergoes
//! subtle changes in the intensity, statistical and spatial frequency
//! domains. The accuracy of the model is not affected whether the kernels
//! are replaced after training is completed or set before training has
//! begun and re-set after every epoch or batch."
//!
//! Reproduction: train under four freeze policies and report the final
//! accuracy plus the filter drift in the three domains the paper names.

use relcnn_bench::{quick_mode, write_csv};
use relcnn_core::experiments::{paper_train_config, pretrain_drift};
use relcnn_gtsrb::{DatasetConfig, SignClass, SyntheticGtsrb};
use relcnn_nn::freeze::FreezePolicy;

fn main() {
    let quick = quick_mode();
    let dataset_config = if quick {
        DatasetConfig {
            image_size: 96,
            train_per_class: 8,
            test_per_class: 3,
            seed: 121,
            classes: SignClass::ALL.to_vec(),
        }
    } else {
        DatasetConfig::standard(121)
    };
    let mut train_config = paper_train_config(232);
    if quick {
        train_config.epochs = 1;
    }

    println!("== X2: pre-initialised Sobel filter, freeze-policy comparison ==");
    let data = SyntheticGtsrb::generate(&dataset_config).expect("dataset");

    let policies = [
        FreezePolicy::None,
        FreezePolicy::GradMask,
        FreezePolicy::PinEachEpoch,
        FreezePolicy::PinEachBatch,
    ];
    println!(
        "\n{:<16}{:>10}{:>12}{:>12}{:>12}{:>14}",
        "policy", "accuracy", "drift L2", "Δmean", "Δstd", "Δhigh-freq"
    );
    let mut rows = Vec::new();
    for policy in policies {
        let report =
            pretrain_drift(&data, policy, &train_config, 343).expect("pretrain experiment");
        println!(
            "{:<16}{:>10.4}{:>12.6}{:>12.6}{:>12.6}{:>14.6}",
            format!("{policy:?}"),
            report.accuracy,
            report.drift.l2,
            report.drift.mean_shift,
            report.drift.std_shift,
            report.drift.highfreq_shift
        );
        rows.push(format!(
            "{:?},{},{},{},{},{}",
            policy,
            report.accuracy,
            report.drift.l2,
            report.drift.mean_shift,
            report.drift.std_shift,
            report.drift.highfreq_shift
        ));
    }
    println!(
        "\npaper's observations reproduced when:\n\
         * GradMask drifts (the TensorFlow 'freeze' that is not a freeze);\n\
         * PinEachBatch/Epoch hold the filter bit-exact;\n\
         * accuracies agree to within noise ('accuracy … not affected')."
    );
    let path = write_csv(
        "pretrain_drift.csv",
        "policy,accuracy,l2,mean_shift,std_shift,highfreq_shift",
        &rows,
    );
    println!("wrote {}", path.display());
}
