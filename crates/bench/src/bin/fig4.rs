//! **Figure 4** — "Confidence values for the 'Stop' sign class after
//! replacement of each one of the learnt, first convolution layer AlexNet
//! filters with a Sobel filter." The red dotted line is the unmodified
//! model's value.
//!
//! Reproduction: train the scaled AlexNet (conv-1 identical to the paper's:
//! 96 filters, 11×11×3, stride 4) on synthetic GTSRB, then replace each of
//! the 96 filters with the Sobel bank one at a time and measure the mean
//! stop-class confidence. Expected shape: most filters barely matter, a
//! few depress the confidence substantially — "the accuracy varies
//! substantially depending on which filter has been replaced".

use relcnn_bench::{ascii_plot, quick_mode, write_csv};
use relcnn_core::experiments::{paper_train_config, train_gtsrb_model, SweepDepth};
use relcnn_gtsrb::{DatasetConfig, SignClass, SyntheticGtsrb};
use relcnn_nn::serial;
use relcnn_runtime::{experiments::fig4_filter_sweep_parallel, Engine};

fn main() {
    let quick = quick_mode();
    let mut dataset_config = DatasetConfig::standard(101);
    let mut train_config = paper_train_config(202);
    if quick {
        dataset_config = DatasetConfig {
            image_size: 96,
            train_per_class: 8,
            test_per_class: 3,
            seed: 101,
            classes: SignClass::ALL.to_vec(),
        };
        train_config.epochs = 1;
    }

    println!("== Figure 4: per-filter Sobel replacement sweep ==");
    println!(
        "dataset: {} train / {} test per class at {}px{}",
        dataset_config.train_per_class,
        dataset_config.test_per_class,
        dataset_config.image_size,
        if quick { " (--quick)" } else { "" }
    );

    let data = SyntheticGtsrb::generate(&dataset_config).expect("dataset");

    // Reuse a cached trained model when present (the sweep is the point).
    let ckpt = relcnn_bench::results_dir().join(if quick {
        "fig4_model_quick.ckpt"
    } else {
        "fig4_model.ckpt"
    });
    let (mut net, matrix) = train_gtsrb_model(
        &data,
        &if relcnn_bench::exists(&ckpt) {
            // Minimal retrain pass replaced by checkpoint load below.
            let mut tc = train_config;
            tc.epochs = 0;
            tc
        } else {
            train_config
        },
        303,
    )
    .expect("training");
    if relcnn_bench::exists(&ckpt) {
        serial::load(&mut net, &ckpt).expect("checkpoint load");
        println!("loaded cached model {}", ckpt.display());
    } else {
        serial::save(&mut net, &ckpt).expect("checkpoint save");
        println!(
            "trained model (test accuracy {:.3}), cached at {}",
            matrix.accuracy(),
            ckpt.display()
        );
    }

    // The 96 per-filter evaluations are independent: fan them out over
    // the runtime's worker pool (one filter per shard, deterministic
    // result order).
    let outcome = fig4_filter_sweep_parallel(
        &Engine::default(),
        &net,
        &data,
        SignClass::Stop,
        SweepDepth::ConfidenceOnly,
    )
    .expect("sweep");
    let (points, baseline) = outcome.summary;
    println!(
        "sweep: {} filters in {:?} ({:.2} filters/s across {} workers)",
        points.len(),
        outcome.stats.wall,
        outcome.stats.throughput,
        outcome.stats.workers
    );

    println!(
        "\nbaseline stop confidence {:.4}, accuracy {:.4} (the red dotted line)",
        baseline.stop_confidence, baseline.accuracy
    );
    let series: Vec<f32> = points.iter().map(|p| p.stop_confidence as f32).collect();
    println!("{}", ascii_plot(&series, 96, 12));

    let min = points
        .iter()
        .min_by(|a, b| a.stop_confidence.total_cmp(&b.stop_confidence))
        .expect("nonempty");
    let max = points
        .iter()
        .max_by(|a, b| a.stop_confidence.total_cmp(&b.stop_confidence))
        .expect("nonempty");
    println!(
        "confidence range across filters: [{:.4} @ filter {}, {:.4} @ filter {}]",
        min.stop_confidence, min.filter, max.stop_confidence, max.filter
    );
    let spread = max.stop_confidence - min.stop_confidence;
    println!("spread {spread:.4} — paper: 'varies substantially depending on which filter'");

    let rows: Vec<String> = points
        .iter()
        .map(|p| format!("{},{}", p.filter, p.stop_confidence))
        .chain(std::iter::once(format!(
            "baseline,{}",
            baseline.stop_confidence
        )))
        .collect();
    let path = write_csv("fig4_confidence.csv", "filter,stop_confidence", &rows);
    println!("wrote {}", path.display());
}
