//! Campaign throughput scaling across the `relcnn-runtime` worker pool.
//!
//! Two workloads bound the engine's behaviour:
//!
//! * **cpu_bound** — seeded BER fault-injection trials over a qualified
//!   operation stream. Scales with physical cores; on a single-core host
//!   it stays flat (and must not *regress* under more workers).
//! * **latency_bound** — trials dominated by a fixed 2 ms wait,
//!   modelling device/IO-bound inference requests. Scales with *worker*
//!   count on any host, because the pool overlaps the waits; this is the
//!   scaling headroom a serving deployment cares about.
//!
//! Besides the criterion timings, the bench writes
//! `results/runtime_scaling.json` with trials/s per worker count and the
//! 8-vs-1 speedups, so later PRs have a machine-readable trajectory to
//! beat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relcnn_faults::{BerInjector, FaultInjector, FaultSite, OpContext};
use relcnn_runtime::{run_campaign, CampaignConfig, RunStats, TrialOutcome, TrialResult};
use std::time::Duration;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn cpu_bound_trial(seed: u64) -> TrialResult {
    // A few thousand injector exposures per trial: representative of a
    // small qualified kernel without making the 1-worker baseline slow.
    let mut inj = BerInjector::new(seed, 1e-3).with_sites(vec![FaultSite::Multiplier]);
    let mut acc = 0.0f32;
    let mut corrupted = false;
    for op in 0..2_000u64 {
        let v = inj.perturb(OpContext::new(FaultSite::Multiplier, op), 1.0);
        if v != 1.0 {
            corrupted = true;
        }
        acc += v;
    }
    std::hint::black_box(acc);
    TrialResult {
        outcome: if corrupted {
            TrialOutcome::DetectedRecovered
        } else {
            TrialOutcome::Correct
        },
        injector: inj.stats(),
    }
}

fn latency_bound_trial(seed: u64) -> TrialResult {
    std::thread::sleep(Duration::from_millis(2));
    TrialResult {
        outcome: if seed.is_multiple_of(2) {
            TrialOutcome::Correct
        } else {
            TrialOutcome::DetectedRecovered
        },
        injector: Default::default(),
    }
}

fn campaign_stats(workers: usize, trials: u64, f: fn(u64) -> TrialResult) -> RunStats {
    let config = CampaignConfig::new(trials, 0xBEE5)
        .with_threads(workers)
        .with_shards(32);
    // Best of five: the trajectory artefact records capability, not
    // scheduler noise (a single sample on a loaded or cgroup-throttled
    // host can swing 2x, and the dips are bursty enough that three
    // samples sometimes all land in one).
    (0..5)
        .map(|_| {
            relcnn_runtime::run_campaign_with(&config, relcnn_runtime::EarlyStop::never(), f).stats
        })
        .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
        .expect("three samples")
}

fn bench_runtime_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_scaling");
    group.sample_size(3);
    for workers in WORKER_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("cpu_bound_campaign", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let config = CampaignConfig::new(256, 7)
                        .with_threads(workers)
                        .with_shards(32);
                    run_campaign(&config, cpu_bound_trial)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("latency_bound_campaign", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let config = CampaignConfig::new(128, 7)
                        .with_threads(workers)
                        .with_shards(32);
                    run_campaign(&config, latency_bound_trial)
                })
            },
        );
    }
    group.finish();

    // Direct throughput measurement for the JSON trajectory artefact.
    let mut cpu = Vec::new();
    let mut lat = Vec::new();
    for workers in WORKER_COUNTS {
        cpu.push((workers, campaign_stats(workers, 256, cpu_bound_trial)));
        lat.push((workers, campaign_stats(workers, 256, latency_bound_trial)));
    }
    let speedup = |series: &[(usize, RunStats)]| {
        let t1 = series.first().expect("1-worker run").1.throughput;
        let t8 = series.last().expect("8-worker run").1.throughput;
        if t1 > 0.0 {
            t8 / t1
        } else {
            0.0
        }
    };
    let fmt_series = |series: &[(usize, RunStats)]| {
        series
            .iter()
            .map(|(w, s)| {
                let (p50, p95, p99) = s.trial_hist.percentiles();
                format!(
                    "{{\"workers\":{w},\"trials_per_s\":{:.3},\"mean_trial_ns\":{},\
                     \"trial_p50_ns\":{p50},\"trial_p95_ns\":{p95},\"trial_p99_ns\":{p99},\
                     \"steals\":{},\"splits\":{},\"send_block_us\":{},\
                     \"frontier_parks\":{},\"frontier_stall_us\":{},\"max_reorder_depth\":{}}}",
                    s.throughput,
                    s.mean_trial.as_nanos(),
                    s.steals,
                    s.splits,
                    s.send_block.as_micros(),
                    s.frontier_parks,
                    s.frontier_stall.as_micros(),
                    s.max_reorder_depth
                )
            })
            .collect::<Vec<_>>()
            .join(",")
    };
    let cpu_speedup = speedup(&cpu);
    let lat_speedup = speedup(&lat);
    let json = format!(
        "{{\n  \"bench\": \"runtime_scaling\",\n  \"worker_counts\": [1,2,4,8],\n  \
         \"cpu_bound\": [{}],\n  \"latency_bound\": [{}],\n  \
         \"cpu_bound_speedup_8x_over_1x\": {:.3},\n  \
         \"speedup_8x_over_1x\": {:.3}\n}}\n",
        fmt_series(&cpu),
        fmt_series(&lat),
        cpu_speedup,
        lat_speedup
    );
    let path = relcnn_bench::results_dir().join("runtime_scaling.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!(
        "\nscaling: latency-bound 8x/1x speedup {lat_speedup:.2}x, \
         cpu-bound {cpu_speedup:.2}x (host has {} cores)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!("wrote {}", path.display());
    assert!(
        lat_speedup >= 3.0,
        "worker pool must overlap latency-bound trials ≥3x at 8 workers (got {lat_speedup:.2}x)"
    );
}

criterion_group!(benches, bench_runtime_scaling);
criterion_main!(benches);
