//! **Figure 2** — the hybrid (shared-DCNN) architecture: the qualifier
//! consumes the reliably executed conv-1 Sobel feature maps instead of
//! recomputing its own edges. Benchmarked against the Figure-1 parallel
//! variant on identical inputs: the hybrid path saves the qualifier's
//! separate edge extraction at the price of qualifying on stride-coarse
//! evidence.

use criterion::{criterion_group, criterion_main, Criterion};
use relcnn_core::{HybridCnn, HybridConfig, QualificationMode};
use relcnn_gtsrb::{RenderParams, SignClass, SignRenderer};
use relcnn_relexec::RedundancyMode;
use relcnn_tensor::init::Rand;

fn bench_fig2(c: &mut Criterion) {
    let image = SignRenderer::new(48).render(
        SignClass::Stop,
        &RenderParams::nominal(),
        &mut Rand::seeded(7),
    );

    let mut group = c.benchmark_group("fig2_hybrid_path");
    group.sample_size(20);
    for (name, mode) in [
        ("parallel_fig1", QualificationMode::Parallel),
        ("hybrid_fig2", QualificationMode::Hybrid),
    ] {
        let mut config = HybridConfig::tiny(42);
        config.qualification = mode;
        if mode == QualificationMode::Hybrid {
            config.qualifier = relcnn_core::QualifierConfig::coarse();
        }
        config.redundancy = RedundancyMode::Plain;
        let mut hybrid = HybridCnn::untrained(&config).expect("hybrid");
        group.bench_function(name, |b| {
            b.iter(|| hybrid.classify(&image).expect("verdict"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
