//! Timing of the SAX shape-determination pipeline — the paper's in-text
//! reference "a naïve version of the SAX algorithm to determine shape
//! completes in 1.942 seconds", broken into stages.

use criterion::{criterion_group, criterion_main, Criterion};
use relcnn_sax::{SaxConfig, SaxEncoder};
use relcnn_tensor::{Shape, Tensor};
use relcnn_vision::{draw, radial, sobel, threshold};

fn bench_sax_pipeline(c: &mut Criterion) {
    let mut img = Tensor::zeros(Shape::d2(227, 227));
    draw::fill_regular_polygon(&mut img, 8, (113.5, 113.5), 80.0, 0.12, 1.0);
    let edges = sobel::gradient_magnitude(&img).expect("edges");
    let mask = threshold::binarize(&edges, threshold::otsu_threshold(&edges));
    let sig = radial::radial_signature(&mask, 256).expect("signature");
    let encoder = SaxEncoder::new(SaxConfig::default());

    let mut group = c.benchmark_group("sax_qualifier");
    group.bench_function("sobel_227", |b| {
        b.iter(|| sobel::gradient_magnitude(&img).expect("edges"))
    });
    group.bench_function("otsu_binarize", |b| {
        b.iter(|| threshold::binarize(&edges, threshold::otsu_threshold(&edges)))
    });
    group.bench_function("radial_signature_256", |b| {
        b.iter(|| radial::radial_signature(&mask, 256).expect("signature"))
    });
    group.bench_function("sax_encode", |b| {
        b.iter(|| encoder.encode(sig.samples()).expect("word"))
    });
    group.bench_function("full_pipeline", |b| {
        b.iter(|| {
            let edges = sobel::gradient_magnitude(&img).expect("edges");
            let mask = threshold::binarize(&edges, threshold::otsu_threshold(&edges));
            let sig = radial::radial_signature(&mask, 256).expect("signature");
            encoder.encode(sig.samples()).expect("word")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sax_pipeline);
criterion_main!(benches);
