//! **Figure 1** — latency of the parallel-qualification architecture: the
//! CNN classification path vs the reliably executed qualifier path, and
//! the fused end-to-end classification. Demonstrates the architecture's
//! premise: the deterministic qualifier is far cheaper than the CNN, so
//! qualifying a single safety-relevant class costs little.

use criterion::{criterion_group, criterion_main, Criterion};
use relcnn_core::{HybridCnn, HybridConfig, ShapeQualifier};
use relcnn_gtsrb::{RenderParams, ShapeKind, SignClass, SignRenderer};
use relcnn_relexec::RedundancyMode;
use relcnn_tensor::init::Rand;
use relcnn_vision::rgb_to_gray;

fn bench_fig1(c: &mut Criterion) {
    let mut config = HybridConfig::tiny(42);
    config.redundancy = RedundancyMode::Plain; // isolate the architecture cost
    let mut hybrid = HybridCnn::untrained(&config).expect("hybrid");
    let image = SignRenderer::new(48).render(
        SignClass::Stop,
        &RenderParams::nominal(),
        &mut Rand::seeded(7),
    );
    let gray = rgb_to_gray(&image).expect("gray");
    let qualifier = ShapeQualifier::default();

    let mut group = c.benchmark_group("fig1_parallel_qualify");
    group.sample_size(20);
    group.bench_function("qualifier_path_only", |b| {
        b.iter(|| {
            qualifier
                .assess_image(&gray, ShapeKind::Octagon)
                .expect("verdict")
        })
    });
    group.bench_function("fused_classification", |b| {
        b.iter(|| hybrid.classify(&image).expect("verdict"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
