//! Ablation: rollback distance (paper §II-D/E).
//!
//! "A rollback to a checkpoint and re-execution represents a significant
//! delay to output of results. … In a convolution layer … the
//! rollback-distance can be reduced to one operation."
//!
//! Compares Algorithm 3 (one-operation rollback) against layer-level
//! duplication-with-comparison (full-layer re-execution on mismatch) at
//! fault pressures where the layer-level scheme must re-run the whole
//! convolution while the operation-level scheme retries single MACs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relcnn_faults::{BerInjector, FaultSite};
use relcnn_relexec::conv::{duplicated_conv2d, reliable_conv2d, ReliableConvConfig};
use relcnn_relexec::{BucketConfig, DmrAlu, PlainAlu, RetryPolicy};
use relcnn_tensor::conv::ConvGeometry;
use relcnn_tensor::init::{Init, Rand};
use relcnn_tensor::Shape;

fn bench_rollback_granularity(c: &mut Criterion) {
    let mut rng = Rand::seeded(9);
    let input = rng.tensor(Shape::d3(3, 20, 20), Init::Uniform { lo: -1.0, hi: 1.0 });
    let weights = rng.tensor(Shape::d4(6, 3, 3, 3), Init::HeNormal { fan_in: 27 });
    let geom = ConvGeometry::new(20, 20, 3, 3, 1, 0).expect("geometry");
    let config = ReliableConvConfig {
        bucket: BucketConfig::new(1, u32::MAX),
        retry: RetryPolicy::with_retries(4),
        pe_count: 8,
    };

    let mut group = c.benchmark_group("ablation_rollback");
    group.sample_size(10);
    // Fault pressure chosen so a layer-scale run sees a handful of faults:
    // ops ≈ 35k, so ber 3e-5 injects ~1 fault per pass on average.
    for ber in [0.0f64, 3e-5] {
        group.bench_with_input(
            BenchmarkId::new("op_level_alg3_dmr", format!("ber_{ber:.0e}")),
            &ber,
            |b, &ber| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let inj = BerInjector::new(seed, ber)
                        .with_sites(vec![FaultSite::Multiplier, FaultSite::Accumulator]);
                    let mut alu = DmrAlu::new(inj);
                    reliable_conv2d(&input, &weights, None, &geom, &mut alu, &config)
                        .expect("op-level recovery")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("layer_level_dwc", format!("ber_{ber:.0e}")),
            &ber,
            |b, &ber| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let inj = BerInjector::new(seed, ber)
                        .with_sites(vec![FaultSite::Multiplier, FaultSite::Accumulator]);
                    let mut alu = PlainAlu::new(inj);
                    // Layer-level scheme may legitimately give up under
                    // sustained noise; count that as one full attempt set.
                    let _ = duplicated_conv2d(
                        &input,
                        &weights,
                        None,
                        &geom,
                        &mut alu,
                        RetryPolicy::with_retries(4),
                    );
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rollback_granularity);
criterion_main!(benches);
