//! Criterion companion to the `table1` binary: statistically robust
//! timing of Algorithm 3 under each operator flavour, at a reduced
//! geometry so the suite stays fast. The quantity of interest is the
//! redundant/plain ratio (paper: 648.87/301.91 ≈ 2.15).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relcnn_faults::NoFaults;
use relcnn_relexec::conv::{reliable_conv2d, ReliableConvConfig};
use relcnn_relexec::{DmrAlu, PlainAlu, TmrAlu};
use relcnn_tensor::conv::{conv2d_im2col, ConvGeometry};
use relcnn_tensor::init::{Init, Rand};
use relcnn_tensor::{Shape, Tensor};

fn setup(size: usize, filters: usize) -> (Tensor, Tensor, Tensor, ConvGeometry) {
    let mut rng = Rand::seeded(1);
    let input = rng.tensor(Shape::d3(3, size, size), Init::Uniform { lo: 0.0, hi: 1.0 });
    let weights = rng.tensor(
        Shape::d4(filters, 3, 11, 11),
        Init::HeNormal { fan_in: 363 },
    );
    let bias = Tensor::zeros(Shape::d1(filters));
    let geom = ConvGeometry::new(size, size, 11, 11, 4, 0).expect("geometry");
    (input, weights, bias, geom)
}

fn bench_table1(c: &mut Criterion) {
    // 64x64, 8 filters: same kernel/stride as AlexNet conv-1, ~1/400 the
    // MACs — ratios carry over, iterations stay sub-second.
    let (input, weights, bias, geom) = setup(64, 8);
    let config = ReliableConvConfig::default();
    let mut group = c.benchmark_group("table1_reliable_conv");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("native_im2col", "64x64x8"), |b| {
        b.iter(|| conv2d_im2col(&input, &weights, Some(&bias), &geom).expect("conv"))
    });
    group.bench_function(BenchmarkId::new("alg3_plain", "64x64x8"), |b| {
        b.iter(|| {
            let mut alu = PlainAlu::new(NoFaults::new());
            reliable_conv2d(&input, &weights, Some(&bias), &geom, &mut alu, &config).expect("conv")
        })
    });
    group.bench_function(BenchmarkId::new("alg3_dmr", "64x64x8"), |b| {
        b.iter(|| {
            let mut alu = DmrAlu::new(NoFaults::new());
            reliable_conv2d(&input, &weights, Some(&bias), &geom, &mut alu, &config).expect("conv")
        })
    });
    group.bench_function(BenchmarkId::new("alg3_tmr", "64x64x8"), |b| {
        b.iter(|| {
            let mut alu = TmrAlu::new(NoFaults::new());
            reliable_conv2d(&input, &weights, Some(&bias), &geom, &mut alu, &config).expect("conv")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
