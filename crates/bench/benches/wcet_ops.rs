//! **X5** — determinism of qualified-operation timing (§IV: "the
//! best-case execution and worst-case execution time are, given
//! constant-time adders and multipliers, determinable and, in hardware,
//! constant").
//!
//! Measures per-operation latency of each ALU flavour and checks the
//! cost-model cycle ratios against measured time ratios.

use criterion::{criterion_group, criterion_main, Criterion};
use relcnn_faults::NoFaults;
use relcnn_relexec::cost::OpCost;
use relcnn_relexec::{DmrAlu, PlainAlu, QualifiedAlu, RedundancyMode, TmrAlu};
use std::hint::black_box;

fn bench_wcet_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("wcet_ops");

    group.bench_function("plain_mul_1k", |b| {
        let mut alu = PlainAlu::new(NoFaults::new());
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..1000 {
                acc += alu.mul(black_box(i as f32), black_box(1.0001)).value();
            }
            black_box(acc)
        })
    });
    group.bench_function("dmr_mul_1k", |b| {
        let mut alu = DmrAlu::new(NoFaults::new());
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..1000 {
                acc += alu.mul(black_box(i as f32), black_box(1.0001)).value();
            }
            black_box(acc)
        })
    });
    group.bench_function("tmr_mul_1k", |b| {
        let mut alu = TmrAlu::new(NoFaults::new());
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..1000 {
                acc += alu.mul(black_box(i as f32), black_box(1.0001)).value();
            }
            black_box(acc)
        })
    });
    group.finish();

    // Print the analytic cost-model ratios alongside (picked up from the
    // bench log; asserted in the integration tests).
    let cost = OpCost::default();
    eprintln!(
        "cost-model mul-op cycle ratios: dmr/plain = {:.2}, tmr/plain = {:.2}",
        cost.mul_op(RedundancyMode::Dmr) as f64 / cost.mul_op(RedundancyMode::Plain) as f64,
        cost.mul_op(RedundancyMode::Tmr) as f64 / cost.mul_op(RedundancyMode::Plain) as f64,
    );
}

criterion_group!(benches, bench_wcet_ops);
criterion_main!(benches);
