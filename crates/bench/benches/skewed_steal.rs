//! Work stealing vs contiguous-block claiming on a skewed campaign.
//!
//! The adversarial workload for PR 1's whole-shard claiming: every trial
//! is latency-bound (modelling device/IO-bound inference), and the
//! escalation-heavy trials — far more model evaluations per trial — all
//! cluster in the *last* shard ([`SkewedCost::tail`]). Under whole-shard
//! claiming one worker eats the entire escalation cost while the other
//! seven idle; with single-trial chunks the dry workers steal the heavy
//! shard's chunks and the tail flattens.
//!
//! Both modes run on the same engine — "block" mode is simply
//! `chunk = shard length`, which reproduces PR 1's claiming granularity
//! exactly (one indivisible unit per shard) — so the comparison isolates
//! the scheduling policy. Aggregates are asserted bit-identical between
//! the two modes: stealing is pure scheduling.
//!
//! Writes `results/skewed_steal.json` with both wall-clocks and the
//! steal speedup; the CI bench gate compares it against
//! `results/baseline/skewed_steal.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relcnn_faults::SkewedCost;
use relcnn_runtime::{
    run_campaign_with, CampaignConfig, EarlyStop, RunOutcome, TrialOutcome, TrialResult,
};
use std::time::Duration;

const WORKERS: usize = 8;
const TRIALS: u64 = 64;
const SHARDS: usize = 8;
const BASE_SEED: u64 = 0x5EED;
/// Sleep per model evaluation: latency-bound, so the pool overlaps waits
/// even on a single-core host.
const EVAL_SLEEP_US: u64 = 100;

/// Clean trials run 5 evaluations (0.5 ms); the escalated tail — the last
/// shard of the campaign — runs 80 (8 ms).
fn skew() -> SkewedCost {
    SkewedCost::tail(5, 80, TRIALS - TRIALS / SHARDS as u64)
}

fn skewed_trial(seed: u64) -> TrialResult {
    let index = seed - BASE_SEED;
    let cost = skew();
    std::thread::sleep(Duration::from_micros(cost.evals(index) * EVAL_SLEEP_US));
    TrialResult {
        outcome: if cost.is_escalated(index) {
            TrialOutcome::DetectedRecovered
        } else {
            TrialOutcome::Correct
        },
        injector: Default::default(),
    }
}

/// `chunk = 0` is sentinel-mapped to the whole-shard granularity here, so
/// both modes go through the identical code path. Block mode also pins
/// adaptive splitting off: the comparison isolates *static* whole-shard
/// claiming (PR 1's granularity) against fine-chunk stealing — with
/// splitting left on, the engine would dismantle the block schedule
/// mid-run and the contrast would measure nothing.
fn run_mode(chunk: u64) -> RunOutcome<relcnn_runtime::CampaignReport> {
    let (chunk, adaptive) = if chunk == 0 {
        (TRIALS / SHARDS as u64, false) // whole shard: PR 1 claiming
    } else {
        (chunk, true)
    };
    let config = CampaignConfig::new(TRIALS, BASE_SEED)
        .with_threads(WORKERS)
        .with_shards(SHARDS)
        .with_chunk(chunk)
        .with_adaptive(adaptive);
    run_campaign_with(&config, EarlyStop::never(), skewed_trial)
}

/// Wall-clock and steal counters of the median-wall run out of `samples`
/// runs — one coherent run's statistics, not a mix across runs.
fn median_run(chunk: u64, samples: usize) -> (Duration, u64, u64) {
    let mut runs = Vec::with_capacity(samples);
    for _ in 0..samples {
        let outcome = run_mode(chunk);
        assert_eq!(outcome.summary.trials, TRIALS);
        runs.push((
            outcome.stats.wall,
            outcome.stats.steals,
            outcome.stats.chunks_stolen,
        ));
    }
    runs.sort();
    runs[runs.len() / 2]
}

fn bench_skewed_steal(c: &mut Criterion) {
    let mut group = c.benchmark_group("skewed_steal");
    group.sample_size(3);
    for (label, chunk) in [("block_whole_shard", 0u64), ("steal_chunk_1", 1)] {
        group.bench_with_input(BenchmarkId::new(label, WORKERS), &chunk, |b, &chunk| {
            b.iter(|| run_mode(chunk))
        });
    }
    group.finish();

    // Scheduling must not change the science: both modes aggregate
    // bit-identically.
    let block = run_mode(0);
    let steal = run_mode(1);
    assert_eq!(
        block.summary, steal.summary,
        "chunking/stealing changed the campaign aggregate"
    );

    let (block_wall, _, _) = median_run(0, 3);
    let (steal_wall, steals, stolen) = median_run(1, 3);
    let speedup = block_wall.as_secs_f64() / steal_wall.as_secs_f64().max(1e-9);
    let cost = skew();
    let json = format!(
        "{{\n  \"bench\": \"skewed_steal\",\n  \"workers\": {WORKERS},\n  \
         \"trials\": {TRIALS},\n  \"shards\": {SHARDS},\n  \
         \"skew_factor\": {:.3},\n  \"block_wall_us\": {},\n  \
         \"steal_wall_us\": {},\n  \"steal_speedup\": {:.3},\n  \
         \"steals\": {},\n  \"chunks_stolen\": {}\n}}\n",
        cost.skew_factor(TRIALS),
        block_wall.as_micros(),
        steal_wall.as_micros(),
        speedup,
        steals,
        stolen
    );
    let path = relcnn_bench::results_dir().join("skewed_steal.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!(
        "\nskewed workload (skew factor {:.1}): whole-shard claiming {block_wall:?}, \
         work stealing {steal_wall:?} => {speedup:.2}x ({steals} steals, {stolen} chunks moved)",
        cost.skew_factor(TRIALS)
    );
    println!("wrote {}", path.display());
    // No perf asserts here: the bench *reports*, `bench_gate` owns the
    // ≥2x / steals>0 floors — so a regressed run still publishes its
    // artefact for the gate (and a human) to diagnose.
}

criterion_group!(benches, bench_skewed_steal);
criterion_main!(benches);
