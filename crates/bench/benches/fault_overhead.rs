//! **X4 companion** — runtime overhead of rollback under increasing fault
//! pressure: the same DMR convolution at BER 0 / 1e-4 / 1e-3. Each
//! detected fault costs one rollback + re-execution, so the slowdown
//! should track `1 + O(ber)` — negligible until faults become frequent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relcnn_faults::{BerInjector, FaultSite};
use relcnn_relexec::conv::{reliable_conv2d, ReliableConvConfig};
use relcnn_relexec::{BucketConfig, DmrAlu, RetryPolicy};
use relcnn_tensor::conv::ConvGeometry;
use relcnn_tensor::init::{Init, Rand};
use relcnn_tensor::Shape;

fn bench_fault_overhead(c: &mut Criterion) {
    let mut rng = Rand::seeded(5);
    let input = rng.tensor(Shape::d3(3, 24, 24), Init::Uniform { lo: -1.0, hi: 1.0 });
    let weights = rng.tensor(Shape::d4(8, 3, 3, 3), Init::HeNormal { fan_in: 27 });
    let geom = ConvGeometry::new(24, 24, 3, 3, 1, 0).expect("geometry");
    // Bucket that tolerates sustained random transients.
    let config = ReliableConvConfig {
        bucket: BucketConfig::new(1, u32::MAX),
        retry: RetryPolicy::with_retries(4),
        pe_count: 8,
    };

    let mut group = c.benchmark_group("fault_overhead");
    group.sample_size(10);
    for ber in [0.0f64, 1e-4, 1e-3] {
        group.bench_with_input(
            BenchmarkId::new("dmr_conv", format!("ber_{ber:.0e}")),
            &ber,
            |b, &ber| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let inj = BerInjector::new(seed, ber)
                        .with_sites(vec![FaultSite::Multiplier, FaultSite::Accumulator]);
                    let mut alu = DmrAlu::new(inj);
                    reliable_conv2d(&input, &weights, None, &geom, &mut alu, &config)
                        .expect("recoverable")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fault_overhead);
criterion_main!(benches);
