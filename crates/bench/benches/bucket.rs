//! Leaky-bucket micro-benchmark: the error counter sits on the critical
//! path of every qualified operation, so its cost must be negligible
//! against a multiply (it is: two integer ops).

use criterion::{criterion_group, criterion_main, Criterion};
use relcnn_relexec::{BucketConfig, LeakyBucket};
use std::hint::black_box;

fn bench_bucket(c: &mut Criterion) {
    let mut group = c.benchmark_group("bucket");
    group.bench_function("success_stream_1k", |b| {
        b.iter(|| {
            let mut bucket = LeakyBucket::new(BucketConfig::default());
            for _ in 0..1000 {
                bucket.record_success();
            }
            black_box(bucket.level())
        })
    });
    group.bench_function("mixed_stream_1k", |b| {
        b.iter(|| {
            let mut bucket = LeakyBucket::new(BucketConfig::new(1, u32::MAX));
            for i in 0..1000u32 {
                if i % 97 == 0 {
                    black_box(bucket.record_error());
                } else {
                    bucket.record_success();
                }
            }
            black_box(bucket.level())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bucket);
criterion_main!(benches);
