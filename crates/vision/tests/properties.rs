//! Property-based tests for the vision substrate.

use proptest::prelude::*;
use relcnn_tensor::{Shape, Tensor};
use relcnn_vision::blob::{connected_components, largest_component};
use relcnn_vision::draw;
use relcnn_vision::radial::radial_signature;
use relcnn_vision::sobel::{extended_sobel, gradient_magnitude, SobelAxis};
use relcnn_vision::threshold::{binarize, foreground_fraction, otsu_threshold};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gradient magnitude is non-negative and zero on constant images.
    #[test]
    fn gradient_magnitude_nonnegative(level in 0.0f32..1.0) {
        let img = Tensor::full(Shape::d2(12, 12), level);
        let mag = gradient_magnitude(&img).unwrap();
        prop_assert!(mag.iter().all(|&v| v >= 0.0));
        prop_assert!(mag.max() < 1e-4);
    }

    /// Extended Sobel kernels of any odd size have zero total sum
    /// (no DC response) and exact antisymmetry.
    #[test]
    fn extended_sobel_zero_dc(half in 1usize..8) {
        let size = 2 * half + 1;
        for axis in [SobelAxis::X, SobelAxis::Y] {
            let k = extended_sobel(size, axis).unwrap();
            prop_assert!(k.sum().abs() < 1e-2, "size {} sum {}", size, k.sum());
        }
    }

    /// Otsu binarisation of a two-level image recovers the bright set
    /// exactly, regardless of the levels chosen.
    #[test]
    fn otsu_recovers_bimodal_split(
        dark in 0.0f32..0.4,
        bright_delta in 0.2f32..0.6,
        bright_count in 20usize..200,
    ) {
        let bright = dark + bright_delta;
        let n = 256usize;
        let mut data = vec![dark; n];
        for v in data.iter_mut().take(bright_count) {
            *v = bright;
        }
        let t = Tensor::from_vec(Shape::d1(n), data).unwrap();
        let thr = otsu_threshold(&t);
        let frac = foreground_fraction(&t, thr);
        prop_assert!(
            (frac - bright_count as f32 / n as f32).abs() < 1e-6,
            "split fraction {} vs expected {}",
            frac,
            bright_count as f32 / n as f32
        );
    }

    /// A single filled circle yields exactly one connected component whose
    /// area matches the drawn area and whose centroid is the centre.
    #[test]
    fn circle_component_properties(
        cx in 20.0f32..44.0,
        cy in 20.0f32..44.0,
        r in 5.0f32..12.0,
    ) {
        let mut mask = Tensor::zeros(Shape::d2(64, 64));
        draw::fill_circle(&mut mask, (cx, cy), r, 1.0);
        let blobs = connected_components(&mask).unwrap();
        prop_assert_eq!(blobs.len(), 1);
        let blob = largest_component(&mask).unwrap();
        prop_assert_eq!(blob.area() as f32, mask.sum());
        let (by, bx) = blob.centroid();
        prop_assert!((bx - (cx - 0.5)).abs() < 1.0, "cx {} vs {}", bx, cx);
        prop_assert!((by - (cy - 0.5)).abs() < 1.0);
    }

    /// The radial signature of a filled regular polygon has ratio close to
    /// the analytic 1/cos(pi/k), for any rotation.
    #[test]
    fn polygon_radial_ratio_analytic(
        sides in prop::sample::select(vec![3usize, 4, 6, 8]),
        rotation in 0.0f32..std::f32::consts::TAU,
    ) {
        let mut mask = Tensor::zeros(Shape::d2(160, 160));
        draw::fill_regular_polygon(&mut mask, sides, (80.0, 80.0), 60.0, rotation, 1.0);
        let sig = radial_signature(&mask, 256).unwrap();
        let analytic = 1.0 / (std::f32::consts::PI / sides as f32).cos();
        // Half-pixel ray quantisation + centroid rounding: sharper corners
        // (triangles) carry the largest relative error.
        prop_assert!(
            (sig.radial_ratio() - analytic).abs() < analytic * 0.08,
            "{}-gon ratio {} vs analytic {}",
            sides,
            sig.radial_ratio(),
            analytic
        );
    }

    /// Binarize is idempotent: thresholding an already-binary mask with
    /// any threshold in (0,1) returns the same mask.
    #[test]
    fn binarize_idempotent(thr in 0.01f32..0.99) {
        let mut mask = Tensor::zeros(Shape::d2(16, 16));
        draw::fill_circle(&mut mask, (8.0, 8.0), 5.0, 1.0);
        let once = binarize(&mask, thr);
        let twice = binarize(&once, thr);
        prop_assert_eq!(once, twice);
    }
}
