//! Rasterisation primitives: filled polygons, circles and strokes on
//! grayscale or CHW colour tensors.
//!
//! These back both the vision test-suite and the synthetic GTSRB renderer
//! (`relcnn-gtsrb`), which draws traffic-sign geometry with them.

use crate::Rgb;
use relcnn_tensor::Tensor;

/// Vertices of a regular polygon with `sides` sides, circumradius `radius`,
/// centred at `(cx, cy)` and rotated by `rotation` radians.
///
/// Vertices are ordered counter-clockwise in image coordinates (x right,
/// y down). Returns an empty vector when `sides < 3`.
pub fn regular_polygon(
    sides: usize,
    center: (f32, f32),
    radius: f32,
    rotation: f32,
) -> Vec<(f32, f32)> {
    if sides < 3 {
        return Vec::new();
    }
    (0..sides)
        .map(|i| {
            let theta = rotation + std::f32::consts::TAU * i as f32 / sides as f32;
            (
                center.0 + radius * theta.cos(),
                center.1 + radius * theta.sin(),
            )
        })
        .collect()
}

/// Tests whether a point lies inside a polygon (even-odd rule).
pub fn point_in_polygon(point: (f32, f32), vertices: &[(f32, f32)]) -> bool {
    let (px, py) = point;
    let mut inside = false;
    let n = vertices.len();
    if n < 3 {
        return false;
    }
    let mut j = n - 1;
    for i in 0..n {
        let (xi, yi) = vertices[i];
        let (xj, yj) = vertices[j];
        if ((yi > py) != (yj > py)) && (px < (xj - xi) * (py - yi) / (yj - yi) + xi) {
            inside = !inside;
        }
        j = i;
    }
    inside
}

/// Iterates pixel centres inside the polygon's bounding box, invoking `f`
/// for those inside the polygon.
fn for_each_polygon_pixel(
    dims: (usize, usize),
    vertices: &[(f32, f32)],
    mut f: impl FnMut(usize, usize),
) {
    if vertices.len() < 3 {
        return;
    }
    let (h, w) = dims;
    let min_x = vertices.iter().map(|v| v.0).fold(f32::INFINITY, f32::min);
    let max_x = vertices
        .iter()
        .map(|v| v.0)
        .fold(f32::NEG_INFINITY, f32::max);
    let min_y = vertices.iter().map(|v| v.1).fold(f32::INFINITY, f32::min);
    let max_y = vertices
        .iter()
        .map(|v| v.1)
        .fold(f32::NEG_INFINITY, f32::max);
    let x0 = (min_x.floor().max(0.0)) as usize;
    let x1 = (max_x.ceil().min(w as f32 - 1.0)).max(0.0) as usize;
    let y0 = (min_y.floor().max(0.0)) as usize;
    let y1 = (max_y.ceil().min(h as f32 - 1.0)).max(0.0) as usize;
    for y in y0..=y1.min(h.saturating_sub(1)) {
        for x in x0..=x1.min(w.saturating_sub(1)) {
            if point_in_polygon((x as f32 + 0.5, y as f32 + 0.5), vertices) {
                f(x, y);
            }
        }
    }
}

/// Fills a polygon on a grayscale `[h, w]` image with `value`.
///
/// Out-of-range vertices are clipped to the image; polygons with fewer
/// than three vertices draw nothing.
///
/// # Panics
///
/// Panics if `image` is not rank 2.
pub fn fill_polygon(image: &mut Tensor, vertices: &[(f32, f32)], value: f32) {
    assert_eq!(image.shape().rank(), 2, "fill_polygon needs a [h,w] image");
    let (h, w) = (image.shape().dim(0), image.shape().dim(1));
    let data = image.as_mut_slice();
    for_each_polygon_pixel((h, w), vertices, |x, y| {
        data[y * w + x] = value;
    });
}

/// Fills a regular polygon on a grayscale image — convenience wrapper
/// combining [`regular_polygon`] and [`fill_polygon`].
///
/// # Panics
///
/// Panics if `image` is not rank 2.
pub fn fill_regular_polygon(
    image: &mut Tensor,
    sides: usize,
    center: (f32, f32),
    radius: f32,
    rotation: f32,
    value: f32,
) {
    let vertices = regular_polygon(sides, center, radius, rotation);
    fill_polygon(image, &vertices, value);
}

/// Fills a polygon on a `[3, h, w]` colour image.
///
/// # Panics
///
/// Panics if `image` is not `[3, h, w]`.
pub fn fill_polygon_rgb(image: &mut Tensor, vertices: &[(f32, f32)], color: Rgb) {
    assert!(
        image.shape().rank() == 3 && image.shape().dim(0) == 3,
        "fill_polygon_rgb needs a [3,h,w] image"
    );
    let (h, w) = (image.shape().dim(1), image.shape().dim(2));
    let plane = h * w;
    let data = image.as_mut_slice();
    for_each_polygon_pixel((h, w), vertices, |x, y| {
        data[y * w + x] = color.r;
        data[plane + y * w + x] = color.g;
        data[2 * plane + y * w + x] = color.b;
    });
}

/// Fills a circle on a grayscale image.
///
/// # Panics
///
/// Panics if `image` is not rank 2.
pub fn fill_circle(image: &mut Tensor, center: (f32, f32), radius: f32, value: f32) {
    assert_eq!(image.shape().rank(), 2, "fill_circle needs a [h,w] image");
    let (h, w) = (image.shape().dim(0), image.shape().dim(1));
    let data = image.as_mut_slice();
    for_each_circle_pixel((h, w), center, radius, |x, y| {
        data[y * w + x] = value;
    });
}

/// Fills a circle on a `[3, h, w]` colour image.
///
/// # Panics
///
/// Panics if `image` is not `[3, h, w]`.
pub fn fill_circle_rgb(image: &mut Tensor, center: (f32, f32), radius: f32, color: Rgb) {
    assert!(
        image.shape().rank() == 3 && image.shape().dim(0) == 3,
        "fill_circle_rgb needs a [3,h,w] image"
    );
    let (h, w) = (image.shape().dim(1), image.shape().dim(2));
    let plane = h * w;
    let data = image.as_mut_slice();
    for_each_circle_pixel((h, w), center, radius, |x, y| {
        data[y * w + x] = color.r;
        data[plane + y * w + x] = color.g;
        data[2 * plane + y * w + x] = color.b;
    });
}

fn for_each_circle_pixel(
    dims: (usize, usize),
    center: (f32, f32),
    radius: f32,
    mut f: impl FnMut(usize, usize),
) {
    if radius <= 0.0 {
        return;
    }
    let (h, w) = dims;
    let (cx, cy) = center;
    let x0 = ((cx - radius).floor().max(0.0)) as usize;
    let x1 = ((cx + radius).ceil().min(w as f32 - 1.0)).max(0.0) as usize;
    let y0 = ((cy - radius).floor().max(0.0)) as usize;
    let y1 = ((cy + radius).ceil().min(h as f32 - 1.0)).max(0.0) as usize;
    let r2 = radius * radius;
    for y in y0..=y1.min(h.saturating_sub(1)) {
        for x in x0..=x1.min(w.saturating_sub(1)) {
            let dx = x as f32 + 0.5 - cx;
            let dy = y as f32 + 0.5 - cy;
            if dx * dx + dy * dy <= r2 {
                f(x, y);
            }
        }
    }
}

/// Fills the whole image with a constant colour.
///
/// # Panics
///
/// Panics if `image` is not `[3, h, w]`.
pub fn fill_rgb(image: &mut Tensor, color: Rgb) {
    assert!(
        image.shape().rank() == 3 && image.shape().dim(0) == 3,
        "fill_rgb needs a [3,h,w] image"
    );
    let plane = image.shape().dim(1) * image.shape().dim(2);
    let data = image.as_mut_slice();
    for i in 0..plane {
        data[i] = color.r;
        data[plane + i] = color.g;
        data[2 * plane + i] = color.b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcnn_tensor::Shape;

    #[test]
    fn regular_polygon_geometry() {
        let sq = regular_polygon(4, (0.0, 0.0), 1.0, 0.0);
        assert_eq!(sq.len(), 4);
        for (x, y) in &sq {
            assert!(((x * x + y * y).sqrt() - 1.0).abs() < 1e-5);
        }
        assert!(regular_polygon(2, (0.0, 0.0), 1.0, 0.0).is_empty());
    }

    #[test]
    fn point_in_polygon_square() {
        let sq = vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)];
        assert!(point_in_polygon((5.0, 5.0), &sq));
        assert!(!point_in_polygon((-1.0, 5.0), &sq));
        assert!(!point_in_polygon((5.0, 11.0), &sq));
        assert!(!point_in_polygon((5.0, 5.0), &sq[..2]));
    }

    #[test]
    fn fill_polygon_area_close_to_analytic() {
        let mut img = Tensor::zeros(Shape::d2(100, 100));
        // A 60x40 axis-aligned rectangle.
        let rect = vec![(20.0, 30.0), (80.0, 30.0), (80.0, 70.0), (20.0, 70.0)];
        fill_polygon(&mut img, &rect, 1.0);
        let area = img.sum();
        assert!((area - 2400.0).abs() < 150.0, "area {area}");
    }

    #[test]
    fn fill_octagon_area() {
        let mut img = Tensor::zeros(Shape::d2(128, 128));
        fill_regular_polygon(&mut img, 8, (64.0, 64.0), 40.0, 0.0, 1.0);
        // Regular octagon area = 2*sqrt(2)*R^2 with circumradius R.
        let analytic = 2.0 * 2.0f32.sqrt() * 40.0 * 40.0;
        let area = img.sum();
        assert!(
            (area - analytic).abs() / analytic < 0.05,
            "area {area} vs analytic {analytic}"
        );
    }

    #[test]
    fn fill_circle_area() {
        let mut img = Tensor::zeros(Shape::d2(100, 100));
        fill_circle(&mut img, (50.0, 50.0), 30.0, 1.0);
        let analytic = std::f32::consts::PI * 30.0 * 30.0;
        let area = img.sum();
        assert!((area - analytic).abs() / analytic < 0.03, "area {area}");
        // Zero radius draws nothing.
        let mut img2 = Tensor::zeros(Shape::d2(10, 10));
        fill_circle(&mut img2, (5.0, 5.0), 0.0, 1.0);
        assert_eq!(img2.sum(), 0.0);
    }

    #[test]
    fn clipping_out_of_bounds_shapes() {
        let mut img = Tensor::zeros(Shape::d2(20, 20));
        fill_circle(&mut img, (0.0, 0.0), 10.0, 1.0);
        assert!(img.sum() > 0.0, "clipped quarter-circle drawn");
        fill_regular_polygon(&mut img, 4, (30.0, 30.0), 5.0, 0.0, 1.0);
        // Entirely outside: no panic, no change beyond the circle.
    }

    #[test]
    fn rgb_fills() {
        let mut img = Tensor::zeros(Shape::d3(3, 16, 16));
        fill_rgb(&mut img, Rgb::gray(0.5));
        assert!((img.mean() - 0.5).abs() < 1e-6);
        fill_circle_rgb(&mut img, (8.0, 8.0), 4.0, Rgb::sign_red());
        fill_polygon_rgb(
            &mut img,
            &regular_polygon(3, (8.0, 8.0), 3.0, 0.0),
            Rgb::white(),
        );
        // Centre pixel is white (triangle on top of circle).
        assert!((img.get(&[0, 8, 8]) - 1.0).abs() < 1e-6);
        assert!((img.get(&[1, 8, 8]) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "needs a [h,w] image")]
    fn fill_polygon_rejects_rgb_tensor() {
        let mut img = Tensor::zeros(Shape::d3(3, 8, 8));
        fill_polygon(&mut img, &[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0)], 1.0);
    }
}
