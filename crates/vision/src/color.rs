use crate::VisionError;
use relcnn_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// An RGB colour with components in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rgb {
    /// Red component.
    pub r: f32,
    /// Green component.
    pub g: f32,
    /// Blue component.
    pub b: f32,
}

impl Rgb {
    /// Creates a colour, clamping components into `[0, 1]`.
    pub fn new(r: f32, g: f32, b: f32) -> Self {
        Rgb {
            r: r.clamp(0.0, 1.0),
            g: g.clamp(0.0, 1.0),
            b: b.clamp(0.0, 1.0),
        }
    }

    /// Traffic-sign red (approximates RAL 3020, the European sign red).
    pub fn sign_red() -> Self {
        Rgb::new(0.80, 0.08, 0.10)
    }

    /// Traffic-sign blue (RAL 5017).
    pub fn sign_blue() -> Self {
        Rgb::new(0.0, 0.26, 0.56)
    }

    /// Plain white.
    pub fn white() -> Self {
        Rgb::new(1.0, 1.0, 1.0)
    }

    /// Plain black.
    pub fn black() -> Self {
        Rgb::new(0.0, 0.0, 0.0)
    }

    /// Uniform gray of the given level.
    pub fn gray(level: f32) -> Self {
        Rgb::new(level, level, level)
    }

    /// ITU-R BT.601 luma of the colour.
    pub fn luma(&self) -> f32 {
        0.299 * self.r + 0.587 * self.g + 0.114 * self.b
    }

    /// Linear interpolation towards `other` (`t` clamped to `[0, 1]`).
    pub fn lerp(&self, other: Rgb, t: f32) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        Rgb::new(
            self.r + (other.r - self.r) * t,
            self.g + (other.g - self.g) * t,
            self.b + (other.b - self.b) * t,
        )
    }
}

/// Converts a `[3, h, w]` CHW colour image to a `[h, w]` grayscale image
/// using BT.601 luma weights — the deterministic first step of the
/// qualifier's edge pipeline.
///
/// # Errors
///
/// Returns [`VisionError::NotRgb`] unless the input is `[3, h, w]`.
pub fn rgb_to_gray(image: &Tensor) -> Result<Tensor, VisionError> {
    if image.shape().rank() != 3 || image.shape().dim(0) != 3 {
        return Err(VisionError::NotRgb {
            dims: image.shape().dims().to_vec(),
        });
    }
    let (h, w) = (image.shape().dim(1), image.shape().dim(2));
    let plane = h * w;
    let x = image.as_slice();
    let mut out = Vec::with_capacity(plane);
    for i in 0..plane {
        out.push(0.299 * x[i] + 0.587 * x[plane + i] + 0.114 * x[2 * plane + i]);
    }
    Ok(Tensor::from_vec(Shape::d2(h, w), out).expect("buffer sized to plane"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping_and_luma() {
        let c = Rgb::new(2.0, -1.0, 0.5);
        assert_eq!((c.r, c.g, c.b), (1.0, 0.0, 0.5));
        assert!((Rgb::white().luma() - 1.0).abs() < 1e-6);
        assert_eq!(Rgb::black().luma(), 0.0);
        // Green dominates perceived brightness.
        assert!(Rgb::new(0.0, 1.0, 0.0).luma() > Rgb::new(1.0, 0.0, 0.0).luma());
    }

    #[test]
    fn lerp_endpoints() {
        let a = Rgb::black();
        let b = Rgb::white();
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Rgb::gray(0.5));
        assert_eq!(a.lerp(b, 7.0), b, "t clamped");
    }

    #[test]
    fn gray_conversion_known_values() {
        let mut img = Tensor::zeros(Shape::d3(3, 1, 2));
        // Pixel 0: pure red; pixel 1: white.
        img.set(&[0, 0, 0], 1.0);
        img.set(&[0, 0, 1], 1.0);
        img.set(&[1, 0, 1], 1.0);
        img.set(&[2, 0, 1], 1.0);
        let gray = rgb_to_gray(&img).unwrap();
        assert!((gray.get(&[0, 0]) - 0.299).abs() < 1e-6);
        assert!((gray.get(&[0, 1]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gray_conversion_rejects_bad_shapes() {
        assert!(rgb_to_gray(&Tensor::zeros(Shape::d2(4, 4))).is_err());
        assert!(rgb_to_gray(&Tensor::zeros(Shape::d3(1, 4, 4))).is_err());
    }

    #[test]
    fn sign_palette_distinct() {
        assert_ne!(Rgb::sign_red(), Rgb::sign_blue());
        assert!(Rgb::sign_red().r > Rgb::sign_red().g);
        assert!(Rgb::sign_blue().b > Rgb::sign_blue().r);
    }
}
