//! Connected-component analysis of binary masks.
//!
//! The qualifier isolates the candidate sign as the largest connected
//! component of the edge mask before computing its centroid and radial
//! signature, so background clutter cannot perturb the shape word.

use crate::VisionError;
use relcnn_tensor::{Shape, Tensor};
use std::collections::VecDeque;

/// A connected component of foreground pixels.
#[derive(Debug, Clone, PartialEq)]
pub struct Blob {
    /// Pixel coordinates `(y, x)` belonging to the component.
    pixels: Vec<(usize, usize)>,
    /// Bounding box `(min_y, min_x, max_y, max_x)`.
    bbox: (usize, usize, usize, usize),
}

impl Blob {
    /// Number of pixels in the component.
    pub fn area(&self) -> usize {
        self.pixels.len()
    }

    /// The component's pixels as `(y, x)` pairs.
    pub fn pixels(&self) -> &[(usize, usize)] {
        &self.pixels
    }

    /// Bounding box `(min_y, min_x, max_y, max_x)` (inclusive).
    pub fn bbox(&self) -> (usize, usize, usize, usize) {
        self.bbox
    }

    /// Centroid `(cy, cx)` of the component.
    pub fn centroid(&self) -> (f32, f32) {
        let n = self.pixels.len() as f32;
        let (sy, sx) = self
            .pixels
            .iter()
            .fold((0.0f32, 0.0f32), |(sy, sx), &(y, x)| {
                (sy + y as f32, sx + x as f32)
            });
        (sy / n, sx / n)
    }

    /// Renders the component back into a fresh binary mask of shape
    /// `[h, w]`.
    pub fn to_mask(&self, h: usize, w: usize) -> Tensor {
        let mut mask = Tensor::zeros(Shape::d2(h, w));
        for &(y, x) in &self.pixels {
            if y < h && x < w {
                mask.set(&[y, x], 1.0);
            }
        }
        mask
    }
}

/// Labels all 8-connected components of foreground (`> 0.5`) pixels.
///
/// # Errors
///
/// Returns [`VisionError::NotGrayscale`] for non-rank-2 input.
pub fn connected_components(mask: &Tensor) -> Result<Vec<Blob>, VisionError> {
    if mask.shape().rank() != 2 {
        return Err(VisionError::NotGrayscale {
            rank: mask.shape().rank(),
        });
    }
    let (h, w) = (mask.shape().dim(0), mask.shape().dim(1));
    let data = mask.as_slice();
    let mut visited = vec![false; h * w];
    let mut blobs = Vec::new();

    for start in 0..h * w {
        if visited[start] || data[start] <= 0.5 {
            continue;
        }
        // BFS flood fill with 8-connectivity.
        let mut pixels = Vec::new();
        let mut queue = VecDeque::new();
        queue.push_back(start);
        visited[start] = true;
        let (mut min_y, mut min_x, mut max_y, mut max_x) = (h, w, 0usize, 0usize);
        while let Some(p) = queue.pop_front() {
            let (y, x) = (p / w, p % w);
            pixels.push((y, x));
            min_y = min_y.min(y);
            min_x = min_x.min(x);
            max_y = max_y.max(y);
            max_x = max_x.max(x);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dy == 0 && dx == 0 {
                        continue;
                    }
                    let ny = y as i64 + dy;
                    let nx = x as i64 + dx;
                    if ny < 0 || nx < 0 || ny >= h as i64 || nx >= w as i64 {
                        continue;
                    }
                    let np = ny as usize * w + nx as usize;
                    if !visited[np] && data[np] > 0.5 {
                        visited[np] = true;
                        queue.push_back(np);
                    }
                }
            }
        }
        blobs.push(Blob {
            pixels,
            bbox: (min_y, min_x, max_y, max_x),
        });
    }
    Ok(blobs)
}

/// Returns the largest connected component of the mask.
///
/// # Errors
///
/// * [`VisionError::EmptyMask`] when the mask has no foreground;
/// * [`VisionError::NotGrayscale`] for non-rank-2 input.
pub fn largest_component(mask: &Tensor) -> Result<Blob, VisionError> {
    connected_components(mask)?
        .into_iter()
        .max_by_key(Blob::area)
        .ok_or(VisionError::EmptyMask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::draw;

    #[test]
    fn single_blob_found_with_centroid() {
        let mut mask = Tensor::zeros(Shape::d2(32, 32));
        draw::fill_circle(&mut mask, (16.0, 16.0), 6.0, 1.0);
        let blobs = connected_components(&mask).unwrap();
        assert_eq!(blobs.len(), 1);
        let (cy, cx) = blobs[0].centroid();
        assert!((cy - 15.5).abs() < 1.0, "cy {cy}");
        assert!((cx - 15.5).abs() < 1.0, "cx {cx}");
    }

    #[test]
    fn separates_distinct_blobs() {
        let mut mask = Tensor::zeros(Shape::d2(32, 32));
        draw::fill_circle(&mut mask, (8.0, 8.0), 3.0, 1.0);
        draw::fill_circle(&mut mask, (24.0, 24.0), 5.0, 1.0);
        let blobs = connected_components(&mask).unwrap();
        assert_eq!(blobs.len(), 2);
        let largest = largest_component(&mask).unwrap();
        let (cy, cx) = largest.centroid();
        assert!(cy > 16.0 && cx > 16.0, "largest is the radius-5 circle");
    }

    #[test]
    fn diagonal_pixels_are_connected() {
        let mut mask = Tensor::zeros(Shape::d2(4, 4));
        mask.set(&[0, 0], 1.0);
        mask.set(&[1, 1], 1.0);
        mask.set(&[2, 2], 1.0);
        let blobs = connected_components(&mask).unwrap();
        assert_eq!(blobs.len(), 1, "8-connectivity joins diagonals");
        assert_eq!(blobs[0].area(), 3);
    }

    #[test]
    fn empty_mask_errors() {
        let mask = Tensor::zeros(Shape::d2(8, 8));
        assert_eq!(connected_components(&mask).unwrap().len(), 0);
        assert!(matches!(
            largest_component(&mask),
            Err(VisionError::EmptyMask)
        ));
    }

    #[test]
    fn bbox_and_mask_roundtrip() {
        let mut mask = Tensor::zeros(Shape::d2(16, 16));
        draw::fill_polygon(
            &mut mask,
            &[(4.0, 4.0), (12.0, 4.0), (12.0, 10.0), (4.0, 10.0)],
            1.0,
        );
        let blob = largest_component(&mask).unwrap();
        let (min_y, min_x, max_y, max_x) = blob.bbox();
        assert!(min_y >= 4 && min_x >= 4);
        assert!(max_y <= 10 && max_x <= 12);
        let rendered = blob.to_mask(16, 16);
        assert_eq!(rendered, mask);
    }

    #[test]
    fn rejects_rgb_input() {
        let rgb = Tensor::zeros(Shape::d3(3, 4, 4));
        assert!(connected_components(&rgb).is_err());
    }

    #[test]
    fn blob_ring_shape_centroid_is_centre() {
        // An edge ring (not filled): centroid still the centre.
        let mut filled = Tensor::zeros(Shape::d2(64, 64));
        draw::fill_circle(&mut filled, (32.0, 32.0), 20.0, 1.0);
        let edges = crate::sobel::gradient_magnitude(&filled).unwrap();
        let mask = crate::threshold::binarize(&edges, 0.5);
        let blob = largest_component(&mask).unwrap();
        let (cy, cx) = blob.centroid();
        assert!((cy - 31.5).abs() < 1.5);
        assert!((cx - 31.5).abs() < 1.5);
    }
}
