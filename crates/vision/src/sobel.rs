//! Sobel edge detection.
//!
//! The paper replaces learnt AlexNet filters with "a Sobel-x, Sobel-y,
//! Sobel-x filter" bank (§III-B) and uses Sobel edges as the front end of
//! the shape qualifier. This module provides the classic 3×3 kernels, the
//! binomially *extended* Sobel of arbitrary odd size (needed to substitute
//! an 11×11 AlexNet filter), gradient computation and the Sobel filter
//! bank in OIHW layout.

use crate::VisionError;
use relcnn_tensor::{Shape, Tensor};

/// The classic 3×3 Sobel-x kernel (detects vertical edges).
pub const SOBEL_X_3X3: [[f32; 3]; 3] = [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]];

/// The classic 3×3 Sobel-y kernel (detects horizontal edges).
pub const SOBEL_Y_3X3: [[f32; 3]; 3] = [[-1.0, -2.0, -1.0], [0.0, 0.0, 0.0], [1.0, 2.0, 1.0]];

/// Axis of a Sobel derivative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SobelAxis {
    /// Derivative along x (responds to vertical edges).
    X,
    /// Derivative along y (responds to horizontal edges).
    Y,
}

/// Row `n` of Pascal's triangle (binomial smoothing coefficients).
fn pascal_row(n: usize) -> Vec<f32> {
    let mut row = vec![1.0f32];
    for k in 1..=n {
        let prev = row[k - 1] as f64;
        row.push((prev * (n - k + 1) as f64 / k as f64) as f32);
    }
    row
}

/// First-difference of Pascal's triangle: the derivative kernel of the
/// extended Sobel construction (`diff(n)[k] = C(n-1,k-1) - C(n-1,k)` with
/// out-of-range binomials zero). For `n = 2` this is `[1, 0, -1]`.
fn pascal_diff_row(n: usize) -> Vec<f32> {
    let base = pascal_row(n.saturating_sub(1));
    let at = |i: isize| -> f32 {
        if i < 0 || i as usize >= base.len() {
            0.0
        } else {
            base[i as usize]
        }
    };
    (0..=n as isize).map(|k| at(k - 1) - at(k)).collect()
}

/// The extended Sobel kernel of odd size `size` along `axis`, built as the
/// outer product of a binomial smoothing vector and a binomial-difference
/// derivative vector (the standard generalisation that reduces to the
/// classic kernels at `size = 3`).
///
/// Returned in sign convention matching [`SOBEL_X_3X3`]/[`SOBEL_Y_3X3`]:
/// response is positive for dark→bright transitions along +x / +y.
///
/// # Errors
///
/// Returns [`VisionError::BadParameter`] unless `size` is odd and `>= 3`.
pub fn extended_sobel(size: usize, axis: SobelAxis) -> Result<Tensor, VisionError> {
    if size < 3 || size.is_multiple_of(2) {
        return Err(VisionError::BadParameter {
            reason: format!("sobel size must be odd and >= 3, got {size}"),
        });
    }
    let smooth = pascal_row(size - 1);
    // pascal_diff already yields the classic [-1, 0, 1] orientation at
    // size 3 (positive response for dark->bright transitions).
    let deriv = pascal_diff_row(size - 1);
    let mut out = Tensor::zeros(Shape::d2(size, size));
    for y in 0..size {
        for x in 0..size {
            let v = match axis {
                SobelAxis::X => smooth[y] * deriv[x],
                SobelAxis::Y => deriv[y] * smooth[x],
            };
            out.set(&[y, x], v);
        }
    }
    Ok(out)
}

/// Convolves a grayscale image with one Sobel kernel. Same-size output
/// with *replicate* (clamp-to-edge) border handling — zero padding would
/// manufacture a strong phantom edge along the image frame, which the
/// qualifier's largest-component step could then mistake for the sign.
///
/// # Errors
///
/// Returns [`VisionError::NotGrayscale`] for non-rank-2 input.
pub fn sobel_response(image: &Tensor, axis: SobelAxis) -> Result<Tensor, VisionError> {
    if image.shape().rank() != 2 {
        return Err(VisionError::NotGrayscale {
            rank: image.shape().rank(),
        });
    }
    let (h, w) = (image.shape().dim(0), image.shape().dim(1));
    let kernel = extended_sobel(3, axis)?;
    let k = kernel.as_slice();
    let x = image.as_slice();
    let mut out = vec![0.0f32; h * w];
    for y in 0..h {
        for xx in 0..w {
            let mut acc = 0.0f32;
            for ky in 0..3usize {
                let iy = (y as isize + ky as isize - 1).clamp(0, h as isize - 1) as usize;
                for kx in 0..3usize {
                    let ix = (xx as isize + kx as isize - 1).clamp(0, w as isize - 1) as usize;
                    acc += x[iy * w + ix] * k[ky * 3 + kx];
                }
            }
            out[y * w + xx] = acc;
        }
    }
    Ok(Tensor::from_vec(image.shape().clone(), out)?)
}

/// Gradient magnitude `sqrt(gx² + gy²)` of a grayscale image — the edge
/// map feeding the qualifier's radial scan.
///
/// # Errors
///
/// Returns [`VisionError::NotGrayscale`] for non-rank-2 input.
pub fn gradient_magnitude(image: &Tensor) -> Result<Tensor, VisionError> {
    let gx = sobel_response(image, SobelAxis::X)?;
    let gy = sobel_response(image, SobelAxis::Y)?;
    let data = gx
        .iter()
        .zip(gy.iter())
        .map(|(&x, &y)| (x * x + y * y).sqrt())
        .collect();
    Ok(Tensor::from_vec(image.shape().clone(), data)?)
}

/// The paper's replacement bank for one `in_c`-channel conv filter: channel
/// 0 gets Sobel-x, channel 1 Sobel-y, channel 2 Sobel-x again ("we naively
/// replace the first of the filters with a Sobel-x, Sobel-y, Sobel-x
/// filter"), continuing to alternate x/y for any further channels. Shape
/// `[in_c, k, k]`, scaled so each channel has unit L2 norm (keeping the
/// replaced filter's response in the numeric range of its learnt peers).
///
/// # Errors
///
/// Returns [`VisionError::BadParameter`] for even or tiny kernel sizes, or
/// zero channels.
pub fn sobel_bank(in_c: usize, k: usize) -> Result<Tensor, VisionError> {
    if in_c == 0 {
        return Err(VisionError::BadParameter {
            reason: "filter bank needs at least one channel".into(),
        });
    }
    let sx = extended_sobel(k, SobelAxis::X)?;
    let sy = extended_sobel(k, SobelAxis::Y)?;
    let normalise = |t: &Tensor| {
        let n = t.norm();
        if n > 0.0 {
            t.scale(1.0 / n)
        } else {
            t.clone()
        }
    };
    let sx = normalise(&sx);
    let sy = normalise(&sy);
    let mut out = Tensor::zeros(Shape::d3(in_c, k, k));
    for c in 0..in_c {
        // x, y, x, y, … starting with x (paper: Sobel-x, Sobel-y, Sobel-x).
        let src = if c % 2 == 0 { &sx } else { &sy };
        for y in 0..k {
            for x in 0..k {
                out.set(&[c, y, x], src.get(&[y, x]));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::draw;

    #[test]
    fn extended_sobel_3_matches_classic() {
        let sx = extended_sobel(3, SobelAxis::X).unwrap();
        let sy = extended_sobel(3, SobelAxis::Y).unwrap();
        for y in 0..3 {
            for x in 0..3 {
                assert_eq!(sx.get(&[y, x]), SOBEL_X_3X3[y][x], "x kernel at {y},{x}");
                assert_eq!(sy.get(&[y, x]), SOBEL_Y_3X3[y][x], "y kernel at {y},{x}");
            }
        }
    }

    #[test]
    fn extended_sobel_properties() {
        for size in [5usize, 7, 11] {
            let sx = extended_sobel(size, SobelAxis::X).unwrap();
            // Rows sum to zero (derivative along x).
            for y in 0..size {
                let row_sum: f32 = (0..size).map(|x| sx.get(&[y, x])).sum();
                assert!(row_sum.abs() < 1e-3, "size {size} row {y} sums {row_sum}");
            }
            // Antisymmetric in x.
            for y in 0..size {
                for x in 0..size {
                    let a = sx.get(&[y, x]);
                    let b = sx.get(&[y, size - 1 - x]);
                    assert!((a + b).abs() < 1e-3);
                }
            }
            // Transpose relation between the two axes.
            let sy = extended_sobel(size, SobelAxis::Y).unwrap();
            for y in 0..size {
                for x in 0..size {
                    assert_eq!(sx.get(&[y, x]), sy.get(&[x, y]));
                }
            }
        }
    }

    #[test]
    fn rejects_even_or_tiny_sizes() {
        assert!(extended_sobel(2, SobelAxis::X).is_err());
        assert!(extended_sobel(4, SobelAxis::X).is_err());
        assert!(extended_sobel(1, SobelAxis::Y).is_err());
    }

    #[test]
    fn responds_to_step_edges_with_correct_sign() {
        // Vertical step: dark left, bright right -> positive gx at the edge.
        let img = Tensor::from_fn(Shape::d2(8, 8), |i| if i[1] >= 4 { 1.0 } else { 0.0 });
        let gx = sobel_response(&img, SobelAxis::X).unwrap();
        assert!(gx.get(&[4, 4]) > 0.0);
        let gy = sobel_response(&img, SobelAxis::Y).unwrap();
        // No horizontal edge in the interior.
        assert!(gy.get(&[4, 4]).abs() < 1e-5);
    }

    #[test]
    fn gradient_magnitude_peaks_on_shape_boundary() {
        let mut img = Tensor::zeros(Shape::d2(64, 64));
        draw::fill_circle(&mut img, (32.0, 32.0), 20.0, 1.0);
        let mag = gradient_magnitude(&img).unwrap();
        // Interior and far exterior are flat.
        assert!(mag.get(&[32, 32]).abs() < 1e-5);
        assert!(mag.get(&[2, 2]).abs() < 1e-5);
        // Boundary pixels respond.
        assert!(mag.get(&[32, 12]) > 1.0);
    }

    #[test]
    fn gradient_magnitude_constant_image_is_zero_everywhere() {
        // Replicate border handling: a constant image has no gradient,
        // including at the frame (no zero-padding phantom edge).
        let img = Tensor::full(Shape::d2(16, 16), 0.7);
        let mag = gradient_magnitude(&img).unwrap();
        assert!(mag.max() < 1e-5);
    }

    #[test]
    fn rejects_non_grayscale() {
        let rgb = Tensor::zeros(Shape::d3(3, 8, 8));
        assert!(sobel_response(&rgb, SobelAxis::X).is_err());
        assert!(gradient_magnitude(&rgb).is_err());
    }

    #[test]
    fn sobel_bank_layout_and_norms() {
        let bank = sobel_bank(3, 11).unwrap();
        assert_eq!(bank.shape().dims(), &[3, 11, 11]);
        // Channels 0 and 2 identical (x), channel 1 differs (y).
        let c0 = bank.index_axis0(0).unwrap();
        let c1 = bank.index_axis0(1).unwrap();
        let c2 = bank.index_axis0(2).unwrap();
        assert_eq!(c0, c2);
        assert_ne!(c0, c1);
        for c in [c0, c1, c2] {
            assert!((c.norm() - 1.0).abs() < 1e-4, "unit-norm channels");
        }
        assert!(sobel_bank(0, 3).is_err());
        assert!(sobel_bank(3, 4).is_err());
    }
}
