use relcnn_tensor::TensorError;
use std::fmt;

/// Error type for image-processing operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VisionError {
    /// The operation requires a rank-2 grayscale image.
    NotGrayscale {
        /// Rank of the offending tensor.
        rank: usize,
    },
    /// The operation requires a rank-3 CHW colour image with 3 channels.
    NotRgb {
        /// Dims of the offending tensor.
        dims: Vec<usize>,
    },
    /// The binary mask contained no foreground pixels, so no shape can be
    /// determined.
    EmptyMask,
    /// A parameter was out of its valid range.
    BadParameter {
        /// Description of the violation.
        reason: String,
    },
    /// Error propagated from the tensor substrate.
    Tensor(TensorError),
}

impl fmt::Display for VisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VisionError::NotGrayscale { rank } => {
                write!(f, "expected a rank-2 grayscale image, got rank {rank}")
            }
            VisionError::NotRgb { dims } => {
                write!(f, "expected a [3,h,w] colour image, got {dims:?}")
            }
            VisionError::EmptyMask => write!(f, "mask contains no foreground pixels"),
            VisionError::BadParameter { reason } => write!(f, "bad parameter: {reason}"),
            VisionError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for VisionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VisionError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for VisionError {
    fn from(e: TensorError) -> Self {
        VisionError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            VisionError::NotGrayscale { rank: 3 },
            VisionError::NotRgb { dims: vec![1, 2] },
            VisionError::EmptyMask,
            VisionError::BadParameter {
                reason: "angle count 0".into(),
            },
            VisionError::Tensor(TensorError::LengthMismatch {
                expected: 1,
                actual: 2,
            }),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains_tensor_errors() {
        let e = VisionError::Tensor(TensorError::LengthMismatch {
            expected: 1,
            actual: 2,
        });
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&VisionError::EmptyMask).is_none());
    }
}
