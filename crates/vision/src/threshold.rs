//! Image binarisation: fixed and Otsu thresholds.
//!
//! The qualifier needs a deterministic edge mask; Otsu's method picks the
//! threshold that maximises between-class variance of the gradient
//! histogram, with no tunable constants — important for the paper's
//! "fully explainable" certification argument.

use relcnn_tensor::Tensor;

/// Number of histogram bins used by [`otsu_threshold`].
pub const OTSU_BINS: usize = 256;

/// Binarises an image: `value > threshold` becomes 1.0, else 0.0.
pub fn binarize(image: &Tensor, threshold: f32) -> Tensor {
    image.map(|v| if v > threshold { 1.0 } else { 0.0 })
}

/// Otsu's threshold over a 256-bin histogram of the image's value range.
///
/// Returns the lower edge of the chosen bin, mapped back to image values.
/// Degenerate (constant or empty) images return their minimum value, which
/// binarises them to all-zeros.
pub fn otsu_threshold(image: &Tensor) -> f32 {
    if image.is_empty() {
        return 0.0;
    }
    let lo = image.min();
    let hi = image.max();
    if !(hi - lo).is_normal() {
        return lo;
    }
    let scale = (OTSU_BINS as f32 - 1.0) / (hi - lo);
    let mut hist = [0u64; OTSU_BINS];
    for &v in image.iter() {
        let bin = (((v - lo) * scale) as usize).min(OTSU_BINS - 1);
        hist[bin] += 1;
    }
    let total = image.len() as f64;
    let total_mean: f64 = hist
        .iter()
        .enumerate()
        .map(|(i, &c)| i as f64 * c as f64)
        .sum::<f64>()
        / total;

    // Ties are common with strongly bimodal data (every bin between the
    // two modes maximises the variance); average the tied bins, the
    // standard Otsu tie-breaking rule.
    let mut best_bins: Vec<usize> = Vec::new();
    let mut best_var = -1.0f64;
    let mut w0 = 0.0f64; // background weight
    let mut m0_acc = 0.0f64; // background mean accumulator
    for (i, &c) in hist.iter().enumerate() {
        w0 += c as f64 / total;
        m0_acc += i as f64 * c as f64 / total;
        if w0 <= 0.0 || w0 >= 1.0 {
            continue;
        }
        let w1 = 1.0 - w0;
        let m0 = m0_acc / w0;
        let m1 = (total_mean - m0_acc) / w1;
        let var = w0 * w1 * (m0 - m1) * (m0 - m1);
        if var > best_var + 1e-12 {
            best_var = var;
            best_bins.clear();
            best_bins.push(i);
        } else if (var - best_var).abs() <= 1e-12 {
            best_bins.push(i);
        }
    }
    if best_bins.is_empty() {
        return lo;
    }
    let avg_bin = best_bins.iter().sum::<usize>() as f32 / best_bins.len() as f32;
    lo + avg_bin / scale
}

/// Fraction of pixels above the threshold — a quick mask-density probe
/// used in sanity checks.
pub fn foreground_fraction(image: &Tensor, threshold: f32) -> f32 {
    if image.is_empty() {
        return 0.0;
    }
    image.iter().filter(|&&v| v > threshold).count() as f32 / image.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcnn_tensor::Shape;

    #[test]
    fn binarize_basic() {
        let t = Tensor::from_vec(Shape::d1(4), vec![0.1, 0.5, 0.9, 0.5]).unwrap();
        let b = binarize(&t, 0.5);
        assert_eq!(b.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn otsu_separates_bimodal() {
        // Two well-separated clusters around 0.1 and 0.9.
        let mut data = vec![0.1f32; 500];
        data.extend(vec![0.9f32; 500]);
        let t = Tensor::from_vec(Shape::d1(1000), data).unwrap();
        let thr = otsu_threshold(&t);
        assert!(thr > 0.15 && thr < 0.85, "threshold {thr}");
        let mask = binarize(&t, thr);
        assert_eq!(mask.sum(), 500.0);
    }

    #[test]
    fn otsu_with_unbalanced_classes() {
        let mut data = vec![0.0f32; 950];
        data.extend(vec![1.0f32; 50]);
        let t = Tensor::from_vec(Shape::d1(1000), data).unwrap();
        let thr = otsu_threshold(&t);
        assert!((0.0..1.0).contains(&thr));
        let fg = foreground_fraction(&t, thr);
        assert!((fg - 0.05).abs() < 0.01, "foreground {fg}");
    }

    #[test]
    fn otsu_constant_image_degenerates_safely() {
        let t = Tensor::full(Shape::d2(8, 8), 0.4);
        let thr = otsu_threshold(&t);
        let mask = binarize(&t, thr);
        assert_eq!(mask.sum(), 0.0, "constant image has no foreground");
    }

    #[test]
    fn otsu_empty_image() {
        let t = Tensor::from_vec(Shape::new(vec![0]), vec![]).unwrap();
        assert_eq!(otsu_threshold(&t), 0.0);
        assert_eq!(foreground_fraction(&t, 0.0), 0.0);
    }

    #[test]
    fn otsu_shift_invariance_of_split() {
        // Shifting all values must not change which pixels are foreground.
        let base: Vec<f32> = (0..200)
            .map(|i| if i % 3 == 0 { 0.8 } else { 0.2 })
            .collect();
        let a = Tensor::from_vec(Shape::d1(200), base.clone()).unwrap();
        let b = Tensor::from_vec(Shape::d1(200), base.iter().map(|v| v + 5.0).collect()).unwrap();
        let ma = binarize(&a, otsu_threshold(&a));
        let mb = binarize(&b, otsu_threshold(&b));
        assert_eq!(ma.as_slice(), mb.as_slice());
    }
}
