//! Z-normalisation of time series.
//!
//! SAX assumes the input series has zero mean and unit variance; the
//! Gaussian breakpoints are only equiprobable under that assumption
//! (Lin et al. 2003, §3.1).

/// Standard deviation below which a series is treated as constant and left
/// centred-but-unscaled, avoiding division blow-up. Keogh's reference
/// implementation uses a similar guard.
pub const FLAT_EPSILON: f32 = 1e-6;

/// Z-normalises `series` into a new vector: subtract the mean, divide by
/// the population standard deviation.
///
/// Constant (or near-constant, see [`FLAT_EPSILON`]) series are returned as
/// all-zeros rather than dividing by ~0.
///
/// # Example
///
/// ```rust
/// let z = relcnn_sax::normalize::z_normalize(&[2.0, 4.0, 6.0, 8.0]);
/// assert!(z.iter().sum::<f32>().abs() < 1e-5);
/// ```
pub fn z_normalize(series: &[f32]) -> Vec<f32> {
    if series.is_empty() {
        return Vec::new();
    }
    let mean = series.iter().sum::<f32>() / series.len() as f32;
    let var = series.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / series.len() as f32;
    let std_dev = var.sqrt();
    if std_dev < FLAT_EPSILON {
        return vec![0.0; series.len()];
    }
    series.iter().map(|v| (v - mean) / std_dev).collect()
}

/// In-place variant of [`z_normalize`].
pub fn z_normalize_inplace(series: &mut [f32]) {
    let out = z_normalize(series);
    series.copy_from_slice(&out);
}

/// Returns `(mean, std_dev)` of a series (population convention).
///
/// Returns `(0.0, 0.0)` for an empty series.
pub fn moments(series: &[f32]) -> (f32, f32) {
    if series.is_empty() {
        return (0.0, 0.0);
    }
    let mean = series.iter().sum::<f32>() / series.len() as f32;
    let var = series.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / series.len() as f32;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_series_has_zero_mean_unit_var() {
        let series: Vec<f32> = (0..100)
            .map(|i| (i as f32 * 0.3).cos() * 5.0 + 2.0)
            .collect();
        let z = z_normalize(&series);
        let (mean, std_dev) = moments(&z);
        assert!(mean.abs() < 1e-4, "mean {mean}");
        assert!((std_dev - 1.0).abs() < 1e-3, "std {std_dev}");
    }

    #[test]
    fn constant_series_becomes_zeros() {
        let z = z_normalize(&[4.0; 10]);
        assert_eq!(z, vec![0.0; 10]);
    }

    #[test]
    fn near_constant_series_guarded() {
        let z = z_normalize(&[1.0, 1.0 + 1e-8, 1.0, 1.0 - 1e-8]);
        assert!(z.iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn empty_series_ok() {
        assert!(z_normalize(&[]).is_empty());
        assert_eq!(moments(&[]), (0.0, 0.0));
    }

    #[test]
    fn inplace_matches_owned() {
        let mut a = vec![1.0, 5.0, 3.0, 9.0];
        let b = z_normalize(&a);
        z_normalize_inplace(&mut a);
        assert_eq!(a, b);
    }

    #[test]
    fn normalization_is_shift_scale_invariant() {
        let base: Vec<f32> = (0..50).map(|i| ((i * 7) % 13) as f32).collect();
        let shifted: Vec<f32> = base.iter().map(|v| v * 3.0 + 11.0).collect();
        let za = z_normalize(&base);
        let zb = z_normalize(&shifted);
        for (a, b) in za.iter().zip(zb.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
