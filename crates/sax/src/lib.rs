//! Symbolic Aggregate approXimation (SAX) of time series.
//!
//! Implements Lin, Keogh, Lonardi & Chiu, *"A symbolic representation of
//! time series, with implications for streaming algorithms"* (DMKD 2003) —
//! reference \[49\] of the reproduced paper. The hybrid CNN's shape
//! qualifier reduces the centroid-to-edge radial signature of a candidate
//! shape to a SAX word "which can be cheaply compared to other strings"
//! (paper §III-B, Fig. 3).
//!
//! The pipeline is:
//!
//! 1. [z-normalisation](normalize::z_normalize) — zero mean, unit variance;
//! 2. [PAA](paa::paa) — piecewise aggregate approximation to `w` segments;
//! 3. symbolisation against equiprobable
//!    [Gaussian breakpoints](breakpoints::gaussian_breakpoints);
//! 4. comparison via [`mindist`](dist::mindist), which **lower-bounds** the
//!    Euclidean distance of the original series (the property that makes
//!    the qualifier's accept decision sound).
//!
//! # Example
//!
//! ```rust
//! use relcnn_sax::{SaxConfig, SaxEncoder};
//!
//! # fn main() -> Result<(), relcnn_sax::SaxError> {
//! let config = SaxConfig::new(16, 4)?; // 16 PAA segments, alphabet {a,b,c,d}
//! let encoder = SaxEncoder::new(config);
//! let series: Vec<f32> = (0..128).map(|i| (i as f32 / 20.0).sin()).collect();
//! let word = encoder.encode(&series)?;
//! assert_eq!(word.len(), 16);
//! println!("{word}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakpoints;
pub mod dist;
pub mod normalize;
pub mod paa;

mod error;
mod word;

pub use error::SaxError;
pub use word::{SaxConfig, SaxEncoder, SaxWord};

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, SaxError>;
