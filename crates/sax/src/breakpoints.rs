//! Equiprobable Gaussian breakpoints.
//!
//! SAX discretises PAA means against the `a-1` quantiles of the standard
//! normal distribution at probabilities `1/a, 2/a, …, (a-1)/a`, so that
//! each of the `a` symbols is equally likely under z-normalised data
//! (Lin et al. 2003, Table 3). Breakpoints are computed with Acklam's
//! rational approximation of the inverse normal CDF (|relative error|
//! < 1.15e-9), so any alphabet size in `2..=26` is supported without a
//! lookup table.

use crate::SaxError;

/// Largest supported alphabet ('a'..='z').
pub const MAX_ALPHABET: usize = 26;

/// Inverse CDF (quantile function) of the standard normal distribution.
///
/// Peter Acklam's rational approximation; sufficient precision for SAX
/// breakpoints by a wide margin.
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p={p} outside (0,1)");

    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Returns the `alphabet - 1` breakpoints dividing the standard normal
/// distribution into `alphabet` equiprobable regions, in ascending order.
///
/// # Errors
///
/// Returns [`SaxError::BadAlphabet`] unless `2 <= alphabet <= 26`.
///
/// # Example
///
/// ```rust
/// let bp = relcnn_sax::breakpoints::gaussian_breakpoints(4)?;
/// assert_eq!(bp.len(), 3);
/// assert!((bp[1]).abs() < 1e-9); // median of N(0,1) is 0
/// # Ok::<(), relcnn_sax::SaxError>(())
/// ```
pub fn gaussian_breakpoints(alphabet: usize) -> Result<Vec<f64>, SaxError> {
    if !(2..=MAX_ALPHABET).contains(&alphabet) {
        return Err(SaxError::BadAlphabet { size: alphabet });
    }
    Ok((1..alphabet)
        .map(|i| inverse_normal_cdf(i as f64 / alphabet as f64))
        .collect())
}

/// Maps a value to its symbol index under the breakpoints (binary search).
///
/// Index `k` means the value lies in `(bp[k-1], bp[k]]`'s region, i.e.
/// `value <= bp[0]` gives 0 and `value > bp.last()` gives `bp.len()`.
pub fn symbol_index(value: f64, breakpoints: &[f64]) -> usize {
    breakpoints.partition_point(|&b| b < value)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 3 of Lin et al. (2003), alphabet sizes 3..=10 (rounded to 2dp).
    const PAPER_TABLE: &[(usize, &[f64])] = &[
        (3, &[-0.43, 0.43]),
        (4, &[-0.67, 0.0, 0.67]),
        (5, &[-0.84, -0.25, 0.25, 0.84]),
        (6, &[-0.97, -0.43, 0.0, 0.43, 0.97]),
        (7, &[-1.07, -0.57, -0.18, 0.18, 0.57, 1.07]),
        (8, &[-1.15, -0.67, -0.32, 0.0, 0.32, 0.67, 1.15]),
        (9, &[-1.22, -0.76, -0.43, -0.14, 0.14, 0.43, 0.76, 1.22]),
        (
            10,
            &[-1.28, -0.84, -0.52, -0.25, 0.0, 0.25, 0.52, 0.84, 1.28],
        ),
    ];

    #[test]
    fn matches_published_table() {
        for &(a, expected) in PAPER_TABLE {
            let got = gaussian_breakpoints(a).unwrap();
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(expected.iter()) {
                assert!((g - e).abs() < 0.005, "alphabet {a}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn breakpoints_ascending_and_symmetric() {
        for a in 2..=MAX_ALPHABET {
            let bp = gaussian_breakpoints(a).unwrap();
            for w in bp.windows(2) {
                assert!(w[0] < w[1]);
            }
            // Symmetry: bp[i] == -bp[len-1-i]
            for i in 0..bp.len() {
                assert!(
                    (bp[i] + bp[bp.len() - 1 - i]).abs() < 1e-9,
                    "alphabet {a} not symmetric"
                );
            }
        }
    }

    #[test]
    fn rejects_out_of_range_alphabets() {
        assert!(gaussian_breakpoints(0).is_err());
        assert!(gaussian_breakpoints(1).is_err());
        assert!(gaussian_breakpoints(27).is_err());
        assert!(gaussian_breakpoints(2).is_ok());
        assert!(gaussian_breakpoints(26).is_ok());
    }

    #[test]
    fn inverse_cdf_known_values() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-12);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.8413447) - 1.0).abs() < 1e-5);
        // Tails exercised.
        assert!(inverse_normal_cdf(1e-10) < -6.0);
        assert!(inverse_normal_cdf(1.0 - 1e-10) > 6.0);
    }

    #[test]
    #[should_panic(expected = "outside (0,1)")]
    fn inverse_cdf_rejects_zero() {
        inverse_normal_cdf(0.0);
    }

    #[test]
    fn symbol_index_bins_correctly() {
        let bp = gaussian_breakpoints(4).unwrap(); // [-0.67, 0, 0.67]
        assert_eq!(symbol_index(-2.0, &bp), 0);
        assert_eq!(symbol_index(-0.5, &bp), 1);
        assert_eq!(symbol_index(0.5, &bp), 2);
        assert_eq!(symbol_index(2.0, &bp), 3);
        // Boundary convention: exactly on a breakpoint -> lower region.
        assert_eq!(symbol_index(bp[1], &bp), 1);
    }

    #[test]
    fn symbols_equiprobable_under_gaussian_samples() {
        // Deterministic pseudo-gaussian via CLT of a simple LCG.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            let mut acc = 0.0f64;
            for _ in 0..12 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                acc += (state >> 11) as f64 / (1u64 << 53) as f64;
            }
            acc - 6.0 // ~N(0,1)
        };
        let bp = gaussian_breakpoints(8).unwrap();
        let mut counts = [0usize; 8];
        let n = 100_000;
        for _ in 0..n {
            counts[symbol_index(next(), &bp)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!(
                (frac - 0.125).abs() < 0.01,
                "symbol {i} frequency {frac} not ~1/8"
            );
        }
    }
}
