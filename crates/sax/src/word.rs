use crate::breakpoints::{gaussian_breakpoints, symbol_index};
use crate::normalize::z_normalize;
use crate::paa::paa;
use crate::SaxError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of a SAX encoding: PAA segment count and alphabet size.
///
/// Two [`SaxWord`]s can only be compared when their configurations (and the
/// original series length, for MINDIST scaling) agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SaxConfig {
    segments: usize,
    alphabet: usize,
}

impl SaxConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// * [`SaxError::ZeroSegments`] when `segments == 0`;
    /// * [`SaxError::BadAlphabet`] unless `2 <= alphabet <= 26`.
    pub fn new(segments: usize, alphabet: usize) -> Result<Self, SaxError> {
        if segments == 0 {
            return Err(SaxError::ZeroSegments);
        }
        // Validate alphabet eagerly so encoders can't be built invalid.
        gaussian_breakpoints(alphabet)?;
        Ok(SaxConfig { segments, alphabet })
    }

    /// Number of PAA segments (word length).
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Alphabet size.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }
}

impl Default for SaxConfig {
    /// The configuration used by the paper-scale shape qualifier:
    /// 16 segments over an 8-letter alphabet.
    fn default() -> Self {
        SaxConfig {
            segments: 16,
            alphabet: 8,
        }
    }
}

/// A SAX word: the symbolic form of one time series.
///
/// Symbols are stored as indices `0..alphabet` and displayed as letters
/// `'a'..`. The original series length is retained because the MINDIST
/// between two words scales with `sqrt(n / w)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SaxWord {
    symbols: Vec<u8>,
    alphabet: usize,
    series_len: usize,
}

impl SaxWord {
    /// Builds a word directly from symbol indices.
    ///
    /// # Errors
    ///
    /// * [`SaxError::BadAlphabet`] for an unsupported alphabet;
    /// * [`SaxError::BadSymbol`] if any index is `>= alphabet`;
    /// * [`SaxError::ZeroSegments`] for an empty symbol list.
    pub fn from_symbols(
        symbols: Vec<u8>,
        alphabet: usize,
        series_len: usize,
    ) -> Result<Self, SaxError> {
        gaussian_breakpoints(alphabet)?;
        if symbols.is_empty() {
            return Err(SaxError::ZeroSegments);
        }
        if let Some(&bad) = symbols.iter().find(|&&s| s as usize >= alphabet) {
            return Err(SaxError::BadSymbol {
                symbol: (b'a' + bad) as char,
                alphabet,
            });
        }
        Ok(SaxWord {
            symbols,
            alphabet,
            series_len,
        })
    }

    /// Parses a word from its letter form (e.g. `"abca"`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SaxWord::from_symbols`], plus
    /// [`SaxError::BadSymbol`] for characters outside `'a'..alphabet`.
    pub fn parse(text: &str, alphabet: usize, series_len: usize) -> Result<Self, SaxError> {
        gaussian_breakpoints(alphabet)?;
        let mut symbols = Vec::with_capacity(text.len());
        for ch in text.chars() {
            let idx = (ch as u32).wrapping_sub('a' as u32);
            if idx as usize >= alphabet {
                return Err(SaxError::BadSymbol {
                    symbol: ch,
                    alphabet,
                });
            }
            symbols.push(idx as u8);
        }
        SaxWord::from_symbols(symbols, alphabet, series_len)
    }

    /// The symbol indices.
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// Alphabet size this word was encoded with.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Length of the original series (for MINDIST scaling).
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Word length (= PAA segment count).
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the word is empty (never true for validly constructed words).
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Number of positions at which two words differ (Hamming distance).
    ///
    /// # Errors
    ///
    /// Returns [`SaxError::ConfigMismatch`] if lengths or alphabets differ.
    pub fn hamming(&self, other: &SaxWord) -> Result<usize, SaxError> {
        self.check_comparable(other)?;
        Ok(self
            .symbols
            .iter()
            .zip(other.symbols.iter())
            .filter(|(a, b)| a != b)
            .count())
    }

    /// Maximum absolute symbol-index difference across positions — the
    /// cheap "string comparison" the paper's qualifier uses: two shapes
    /// whose words never drift more than one symbol apart are compatible.
    ///
    /// # Errors
    ///
    /// Returns [`SaxError::ConfigMismatch`] if lengths or alphabets differ.
    pub fn max_symbol_gap(&self, other: &SaxWord) -> Result<usize, SaxError> {
        self.check_comparable(other)?;
        Ok(self
            .symbols
            .iter()
            .zip(other.symbols.iter())
            .map(|(&a, &b)| (a as isize - b as isize).unsigned_abs())
            .max()
            .unwrap_or(0))
    }

    pub(crate) fn check_comparable(&self, other: &SaxWord) -> Result<(), SaxError> {
        if self.len() != other.len() {
            return Err(SaxError::ConfigMismatch {
                reason: format!("word lengths {} vs {}", self.len(), other.len()),
            });
        }
        if self.alphabet != other.alphabet {
            return Err(SaxError::ConfigMismatch {
                reason: format!("alphabets {} vs {}", self.alphabet, other.alphabet),
            });
        }
        Ok(())
    }
}

impl fmt::Display for SaxWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &s in &self.symbols {
            write!(f, "{}", (b'a' + s) as char)?;
        }
        Ok(())
    }
}

/// Encodes time series into [`SaxWord`]s under a fixed [`SaxConfig`].
///
/// # Example
///
/// ```rust
/// use relcnn_sax::{SaxConfig, SaxEncoder};
///
/// # fn main() -> Result<(), relcnn_sax::SaxError> {
/// let enc = SaxEncoder::new(SaxConfig::new(8, 4)?);
/// let up: Vec<f32> = (0..64).map(|i| i as f32).collect();
/// let word = enc.encode(&up)?;
/// // A ramp passes monotonically through the alphabet.
/// assert_eq!(word.to_string(), "aabbccdd");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SaxEncoder {
    config: SaxConfig,
    breakpoints: Vec<f64>,
}

impl SaxEncoder {
    /// Creates an encoder; breakpoints are precomputed once.
    pub fn new(config: SaxConfig) -> Self {
        let breakpoints =
            gaussian_breakpoints(config.alphabet()).expect("config validated alphabet");
        SaxEncoder {
            config,
            breakpoints,
        }
    }

    /// The encoder's configuration.
    pub fn config(&self) -> SaxConfig {
        self.config
    }

    /// The precomputed Gaussian breakpoints.
    pub fn breakpoints(&self) -> &[f64] {
        &self.breakpoints
    }

    /// Encodes a raw series: z-normalise → PAA → symbolise.
    ///
    /// # Errors
    ///
    /// Propagates [`SaxError::EmptySeries`] / [`SaxError::SeriesTooShort`]
    /// from the PAA stage.
    pub fn encode(&self, series: &[f32]) -> Result<SaxWord, SaxError> {
        let z = z_normalize(series);
        let means = paa(&z, self.config.segments())?;
        let symbols = means
            .iter()
            .map(|&m| symbol_index(m as f64, &self.breakpoints) as u8)
            .collect();
        SaxWord::from_symbols(symbols, self.config.alphabet(), series.len())
    }

    /// Encodes a series that is *already z-normalised* (skips normalisation);
    /// used when the caller normalises once and encodes many windows.
    ///
    /// # Errors
    ///
    /// Propagates PAA-stage errors as for [`SaxEncoder::encode`].
    pub fn encode_normalized(&self, z_series: &[f32]) -> Result<SaxWord, SaxError> {
        let means = paa(z_series, self.config.segments())?;
        let symbols = means
            .iter()
            .map(|&m| symbol_index(m as f64, &self.breakpoints) as u8)
            .collect();
        SaxWord::from_symbols(symbols, self.config.alphabet(), z_series.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(SaxConfig::new(0, 4).is_err());
        assert!(SaxConfig::new(8, 1).is_err());
        assert!(SaxConfig::new(8, 27).is_err());
        let c = SaxConfig::new(8, 4).unwrap();
        assert_eq!((c.segments(), c.alphabet()), (8, 4));
        let d = SaxConfig::default();
        assert_eq!((d.segments(), d.alphabet()), (16, 8));
    }

    #[test]
    fn ramp_encodes_monotonically() {
        let enc = SaxEncoder::new(SaxConfig::new(8, 4).unwrap());
        let up: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let w = enc.encode(&up).unwrap();
        assert_eq!(w.to_string(), "aabbccdd");
        let down: Vec<f32> = (0..64).map(|i| -(i as f32)).collect();
        assert_eq!(enc.encode(&down).unwrap().to_string(), "ddccbbaa");
    }

    #[test]
    fn constant_series_maps_to_middle() {
        let enc = SaxEncoder::new(SaxConfig::new(4, 4).unwrap());
        let w = enc.encode(&[5.0; 32]).unwrap();
        // z-normalised constant = zeros; zero sits on breakpoint 0 of the
        // 4-letter alphabet -> symbol index 1 ('b') under the <= convention.
        assert_eq!(w.to_string(), "bbbb");
    }

    #[test]
    fn encode_is_amplitude_invariant() {
        let enc = SaxEncoder::new(SaxConfig::default());
        let base: Vec<f32> = (0..128).map(|i| (i as f32 / 11.0).sin()).collect();
        let scaled: Vec<f32> = base.iter().map(|v| v * 40.0 + 7.0).collect();
        assert_eq!(enc.encode(&base).unwrap(), enc.encode(&scaled).unwrap());
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let w = SaxWord::parse("abcdd", 5, 100).unwrap();
        assert_eq!(w.to_string(), "abcdd");
        assert_eq!(w.len(), 5);
        assert_eq!(w.series_len(), 100);
        assert!(SaxWord::parse("abz", 4, 10).is_err());
        assert!(SaxWord::parse("", 4, 10).is_err());
    }

    #[test]
    fn from_symbols_validates() {
        assert!(SaxWord::from_symbols(vec![0, 3], 4, 8).is_ok());
        assert!(SaxWord::from_symbols(vec![0, 4], 4, 8).is_err());
        assert!(SaxWord::from_symbols(vec![], 4, 8).is_err());
        assert!(SaxWord::from_symbols(vec![0], 1, 8).is_err());
    }

    #[test]
    fn hamming_and_gap() {
        let a = SaxWord::parse("aabb", 4, 16).unwrap();
        let b = SaxWord::parse("aabd", 4, 16).unwrap();
        assert_eq!(a.hamming(&b).unwrap(), 1);
        assert_eq!(a.max_symbol_gap(&b).unwrap(), 2);
        assert_eq!(a.hamming(&a).unwrap(), 0);
        assert_eq!(a.max_symbol_gap(&a).unwrap(), 0);
        let c = SaxWord::parse("aab", 4, 12).unwrap();
        assert!(a.hamming(&c).is_err());
        let d = SaxWord::parse("aabb", 5, 16).unwrap();
        assert!(a.max_symbol_gap(&d).is_err());
    }

    #[test]
    fn encode_normalized_matches_encode() {
        let enc = SaxEncoder::new(SaxConfig::new(8, 6).unwrap());
        let series: Vec<f32> = (0..96).map(|i| ((i * 7) % 13) as f32).collect();
        let z = crate::normalize::z_normalize(&series);
        assert_eq!(
            enc.encode(&series).unwrap().symbols(),
            enc.encode_normalized(&z).unwrap().symbols()
        );
    }

    #[test]
    fn short_series_rejected() {
        let enc = SaxEncoder::new(SaxConfig::new(16, 4).unwrap());
        assert!(matches!(
            enc.encode(&[1.0; 8]),
            Err(SaxError::SeriesTooShort { .. })
        ));
        assert!(matches!(enc.encode(&[]), Err(SaxError::EmptySeries)));
    }
}
