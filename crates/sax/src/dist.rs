//! Distances between SAX words.
//!
//! [`mindist`] is the headline result of Lin et al. (2003): a distance on
//! SAX words that *lower-bounds* the Euclidean distance between the original
//! z-normalised series. For the paper's qualifier this matters because it
//! makes rejection sound: if `MINDIST(word, reference) > τ` then the true
//! Euclidean distance also exceeds `τ`, so the shape genuinely is not an
//! octagon — no false acceptance can be introduced by the symbolic step.

use crate::breakpoints::gaussian_breakpoints;
use crate::{SaxError, SaxWord};

/// The symbol-pair distance table `cell(r, c)` from Lin et al. (2003):
/// zero for adjacent-or-equal symbols, otherwise the gap between the
/// enclosing breakpoints.
///
/// # Errors
///
/// Returns [`SaxError::BadAlphabet`] for unsupported alphabet sizes.
pub fn dist_table(alphabet: usize) -> Result<Vec<Vec<f64>>, SaxError> {
    let bp = gaussian_breakpoints(alphabet)?;
    let mut table = vec![vec![0.0f64; alphabet]; alphabet];
    for (r, row) in table.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            let (lo, hi) = if r < c { (r, c) } else { (c, r) };
            *cell = if hi - lo <= 1 {
                0.0
            } else {
                bp[hi - 1] - bp[lo]
            };
        }
    }
    Ok(table)
}

/// MINDIST between two SAX words (Lin et al. 2003, eq. 6):
///
/// ```text
/// MINDIST(Q̂, Ĉ) = sqrt(n / w) * sqrt( Σᵢ cell(q̂ᵢ, ĉᵢ)² )
/// ```
///
/// where `n` is the original series length and `w` the word length.
///
/// # Errors
///
/// Returns [`SaxError::ConfigMismatch`] if the words have different
/// lengths, alphabets or original series lengths.
pub fn mindist(a: &SaxWord, b: &SaxWord) -> Result<f64, SaxError> {
    a.check_comparable(b)?;
    if a.series_len() != b.series_len() {
        return Err(SaxError::ConfigMismatch {
            reason: format!("series lengths {} vs {}", a.series_len(), b.series_len()),
        });
    }
    let table = dist_table(a.alphabet())?;
    let sum_sq: f64 = a
        .symbols()
        .iter()
        .zip(b.symbols().iter())
        .map(|(&x, &y)| {
            let d = table[x as usize][y as usize];
            d * d
        })
        .sum();
    let n = a.series_len() as f64;
    let w = a.len() as f64;
    Ok((n / w).sqrt() * sum_sq.sqrt())
}

/// Euclidean distance between two equal-length raw series; the quantity
/// MINDIST lower-bounds (after z-normalisation).
///
/// # Errors
///
/// Returns [`SaxError::ConfigMismatch`] if the lengths differ.
pub fn euclidean(a: &[f32], b: &[f32]) -> Result<f64, SaxError> {
    if a.len() != b.len() {
        return Err(SaxError::ConfigMismatch {
            reason: format!("series lengths {} vs {}", a.len(), b.len()),
        });
    }
    Ok(a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SaxConfig, SaxEncoder};

    #[test]
    fn table_zero_on_and_off_diagonal_neighbours() {
        let t = dist_table(6).unwrap();
        for i in 0..6 {
            assert_eq!(t[i][i], 0.0);
            if i + 1 < 6 {
                assert_eq!(t[i][i + 1], 0.0);
                assert_eq!(t[i + 1][i], 0.0);
            }
        }
        // Distant symbols strictly positive and symmetric.
        assert!(t[0][5] > 0.0);
        assert_eq!(t[0][5], t[5][0]);
        assert!(t[0][5] > t[0][2]);
    }

    #[test]
    fn table_matches_hand_computation_alphabet4() {
        // breakpoints: [-0.6745, 0, 0.6745]
        let t = dist_table(4).unwrap();
        let bp = gaussian_breakpoints(4).unwrap();
        assert!((t[0][2] - (bp[1] - bp[0])).abs() < 1e-12);
        assert!((t[0][3] - (bp[2] - bp[0])).abs() < 1e-12);
        assert!((t[1][3] - (bp[2] - bp[1])).abs() < 1e-12);
    }

    #[test]
    fn mindist_zero_for_identical_and_adjacent_words() {
        let a = SaxWord::parse("abca", 4, 64).unwrap();
        assert_eq!(mindist(&a, &a).unwrap(), 0.0);
        let b = SaxWord::parse("babb", 4, 64).unwrap(); // every symbol adjacent
        assert_eq!(mindist(&a, &b).unwrap(), 0.0);
    }

    #[test]
    fn mindist_scales_with_series_length() {
        let a1 = SaxWord::parse("aaaa", 4, 64).unwrap();
        let d1 = SaxWord::parse("dddd", 4, 64).unwrap();
        let a2 = SaxWord::parse("aaaa", 4, 256).unwrap();
        let d2 = SaxWord::parse("dddd", 4, 256).unwrap();
        let m1 = mindist(&a1, &d1).unwrap();
        let m2 = mindist(&a2, &d2).unwrap();
        assert!((m2 / m1 - 2.0).abs() < 1e-9, "sqrt(256/64)=2 scaling");
    }

    #[test]
    fn mindist_rejects_mismatched_words() {
        let a = SaxWord::parse("aaaa", 4, 64).unwrap();
        let b = SaxWord::parse("aaaa", 4, 32).unwrap();
        assert!(mindist(&a, &b).is_err());
        let c = SaxWord::parse("aaa", 4, 64).unwrap();
        assert!(mindist(&a, &c).is_err());
    }

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]).unwrap(), 5.0);
        assert!(euclidean(&[0.0], &[0.0, 1.0]).is_err());
    }

    /// The lower-bounding theorem, exercised on deterministic series pairs.
    #[test]
    fn mindist_lower_bounds_euclidean() {
        let enc = SaxEncoder::new(SaxConfig::new(8, 8).unwrap());
        let mk = |f: &dyn Fn(usize) -> f32| -> Vec<f32> { (0..128).map(f).collect() };
        let series: Vec<Vec<f32>> = vec![
            mk(&|i| (i as f32 / 9.0).sin()),
            mk(&|i| (i as f32 / 9.0).cos() * 3.0),
            mk(&|i| i as f32 * 0.1),
            mk(&|i| ((i * 37) % 17) as f32 - 8.0),
            mk(&|i| if i < 64 { 1.0 } else { -1.0 }),
            mk(&|i| (i as f32 / 4.0).sin() + (i as f32 / 31.0).cos()),
        ];
        for (i, s1) in series.iter().enumerate() {
            for s2 in series.iter().skip(i + 1) {
                let z1 = crate::normalize::z_normalize(s1);
                let z2 = crate::normalize::z_normalize(s2);
                let w1 = enc.encode_normalized(&z1).unwrap();
                let w2 = enc.encode_normalized(&z2).unwrap();
                let md = mindist(&w1, &w2).unwrap();
                let ed = euclidean(&z1, &z2).unwrap();
                assert!(md <= ed + 1e-6, "MINDIST {md} exceeds Euclidean {ed}");
            }
        }
    }
}
