use std::fmt;

/// Error type for SAX encoding and comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SaxError {
    /// The input series was empty.
    EmptySeries,
    /// The series is shorter than the requested number of PAA segments.
    SeriesTooShort {
        /// Series length supplied.
        len: usize,
        /// PAA segment count requested.
        segments: usize,
    },
    /// The alphabet size is outside the supported range `2..=26`.
    BadAlphabet {
        /// The rejected alphabet size.
        size: usize,
    },
    /// Zero PAA segments requested.
    ZeroSegments,
    /// Two words that must share a configuration did not.
    ConfigMismatch {
        /// Description of the disagreement.
        reason: String,
    },
    /// A symbol outside the configured alphabet was encountered when
    /// parsing a word from text.
    BadSymbol {
        /// The offending character.
        symbol: char,
        /// Alphabet size in effect.
        alphabet: usize,
    },
}

impl fmt::Display for SaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaxError::EmptySeries => write!(f, "cannot encode an empty series"),
            SaxError::SeriesTooShort { len, segments } => write!(
                f,
                "series of length {len} shorter than {segments} PAA segments"
            ),
            SaxError::BadAlphabet { size } => {
                write!(f, "alphabet size {size} outside supported range 2..=26")
            }
            SaxError::ZeroSegments => write!(f, "PAA segment count must be non-zero"),
            SaxError::ConfigMismatch { reason } => {
                write!(f, "sax configuration mismatch: {reason}")
            }
            SaxError::BadSymbol { symbol, alphabet } => {
                write!(f, "symbol {symbol:?} not in alphabet of size {alphabet}")
            }
        }
    }
}

impl std::error::Error for SaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            SaxError::EmptySeries,
            SaxError::SeriesTooShort {
                len: 3,
                segments: 8,
            },
            SaxError::BadAlphabet { size: 1 },
            SaxError::ZeroSegments,
            SaxError::ConfigMismatch {
                reason: "alphabet 4 vs 8".into(),
            },
            SaxError::BadSymbol {
                symbol: 'z',
                alphabet: 4,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SaxError>();
    }
}
