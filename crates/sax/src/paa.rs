//! Piecewise Aggregate Approximation (PAA).
//!
//! PAA reduces an `n`-point series to `w` segment means. When `w` does not
//! divide `n`, boundary points are shared between segments with fractional
//! weights (the exact scheme from Lin et al. 2003 that keeps the MINDIST
//! lower-bounding proof valid for all `n`, `w`).

use crate::SaxError;

/// Reduces `series` to `segments` means.
///
/// # Errors
///
/// * [`SaxError::EmptySeries`] for an empty input;
/// * [`SaxError::ZeroSegments`] when `segments == 0`;
/// * [`SaxError::SeriesTooShort`] when `series.len() < segments`.
///
/// # Example
///
/// ```rust
/// let means = relcnn_sax::paa::paa(&[1.0, 1.0, 5.0, 5.0], 2)?;
/// assert_eq!(means, vec![1.0, 5.0]);
/// # Ok::<(), relcnn_sax::SaxError>(())
/// ```
pub fn paa(series: &[f32], segments: usize) -> Result<Vec<f32>, SaxError> {
    if series.is_empty() {
        return Err(SaxError::EmptySeries);
    }
    if segments == 0 {
        return Err(SaxError::ZeroSegments);
    }
    let n = series.len();
    if n < segments {
        return Err(SaxError::SeriesTooShort { len: n, segments });
    }
    if n == segments {
        return Ok(series.to_vec());
    }
    if n.is_multiple_of(segments) {
        let chunk = n / segments;
        return Ok(series
            .chunks_exact(chunk)
            .map(|c| c.iter().sum::<f32>() / chunk as f32)
            .collect());
    }
    // General case: each segment covers n/w points with fractional sharing
    // of the boundary points. Work in f64 to keep the weights exact enough.
    let n_f = n as f64;
    let w_f = segments as f64;
    let seg_len = n_f / w_f;
    let mut out = Vec::with_capacity(segments);
    for s in 0..segments {
        let start = s as f64 * seg_len;
        let end = start + seg_len;
        let mut acc = 0.0f64;
        let first = start.floor() as usize;
        let last = (end.ceil() as usize).min(n);
        for (i, &v) in series.iter().enumerate().take(last).skip(first) {
            let lo = (i as f64).max(start);
            let hi = ((i + 1) as f64).min(end);
            let weight = (hi - lo).max(0.0);
            acc += v as f64 * weight;
        }
        out.push((acc / seg_len) as f32);
    }
    Ok(out)
}

/// Expands `w` PAA means back to an `n`-point piecewise-constant series —
/// the PAA reconstruction used when visualising Figure 3.
///
/// # Errors
///
/// * [`SaxError::ZeroSegments`] if `means` is empty;
/// * [`SaxError::SeriesTooShort`] if `n < means.len()`.
pub fn paa_inverse(means: &[f32], n: usize) -> Result<Vec<f32>, SaxError> {
    if means.is_empty() {
        return Err(SaxError::ZeroSegments);
    }
    if n < means.len() {
        return Err(SaxError::SeriesTooShort {
            len: n,
            segments: means.len(),
        });
    }
    let seg_len = n as f64 / means.len() as f64;
    Ok((0..n)
        .map(|i| {
            let seg = ((i as f64 + 0.5) / seg_len) as usize;
            means[seg.min(means.len() - 1)]
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let means = paa(&[1.0, 3.0, 5.0, 7.0, 2.0, 4.0], 3).unwrap();
        assert_eq!(means, vec![2.0, 6.0, 3.0]);
    }

    #[test]
    fn identity_when_w_equals_n() {
        let s = [3.0, 1.0, 4.0];
        assert_eq!(paa(&s, 3).unwrap(), s.to_vec());
    }

    #[test]
    fn single_segment_is_mean() {
        let means = paa(&[2.0, 4.0, 6.0], 1).unwrap();
        assert!((means[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn fractional_segments_preserve_global_mean() {
        // n=5, w=2: weighted scheme must preserve the overall mean.
        let series = [1.0, 2.0, 3.0, 4.0, 5.0];
        let means = paa(&series, 2).unwrap();
        let global = series.iter().sum::<f32>() / 5.0;
        let paa_mean = means.iter().sum::<f32>() / 2.0;
        assert!((global - paa_mean).abs() < 1e-5);
        // First segment covers points 0,1 and half of 2: (1+2+0.5*3)/2.5 = 1.8
        assert!((means[0] - 1.8).abs() < 1e-5);
        assert!((means[1] - 4.2).abs() < 1e-5);
    }

    #[test]
    fn mean_preservation_many_sizes() {
        let series: Vec<f32> = (0..97).map(|i| ((i * 13) % 23) as f32 - 11.0).collect();
        let global = series.iter().sum::<f32>() / series.len() as f32;
        for w in [1, 2, 3, 5, 8, 16, 31, 64, 97] {
            let means = paa(&series, w).unwrap();
            assert_eq!(means.len(), w);
            let m = means.iter().sum::<f32>() / w as f32;
            assert!(
                (m - global).abs() < 1e-3,
                "w={w}: PAA mean {m} vs global {global}"
            );
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(paa(&[], 4), Err(SaxError::EmptySeries));
        assert_eq!(paa(&[1.0], 0), Err(SaxError::ZeroSegments));
        assert_eq!(
            paa(&[1.0, 2.0], 3),
            Err(SaxError::SeriesTooShort {
                len: 2,
                segments: 3
            })
        );
    }

    #[test]
    fn inverse_reconstructs_piecewise_constant() {
        let recon = paa_inverse(&[1.0, 5.0], 4).unwrap();
        assert_eq!(recon, vec![1.0, 1.0, 5.0, 5.0]);
        assert!(paa_inverse(&[], 4).is_err());
        assert!(paa_inverse(&[1.0, 2.0], 1).is_err());
    }

    #[test]
    fn inverse_then_paa_is_identity_on_means() {
        let means = [0.5, -1.0, 2.0, 0.0];
        let recon = paa_inverse(&means, 16).unwrap();
        let back = paa(&recon, 4).unwrap();
        for (a, b) in means.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
