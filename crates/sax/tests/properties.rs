//! Property-based tests for the SAX substrate.
//!
//! The key invariant is the MINDIST lower bound: for arbitrary series, the
//! symbolic distance must never exceed the true Euclidean distance of the
//! z-normalised series — this is what makes the hybrid CNN's shape-qualifier
//! *rejections* sound.

use proptest::prelude::*;
use relcnn_sax::dist::{euclidean, mindist};
use relcnn_sax::normalize::z_normalize;
use relcnn_sax::paa::{paa, paa_inverse};
use relcnn_sax::{SaxConfig, SaxEncoder};

fn series_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mindist_never_exceeds_euclidean(
        a in series_strategy(64),
        b in series_strategy(64),
        segments in 1usize..32,
        alphabet in 2usize..12,
    ) {
        let enc = SaxEncoder::new(SaxConfig::new(segments, alphabet).unwrap());
        let za = z_normalize(&a);
        let zb = z_normalize(&b);
        let wa = enc.encode_normalized(&za).unwrap();
        let wb = enc.encode_normalized(&zb).unwrap();
        let md = mindist(&wa, &wb).unwrap();
        let ed = euclidean(&za, &zb).unwrap();
        // Allow a small absolute slack for f32 accumulation.
        prop_assert!(md <= ed + 1e-3, "MINDIST {} > Euclidean {}", md, ed);
    }

    #[test]
    fn znormalize_idempotent(series in series_strategy(48)) {
        let once = z_normalize(&series);
        let twice = z_normalize(&once);
        for (a, b) in once.iter().zip(twice.iter()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn paa_output_within_input_range(
        series in series_strategy(50),
        segments in 1usize..50,
    ) {
        let means = paa(&series, segments).unwrap();
        let lo = series.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = series.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for m in means {
            prop_assert!(m >= lo - 1e-3 && m <= hi + 1e-3);
        }
    }

    #[test]
    fn paa_preserves_global_mean(
        series in series_strategy(60),
        segments in prop::sample::select(vec![1usize, 2, 3, 4, 5, 6, 10, 12, 15, 20, 30, 60]),
    ) {
        // For any segment count, the length-weighted PAA mean equals the
        // series mean; with the fractional scheme all weights are n/w so the
        // plain mean of means also matches.
        let means = paa(&series, segments).unwrap();
        let global = series.iter().sum::<f32>() / series.len() as f32;
        let m = means.iter().sum::<f32>() / means.len() as f32;
        prop_assert!((m - global).abs() < 1e-2, "{} vs {}", m, global);
    }

    #[test]
    fn paa_inverse_roundtrip(
        means in proptest::collection::vec(-10.0f32..10.0, 1..16),
        factor in 1usize..8,
    ) {
        let n = means.len() * factor;
        let recon = paa_inverse(&means, n).unwrap();
        let back = paa(&recon, means.len()).unwrap();
        for (a, b) in means.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn encoding_deterministic(series in series_strategy(40)) {
        let enc = SaxEncoder::new(SaxConfig::new(8, 6).unwrap());
        let w1 = enc.encode(&series).unwrap();
        let w2 = enc.encode(&series).unwrap();
        prop_assert_eq!(w1, w2);
    }

    #[test]
    fn encoding_shift_scale_invariant(
        series in series_strategy(40),
        scale in 0.1f32..50.0,
        shift in -100.0f32..100.0,
    ) {
        // Skip degenerate near-constant inputs where scaling crosses the
        // flatness guard.
        let (_, std_dev) = relcnn_sax::normalize::moments(&series);
        prop_assume!(std_dev > 1e-2);
        let transformed: Vec<f32> = series.iter().map(|v| v * scale + shift).collect();
        let enc = SaxEncoder::new(SaxConfig::new(8, 4).unwrap());
        let w1 = enc.encode(&series).unwrap();
        let w2 = enc.encode(&transformed).unwrap();
        // Symbols may differ by at most 1 at PAA means that sit within f32
        // noise of a breakpoint; require near-equality.
        prop_assert!(w1.max_symbol_gap(&w2).unwrap() <= 1);
    }

    #[test]
    fn mindist_symmetric(
        a in series_strategy(32),
        b in series_strategy(32),
    ) {
        let enc = SaxEncoder::new(SaxConfig::new(8, 8).unwrap());
        let wa = enc.encode(&a).unwrap();
        let wb = enc.encode(&b).unwrap();
        let d1 = mindist(&wa, &wb).unwrap();
        let d2 = mindist(&wb, &wa).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-12);
    }
}
