use relcnn_tensor::TensorError;
use std::fmt;

/// Error type for dataset generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GtsrbError {
    /// A configuration parameter was out of range.
    BadConfig {
        /// Description of the violation.
        reason: String,
    },
    /// Error propagated from the tensor substrate.
    Tensor(TensorError),
}

impl fmt::Display for GtsrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GtsrbError::BadConfig { reason } => write!(f, "bad dataset config: {reason}"),
            GtsrbError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for GtsrbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GtsrbError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for GtsrbError {
    fn from(e: TensorError) -> Self {
        GtsrbError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = GtsrbError::BadConfig {
            reason: "zero image size".into(),
        };
        assert!(e.to_string().contains("zero image size"));
        let t: GtsrbError = TensorError::LengthMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(std::error::Error::source(&t).is_some());
    }
}
