//! Procedural traffic-sign rendering.
//!
//! Each class renders as its canonical geometry — outline shape, border
//! ring and a simple inner glyph — onto a cluttered background, under a
//! pose sampled from [`RenderParams`]. The renderer is pure: identical
//! parameters produce identical images.

use crate::classes::SignClass;
use relcnn_tensor::init::Rand;
use relcnn_tensor::{Shape, Tensor};
use relcnn_vision::draw;
use relcnn_vision::Rgb;
use serde::{Deserialize, Serialize};

/// Pose and photometric parameters of one rendered sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RenderParams {
    /// Sign centre as a fraction of image size (0.5 = centred).
    pub center: (f32, f32),
    /// Sign circumradius as a fraction of the half image size.
    pub scale: f32,
    /// Additional rotation (radians) on top of the canonical orientation —
    /// the "slightly angled" pose of Figure 3.
    pub rotation: f32,
    /// Multiplicative brightness (1.0 = nominal).
    pub brightness: f32,
    /// Standard deviation of additive Gaussian pixel noise.
    pub noise_std: f32,
    /// Number of random background clutter shapes.
    pub clutter: usize,
    /// Whether to apply a 3×3 box blur after compositing.
    pub blur: bool,
}

impl RenderParams {
    /// A clean, centred, nominal pose — the easiest possible sample.
    pub fn nominal() -> Self {
        RenderParams {
            center: (0.5, 0.5),
            scale: 0.75,
            rotation: 0.0,
            brightness: 1.0,
            noise_std: 0.0,
            clutter: 0,
            blur: false,
        }
    }

    /// Samples a randomised pose within dataset-realistic ranges.
    pub fn sampled(rng: &mut Rand) -> Self {
        RenderParams {
            center: (rng.uniform(0.42, 0.58), rng.uniform(0.42, 0.58)),
            scale: rng.uniform(0.55, 0.85),
            rotation: rng.uniform(-0.18, 0.18),
            brightness: rng.uniform(0.6, 1.25),
            noise_std: rng.uniform(0.0, 0.05),
            clutter: rng.below(6),
            blur: rng.chance(0.25),
        }
    }
}

impl Default for RenderParams {
    fn default() -> Self {
        RenderParams::nominal()
    }
}

/// Renders sign classes into CHW images of a fixed size.
#[derive(Debug, Clone)]
pub struct SignRenderer {
    size: usize,
}

impl SignRenderer {
    /// Creates a renderer producing `[3, size, size]` images.
    ///
    /// # Panics
    ///
    /// Panics if `size < 16` — too small for any shape to survive edge
    /// detection.
    pub fn new(size: usize) -> Self {
        assert!(size >= 16, "image size {size} too small to render signs");
        SignRenderer { size }
    }

    /// Image side length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Renders one sample. `rng` drives background clutter and noise only;
    /// pose comes entirely from `params`.
    pub fn render(&self, class: SignClass, params: &RenderParams, rng: &mut Rand) -> Tensor {
        let s = self.size as f32;
        let mut img = Tensor::zeros(Shape::d3(3, self.size, self.size));

        self.paint_background(&mut img, params, rng);

        let center = (params.center.0 * s, params.center.1 * s);
        let radius = params.scale * s * 0.5;
        self.paint_sign(&mut img, class, center, radius, params.rotation);

        // Photometrics: brightness, then noise, then optional blur.
        if (params.brightness - 1.0).abs() > f32::EPSILON {
            img.map_inplace(|v| v * params.brightness);
        }
        if params.noise_std > 0.0 {
            for v in img.iter_mut() {
                *v += rng.normal(0.0, params.noise_std);
            }
        }
        if params.blur {
            img = box_blur3(&img);
        }
        img.map_inplace(|v| v.clamp(0.0, 1.0));
        img
    }

    fn paint_background(&self, img: &mut Tensor, params: &RenderParams, rng: &mut Rand) {
        // Vertical sky-to-road gradient with a random tint.
        let tint = rng.uniform(-0.05, 0.05);
        let top = Rgb::new(0.55 + tint, 0.65 + tint, 0.75 + tint);
        let bottom = Rgb::new(0.35 + tint, 0.35 + tint, 0.33 + tint);
        let (h, w) = (self.size, self.size);
        let plane = h * w;
        let data = img.as_mut_slice();
        for y in 0..h {
            let c = top.lerp(bottom, y as f32 / h as f32);
            for x in 0..w {
                data[y * w + x] = c.r;
                data[plane + y * w + x] = c.g;
                data[2 * plane + y * w + x] = c.b;
            }
        }
        // Muted clutter: small circles and quadrilaterals well away from
        // the sign's own colour family.
        for _ in 0..params.clutter {
            let color = Rgb::new(
                rng.uniform(0.2, 0.55),
                rng.uniform(0.25, 0.6),
                rng.uniform(0.2, 0.55),
            );
            let cx = rng.uniform(0.0, self.size as f32);
            let cy = rng.uniform(0.0, self.size as f32);
            let r = rng.uniform(0.03, 0.12) * self.size as f32;
            if rng.chance(0.5) {
                draw::fill_circle_rgb(img, (cx, cy), r, color);
            } else {
                let rot = rng.uniform(0.0, std::f32::consts::TAU);
                let poly = draw::regular_polygon(4, (cx, cy), r, rot);
                draw::fill_polygon_rgb(img, &poly, color);
            }
        }
    }

    fn paint_sign(
        &self,
        img: &mut Tensor,
        class: SignClass,
        center: (f32, f32),
        radius: f32,
        rotation: f32,
    ) {
        let shape = class.shape();
        let rot = shape.canonical_rotation() + rotation;
        let (border, fill) = sign_colors(class);

        // Outline at full radius, fill at 82% — the border ring.
        match shape.sides() {
            Some(sides) => {
                let outer = draw::regular_polygon(sides, center, radius, rot);
                draw::fill_polygon_rgb(img, &outer, border);
                let inner = draw::regular_polygon(sides, center, radius * 0.82, rot);
                draw::fill_polygon_rgb(img, &inner, fill);
            }
            None => {
                draw::fill_circle_rgb(img, center, radius, border);
                draw::fill_circle_rgb(img, center, radius * 0.82, fill);
            }
        }
        self.paint_glyph(img, class, center, radius, rotation);
    }

    /// Simple geometric stand-ins for legends ("STOP", digits, arrows…).
    fn paint_glyph(
        &self,
        img: &mut Tensor,
        class: SignClass,
        center: (f32, f32),
        radius: f32,
        rotation: f32,
    ) {
        let bar = |img: &mut Tensor, half_w: f32, half_h: f32, color: Rgb| {
            let (cx, cy) = center;
            let (sin, cos) = rotation.sin_cos();
            let corners = [
                (-half_w, -half_h),
                (half_w, -half_h),
                (half_w, half_h),
                (-half_w, half_h),
            ]
            .map(|(x, y)| (cx + x * cos - y * sin, cy + x * sin + y * cos));
            draw::fill_polygon_rgb(img, &corners, color);
        };
        match class {
            SignClass::Stop => bar(img, radius * 0.55, radius * 0.14, Rgb::white()),
            SignClass::NoEntry => bar(img, radius * 0.55, radius * 0.16, Rgb::white()),
            SignClass::SpeedLimit => {
                bar(img, radius * 0.12, radius * 0.3, Rgb::black());
                let (cx, cy) = center;
                let dx = radius * 0.3;
                let (sin, cos) = rotation.sin_cos();
                draw::fill_circle_rgb(
                    img,
                    (cx + dx * cos, cy + dx * sin),
                    radius * 0.18,
                    Rgb::black(),
                );
            }
            SignClass::Warning => bar(img, radius * 0.08, radius * 0.3, Rgb::black()),
            SignClass::Parking => bar(img, radius * 0.12, radius * 0.4, Rgb::white()),
            SignClass::Mandatory => bar(img, radius * 0.4, radius * 0.12, Rgb::white()),
            SignClass::Yield | SignClass::PriorityRoad => {}
        }
    }
}

/// Border and fill colours of each class.
fn sign_colors(class: SignClass) -> (Rgb, Rgb) {
    match class {
        SignClass::Stop => (Rgb::white(), Rgb::sign_red()),
        SignClass::Yield => (Rgb::sign_red(), Rgb::white()),
        SignClass::NoEntry => (Rgb::white(), Rgb::sign_red()),
        SignClass::SpeedLimit => (Rgb::sign_red(), Rgb::white()),
        SignClass::Warning => (Rgb::sign_red(), Rgb::white()),
        SignClass::PriorityRoad => (Rgb::white(), Rgb::new(0.95, 0.8, 0.1)),
        SignClass::Parking => (Rgb::white(), Rgb::sign_blue()),
        SignClass::Mandatory => (Rgb::white(), Rgb::sign_blue()),
    }
}

/// 3×3 box blur on a CHW image (border pixels average their in-bounds
/// neighbourhood).
fn box_blur3(img: &Tensor) -> Tensor {
    let (c, h, w) = (img.shape().dim(0), img.shape().dim(1), img.shape().dim(2));
    let src = img.as_slice();
    let mut out = vec![0.0f32; src.len()];
    for ch in 0..c {
        let base = ch * h * w;
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0f32;
                let mut n = 0u32;
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let ny = y as i64 + dy;
                        let nx = x as i64 + dx;
                        if ny < 0 || nx < 0 || ny >= h as i64 || nx >= w as i64 {
                            continue;
                        }
                        acc += src[base + ny as usize * w + nx as usize];
                        n += 1;
                    }
                }
                out[base + y * w + x] = acc / n as f32;
            }
        }
    }
    Tensor::from_vec(img.shape().clone(), out).expect("same volume")
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcnn_vision::{radial, rgb_to_gray, sobel, threshold};

    fn render(class: SignClass, params: RenderParams, seed: u64) -> Tensor {
        SignRenderer::new(96).render(class, &params, &mut Rand::seeded(seed))
    }

    #[test]
    fn deterministic_given_seed_and_params() {
        let p = RenderParams::sampled(&mut Rand::seeded(1));
        let a = render(SignClass::Stop, p, 42);
        let b = render(SignClass::Stop, p, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ_in_background() {
        let mut p = RenderParams::nominal();
        p.clutter = 4;
        let a = render(SignClass::Stop, p, 1);
        let b = render(SignClass::Stop, p, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn values_clamped_to_unit_interval() {
        let mut p = RenderParams::nominal();
        p.brightness = 3.0;
        p.noise_std = 0.5;
        let img = render(SignClass::Warning, p, 3);
        assert!(img.min() >= 0.0 && img.max() <= 1.0);
    }

    #[test]
    fn stop_sign_is_red_at_centre() {
        let img = render(SignClass::Stop, RenderParams::nominal(), 0);
        // Centre is inside the white glyph bar; probe just above it.
        let y = 96 / 2 - 96 / 6;
        let r = img.get(&[0, y, 48]);
        let g = img.get(&[1, y, 48]);
        assert!(r > 0.5 && g < 0.3, "stop fill red: r={r} g={g}");
    }

    #[test]
    fn stop_sign_shape_recoverable_by_qualifier_frontend() {
        // The end-to-end property the whole dataset exists for: the
        // octagon must survive render -> gray -> Sobel -> threshold ->
        // radial signature.
        let mut p = RenderParams::nominal();
        p.rotation = 0.12; // Figure 3's "slightly angled"
        let img = render(SignClass::Stop, p, 7);
        let gray = rgb_to_gray(&img).unwrap();
        let edges = sobel::gradient_magnitude(&gray).unwrap();
        let mask = threshold::binarize(&edges, threshold::otsu_threshold(&edges));
        let sig = radial::radial_signature(&mask, 256).unwrap();
        assert!(
            sig.radial_ratio() < 1.25,
            "octagon flatness, got {}",
            sig.radial_ratio()
        );
        assert!(sig.mean_radius() > 20.0, "sign dominates the image");
    }

    #[test]
    fn yield_triangle_recoverable() {
        let img = render(SignClass::Yield, RenderParams::nominal(), 9);
        let gray = rgb_to_gray(&img).unwrap();
        let edges = sobel::gradient_magnitude(&gray).unwrap();
        let mask = threshold::binarize(&edges, threshold::otsu_threshold(&edges));
        let sig = radial::radial_signature(&mask, 256).unwrap();
        // Triangle: R/r = 2.0 — far from circle/octagon.
        assert!(sig.radial_ratio() > 1.5, "ratio {}", sig.radial_ratio());
    }

    #[test]
    fn all_classes_render_without_panic() {
        let mut rng = Rand::seeded(11);
        let renderer = SignRenderer::new(64);
        for class in SignClass::ALL {
            let p = RenderParams::sampled(&mut rng);
            let img = renderer.render(class, &p, &mut rng);
            assert_eq!(img.shape().dims(), &[3, 64, 64]);
            assert!(img.max() > 0.0, "{class} rendered something");
        }
    }

    #[test]
    fn blur_smooths_noise() {
        let mut p = RenderParams::nominal();
        p.noise_std = 0.2;
        p.blur = false;
        let noisy = render(SignClass::Parking, p, 5);
        p.blur = true;
        let blurred = render(SignClass::Parking, p, 5);
        // Blur reduces high-frequency energy: compare local variation.
        let tv = |t: &Tensor| {
            let (h, w) = (96usize, 96usize);
            let mut acc = 0.0f32;
            for y in 0..h {
                for x in 1..w {
                    acc += (t.get(&[0, y, x]) - t.get(&[0, y, x - 1])).abs();
                }
            }
            acc
        };
        assert!(tv(&blurred) < tv(&noisy));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_renderer_rejected() {
        SignRenderer::new(8);
    }
}
