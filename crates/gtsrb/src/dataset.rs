use crate::classes::SignClass;
use crate::error::GtsrbError;
use crate::render::{RenderParams, SignRenderer};
use relcnn_tensor::init::Rand;
use relcnn_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One labelled sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// CHW image in `[0, 1]`.
    pub image: Tensor,
    /// Ground-truth class.
    pub label: SignClass,
    /// The pose/photometric parameters it was rendered with (kept for
    /// failure analysis: "which poses does the qualifier reject?").
    pub params: RenderParams,
}

/// Generation parameters for a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Image side length (images are `[3, size, size]`).
    pub image_size: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Master seed; the whole dataset is a pure function of the config.
    pub seed: u64,
    /// Classes to include (defaults to all eight).
    pub classes: Vec<SignClass>,
}

impl DatasetConfig {
    /// Paper-scale configuration: 96×96 images (large enough for reliable
    /// edge geometry, small enough to train a 96-filter CNN on a CPU),
    /// 60 train / 20 test per class.
    pub fn standard(seed: u64) -> Self {
        DatasetConfig {
            image_size: 96,
            train_per_class: 60,
            test_per_class: 20,
            seed,
            classes: SignClass::ALL.to_vec(),
        }
    }

    /// Minimal configuration for unit tests and doctests: 48×48, 4 train /
    /// 2 test per class.
    pub fn tiny(seed: u64) -> Self {
        DatasetConfig {
            image_size: 48,
            train_per_class: 4,
            test_per_class: 2,
            seed,
            classes: SignClass::ALL.to_vec(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GtsrbError::BadConfig`] for empty class lists, zero
    /// sample counts, or images too small to render.
    pub fn validate(&self) -> Result<(), GtsrbError> {
        if self.classes.is_empty() {
            return Err(GtsrbError::BadConfig {
                reason: "class list is empty".into(),
            });
        }
        if self.train_per_class == 0 && self.test_per_class == 0 {
            return Err(GtsrbError::BadConfig {
                reason: "both train and test counts are zero".into(),
            });
        }
        if self.image_size < 16 {
            return Err(GtsrbError::BadConfig {
                reason: format!("image size {} too small", self.image_size),
            });
        }
        Ok(())
    }
}

/// A generated dataset with train/test splits.
#[derive(Debug, Clone)]
pub struct SyntheticGtsrb {
    train: Vec<Sample>,
    test: Vec<Sample>,
    config: DatasetConfig,
}

impl SyntheticGtsrb {
    /// Generates the dataset deterministically from its configuration.
    ///
    /// Training samples are shuffled (seeded); test samples stay grouped
    /// by class for per-class evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`GtsrbError::BadConfig`] for invalid configurations.
    pub fn generate(config: &DatasetConfig) -> Result<SyntheticGtsrb, GtsrbError> {
        config.validate()?;
        let renderer = SignRenderer::new(config.image_size);
        let mut master = Rand::seeded(config.seed);
        let mut train_rng = master.fork(1);
        let mut test_rng = master.fork(2);
        let mut shuffle_rng = master.fork(3);

        let mut train = Vec::with_capacity(config.classes.len() * config.train_per_class);
        let mut test = Vec::with_capacity(config.classes.len() * config.test_per_class);
        for &class in &config.classes {
            for _ in 0..config.train_per_class {
                let params = RenderParams::sampled(&mut train_rng);
                let image = renderer.render(class, &params, &mut train_rng);
                train.push(Sample {
                    image,
                    label: class,
                    params,
                });
            }
            for _ in 0..config.test_per_class {
                let params = RenderParams::sampled(&mut test_rng);
                let image = renderer.render(class, &params, &mut test_rng);
                test.push(Sample {
                    image,
                    label: class,
                    params,
                });
            }
        }
        shuffle_rng.shuffle(&mut train);
        Ok(SyntheticGtsrb {
            train,
            test,
            config: config.clone(),
        })
    }

    /// The (shuffled) training split.
    pub fn train(&self) -> &[Sample] {
        &self.train
    }

    /// The test split, grouped by class.
    pub fn test(&self) -> &[Sample] {
        &self.test
    }

    /// The generating configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Test samples of one class.
    pub fn test_of(&self, class: SignClass) -> impl Iterator<Item = &Sample> {
        self.test.iter().filter(move |s| s.label == class)
    }

    /// Class distribution of the training split (index-aligned with
    /// [`SignClass::ALL`]).
    pub fn train_class_counts(&self) -> [usize; SignClass::COUNT] {
        let mut counts = [0usize; SignClass::COUNT];
        for s in &self.train {
            counts[s.label.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = DatasetConfig::tiny(99);
        let a = SyntheticGtsrb::generate(&config).unwrap();
        let b = SyntheticGtsrb::generate(&config).unwrap();
        assert_eq!(a.train().len(), b.train().len());
        for (x, y) in a.train().iter().zip(b.train().iter()) {
            assert_eq!(x.image, y.image);
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn different_seeds_give_different_data() {
        let a = SyntheticGtsrb::generate(&DatasetConfig::tiny(1)).unwrap();
        let b = SyntheticGtsrb::generate(&DatasetConfig::tiny(2)).unwrap();
        assert!(a
            .train()
            .iter()
            .zip(b.train().iter())
            .any(|(x, y)| x.image != y.image));
    }

    #[test]
    fn split_sizes_and_balance() {
        let config = DatasetConfig::tiny(5);
        let data = SyntheticGtsrb::generate(&config).unwrap();
        assert_eq!(data.train().len(), 8 * 4);
        assert_eq!(data.test().len(), 8 * 2);
        assert_eq!(data.train_class_counts(), [4; 8]);
        for class in SignClass::ALL {
            assert_eq!(data.test_of(class).count(), 2);
        }
    }

    #[test]
    fn train_split_is_shuffled() {
        let data = SyntheticGtsrb::generate(&DatasetConfig::tiny(11)).unwrap();
        let labels: Vec<usize> = data.train().iter().map(|s| s.label.index()).collect();
        let sorted = {
            let mut l = labels.clone();
            l.sort_unstable();
            l
        };
        assert_ne!(labels, sorted, "shuffle must break class grouping");
    }

    #[test]
    fn subset_of_classes() {
        let config = DatasetConfig {
            classes: vec![SignClass::Stop, SignClass::Parking],
            ..DatasetConfig::tiny(3)
        };
        let data = SyntheticGtsrb::generate(&config).unwrap();
        assert!(data
            .train()
            .iter()
            .all(|s| s.label == SignClass::Stop || s.label == SignClass::Parking));
    }

    #[test]
    fn config_validation() {
        let mut c = DatasetConfig::tiny(0);
        c.classes.clear();
        assert!(SyntheticGtsrb::generate(&c).is_err());

        let mut c = DatasetConfig::tiny(0);
        c.train_per_class = 0;
        c.test_per_class = 0;
        assert!(SyntheticGtsrb::generate(&c).is_err());

        let mut c = DatasetConfig::tiny(0);
        c.image_size = 8;
        assert!(SyntheticGtsrb::generate(&c).is_err());
    }

    #[test]
    fn images_have_declared_shape() {
        let config = DatasetConfig {
            image_size: 64,
            ..DatasetConfig::tiny(8)
        };
        let data = SyntheticGtsrb::generate(&config).unwrap();
        for s in data.train().iter().chain(data.test().iter()) {
            assert_eq!(s.image.shape().dims(), &[3, 64, 64]);
            assert!(s.image.min() >= 0.0 && s.image.max() <= 1.0);
        }
    }
}
