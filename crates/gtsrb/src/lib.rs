//! Synthetic GTSRB-like traffic-sign dataset.
//!
//! The paper trains AlexNet on the German Traffic Sign Recognition
//! Benchmark (GTSRB, \[50\]) and uses a slightly angled stop sign from it
//! for Figure 3. Real GTSRB photographs are not redistributable here, so
//! this crate provides the documented substitution (DESIGN.md §2): a
//! **procedural renderer** that draws the geometry the experiments
//! actually depend on — signs whose *shape* (octagon, circle, triangle,
//! diamond, square) is recoverable by deterministic edge analysis —
//! under seeded pose, lighting, clutter and noise variation.
//!
//! Eight classes stand in for GTSRB's 43; class 0 is the stop sign
//! (octagon) whose recognition the hybrid CNN must qualify, and the class
//! catalogue records which classes are safety-critical (a parking sign is
//! not — the paper's own example of an unqualified class).
//!
//! # Example
//!
//! ```rust
//! use relcnn_gtsrb::{DatasetConfig, SignClass, SyntheticGtsrb};
//!
//! # fn main() -> Result<(), relcnn_gtsrb::GtsrbError> {
//! let data = SyntheticGtsrb::generate(&DatasetConfig::tiny(7))?;
//! assert!(!data.train().is_empty());
//! let stop_samples = data.train().iter()
//!     .filter(|s| s.label == SignClass::Stop)
//!     .count();
//! assert!(stop_samples > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod render;

mod classes;
mod dataset;
mod error;

pub use classes::{ShapeKind, SignClass};
pub use dataset::{DatasetConfig, Sample, SyntheticGtsrb};
pub use error::GtsrbError;
pub use render::{RenderParams, SignRenderer};

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, GtsrbError>;
