//! Post-hoc augmentation of rendered samples.
//!
//! The renderer already varies pose and photometrics; these helpers apply
//! *additional* perturbations to existing tensors, used by training-time
//! augmentation and by robustness tests of the qualifier.

use relcnn_tensor::init::Rand;
use relcnn_tensor::Tensor;

/// Adds i.i.d. Gaussian noise (clamping to `[0, 1]`).
pub fn gaussian_noise(image: &Tensor, std_dev: f32, rng: &mut Rand) -> Tensor {
    let mut out = image.clone();
    for v in out.iter_mut() {
        *v = (*v + rng.normal(0.0, std_dev)).clamp(0.0, 1.0);
    }
    out
}

/// Scales brightness by `factor` (clamping to `[0, 1]`).
pub fn brightness(image: &Tensor, factor: f32) -> Tensor {
    image.map(|v| (v * factor).clamp(0.0, 1.0))
}

/// Occludes a random axis-aligned rectangle with mid-gray — simulating a
/// sticker or dirt patch on the sign.
///
/// `max_fraction` bounds each rectangle side as a fraction of the image
/// side; CHW and HW tensors are both supported.
///
/// # Panics
///
/// Panics if the tensor is neither rank 2 nor rank 3.
pub fn occlude(image: &Tensor, max_fraction: f32, rng: &mut Rand) -> Tensor {
    let (h, w, channels) = match image.shape().rank() {
        2 => (image.shape().dim(0), image.shape().dim(1), 1),
        3 => (
            image.shape().dim(1),
            image.shape().dim(2),
            image.shape().dim(0),
        ),
        r => panic!("occlude expects HW or CHW tensor, got rank {r}"),
    };
    let frac = max_fraction.clamp(0.0, 1.0);
    let rect_h = ((h as f32 * frac * rng.uniform(0.3, 1.0)) as usize).max(1);
    let rect_w = ((w as f32 * frac * rng.uniform(0.3, 1.0)) as usize).max(1);
    let y0 = rng.below(h.saturating_sub(rect_h).max(1));
    let x0 = rng.below(w.saturating_sub(rect_w).max(1));
    let mut out = image.clone();
    let plane = h * w;
    let data = out.as_mut_slice();
    for c in 0..channels {
        for y in y0..(y0 + rect_h).min(h) {
            for x in x0..(x0 + rect_w).min(w) {
                data[c * plane + y * w + x] = 0.5;
            }
        }
    }
    out
}

/// Per-channel mean/std normalisation statistics over a set of images —
/// the training-input preprocessing step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelStats {
    /// Per-channel means.
    pub mean: [f32; 3],
    /// Per-channel standard deviations.
    pub std_dev: [f32; 3],
}

impl ChannelStats {
    /// Computes statistics over CHW images.
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty or any image is not `[3, h, w]`.
    pub fn measure(images: &[Tensor]) -> ChannelStats {
        assert!(!images.is_empty(), "need at least one image");
        let mut mean = [0.0f64; 3];
        let mut m2 = [0.0f64; 3];
        let mut count = 0u64;
        for img in images {
            assert_eq!(img.shape().rank(), 3, "CHW expected");
            assert_eq!(img.shape().dim(0), 3, "3 channels expected");
            let plane = img.shape().dim(1) * img.shape().dim(2);
            let data = img.as_slice();
            for c in 0..3 {
                for &v in &data[c * plane..(c + 1) * plane] {
                    mean[c] += v as f64;
                    m2[c] += (v as f64) * (v as f64);
                }
            }
            count += plane as u64;
        }
        let mut out = ChannelStats {
            mean: [0.0; 3],
            std_dev: [0.0; 3],
        };
        for c in 0..3 {
            let m = mean[c] / count as f64;
            let var = (m2[c] / count as f64 - m * m).max(0.0);
            out.mean[c] = m as f32;
            out.std_dev[c] = (var.sqrt() as f32).max(1e-6);
        }
        out
    }

    /// Applies `(x - mean) / std` per channel.
    ///
    /// # Panics
    ///
    /// Panics if `image` is not `[3, h, w]`.
    pub fn normalize(&self, image: &Tensor) -> Tensor {
        assert_eq!(image.shape().rank(), 3);
        assert_eq!(image.shape().dim(0), 3);
        let plane = image.shape().dim(1) * image.shape().dim(2);
        let mut out = image.clone();
        let data = out.as_mut_slice();
        for c in 0..3 {
            for v in &mut data[c * plane..(c + 1) * plane] {
                *v = (*v - self.mean[c]) / self.std_dev[c];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcnn_tensor::Shape;

    #[test]
    fn noise_changes_pixels_within_bounds() {
        let img = Tensor::full(Shape::d3(3, 8, 8), 0.5);
        let mut rng = Rand::seeded(1);
        let noisy = gaussian_noise(&img, 0.1, &mut rng);
        assert_ne!(noisy, img);
        assert!(noisy.min() >= 0.0 && noisy.max() <= 1.0);
        let clean = gaussian_noise(&img, 0.0, &mut rng);
        assert_eq!(clean, img);
    }

    #[test]
    fn brightness_scaling() {
        let img = Tensor::full(Shape::d3(3, 4, 4), 0.4);
        assert!((brightness(&img, 0.5).mean() - 0.2).abs() < 1e-6);
        assert!((brightness(&img, 4.0).mean() - 1.0).abs() < 1e-6, "clamped");
    }

    #[test]
    fn occlusion_paints_gray_rectangle() {
        let img = Tensor::zeros(Shape::d3(3, 32, 32));
        let mut rng = Rand::seeded(2);
        let occluded = occlude(&img, 0.4, &mut rng);
        let grays = occluded.iter().filter(|&&v| v == 0.5).count();
        assert!(grays > 0);
        assert_eq!(grays % 3, 0, "same rectangle in all channels");
    }

    #[test]
    fn occlusion_works_on_grayscale() {
        let img = Tensor::zeros(Shape::d2(16, 16));
        let mut rng = Rand::seeded(3);
        let occluded = occlude(&img, 0.3, &mut rng);
        assert!(occluded.iter().any(|&v| v == 0.5));
    }

    #[test]
    #[should_panic(expected = "HW or CHW")]
    fn occlusion_rejects_rank1() {
        occlude(&Tensor::zeros(Shape::d1(8)), 0.2, &mut Rand::seeded(0));
    }

    #[test]
    fn channel_stats_roundtrip() {
        let mut rng = Rand::seeded(5);
        let images: Vec<Tensor> = (0..4)
            .map(|_| {
                rng.tensor(
                    Shape::d3(3, 8, 8),
                    relcnn_tensor::init::Init::Uniform { lo: 0.2, hi: 0.8 },
                )
            })
            .collect();
        let stats = ChannelStats::measure(&images);
        // Normalised images have ~zero mean, ~unit std per channel.
        let normed: Vec<Tensor> = images.iter().map(|i| stats.normalize(i)).collect();
        let post = ChannelStats::measure(&normed);
        for c in 0..3 {
            assert!(post.mean[c].abs() < 0.05, "mean[{c}]={}", post.mean[c]);
            assert!((post.std_dev[c] - 1.0).abs() < 0.05);
        }
    }

    #[test]
    #[should_panic(expected = "at least one image")]
    fn stats_reject_empty() {
        ChannelStats::measure(&[]);
    }
}
