use serde::{Deserialize, Serialize};
use std::fmt;

/// The geometric outline of a traffic sign — the property the paper's
/// qualifier verifies ("any shape recognised by a CNN is not a 'Stop' sign
/// unless the shape has been confirmed as octagonal", §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ShapeKind {
    /// Eight-sided regular polygon (stop signs).
    Octagon,
    /// Circle (prohibitions, mandatory actions, speed limits).
    Circle,
    /// Equilateral triangle, point up (warnings).
    TriangleUp,
    /// Equilateral triangle, point down (yield).
    TriangleDown,
    /// Square rotated 45° (priority road).
    Diamond,
    /// Axis-aligned square (information, parking).
    Square,
}

impl ShapeKind {
    /// Number of polygon sides, `None` for the circle.
    pub fn sides(&self) -> Option<usize> {
        match self {
            ShapeKind::Octagon => Some(8),
            ShapeKind::Circle => None,
            ShapeKind::TriangleUp | ShapeKind::TriangleDown => Some(3),
            ShapeKind::Diamond | ShapeKind::Square => Some(4),
        }
    }

    /// Canonical rotation (radians) drawing the shape in its traffic-sign
    /// orientation (flat-top octagon, point-down yield triangle, …).
    pub fn canonical_rotation(&self) -> f32 {
        use std::f32::consts::PI;
        match self {
            // Flat-top octagon: vertices offset half a segment.
            ShapeKind::Octagon => PI / 8.0,
            ShapeKind::Circle => 0.0,
            // Image y grows downward: +π/2 puts a vertex at the bottom.
            ShapeKind::TriangleUp => -PI / 2.0,
            ShapeKind::TriangleDown => PI / 2.0,
            ShapeKind::Diamond => 0.0,
            ShapeKind::Square => PI / 4.0,
        }
    }
}

impl fmt::Display for ShapeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ShapeKind::Octagon => "octagon",
            ShapeKind::Circle => "circle",
            ShapeKind::TriangleUp => "triangle-up",
            ShapeKind::TriangleDown => "triangle-down",
            ShapeKind::Diamond => "diamond",
            ShapeKind::Square => "square",
        };
        f.write_str(s)
    }
}

/// The eight sign classes of the synthetic dataset.
///
/// Stand-ins for GTSRB's 43 classes, chosen so that every outline family
/// is represented and so that both safety-critical and non-critical
/// classes exist (the paper's architecture only qualifies the former).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SignClass {
    /// Stop — red octagon. THE safety-critical class of the paper.
    Stop,
    /// Yield ("give way") — point-down triangle, white with red border.
    Yield,
    /// No-entry — red circle with a white bar.
    NoEntry,
    /// Speed limit — white circle with red ring and dark digits.
    SpeedLimit,
    /// General warning — point-up triangle, white with red border.
    Warning,
    /// Priority road — yellow diamond with white border.
    PriorityRoad,
    /// Parking — blue square with white glyph (the paper's example of a
    /// classification that needs no qualification).
    Parking,
    /// Mandatory direction — blue circle with white arrow.
    Mandatory,
}

impl SignClass {
    /// All classes in index order.
    pub const ALL: [SignClass; 8] = [
        SignClass::Stop,
        SignClass::Yield,
        SignClass::NoEntry,
        SignClass::SpeedLimit,
        SignClass::Warning,
        SignClass::PriorityRoad,
        SignClass::Parking,
        SignClass::Mandatory,
    ];

    /// The class's dense index (0..8), usable as a network output unit.
    pub fn index(&self) -> usize {
        SignClass::ALL
            .iter()
            .position(|c| c == self)
            .expect("class listed in ALL")
    }

    /// Inverse of [`SignClass::index`].
    pub fn from_index(index: usize) -> Option<SignClass> {
        SignClass::ALL.get(index).copied()
    }

    /// Number of classes.
    pub const COUNT: usize = 8;

    /// The sign's outline shape.
    pub fn shape(&self) -> ShapeKind {
        match self {
            SignClass::Stop => ShapeKind::Octagon,
            SignClass::Yield => ShapeKind::TriangleDown,
            SignClass::NoEntry => ShapeKind::Circle,
            SignClass::SpeedLimit => ShapeKind::Circle,
            SignClass::Warning => ShapeKind::TriangleUp,
            SignClass::PriorityRoad => ShapeKind::Diamond,
            SignClass::Parking => ShapeKind::Square,
            SignClass::Mandatory => ShapeKind::Circle,
        }
    }

    /// Whether a misclassification of this class is safety-relevant, i.e.
    /// whether the hybrid network must qualify it before the result may be
    /// trusted ("classifications that are not considered safety critical
    /// (e.g., a parking prohibition) can be used without any
    /// qualification", §III-A).
    pub fn is_safety_critical(&self) -> bool {
        matches!(
            self,
            SignClass::Stop | SignClass::Yield | SignClass::NoEntry
        )
    }
}

impl fmt::Display for SignClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SignClass::Stop => "stop",
            SignClass::Yield => "yield",
            SignClass::NoEntry => "no-entry",
            SignClass::SpeedLimit => "speed-limit",
            SignClass::Warning => "warning",
            SignClass::PriorityRoad => "priority-road",
            SignClass::Parking => "parking",
            SignClass::Mandatory => "mandatory",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_roundtrip() {
        for (i, c) in SignClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(SignClass::from_index(i), Some(*c));
        }
        assert_eq!(SignClass::from_index(99), None);
        assert_eq!(SignClass::COUNT, SignClass::ALL.len());
    }

    #[test]
    fn stop_is_the_octagon() {
        assert_eq!(SignClass::Stop.shape(), ShapeKind::Octagon);
        assert_eq!(SignClass::Stop.index(), 0);
        assert!(SignClass::Stop.is_safety_critical());
    }

    #[test]
    fn parking_is_not_safety_critical() {
        assert!(!SignClass::Parking.is_safety_critical());
        assert!(!SignClass::SpeedLimit.is_safety_critical());
        assert!(SignClass::Yield.is_safety_critical());
        assert!(SignClass::NoEntry.is_safety_critical());
    }

    #[test]
    fn shape_metadata_consistent() {
        assert_eq!(ShapeKind::Octagon.sides(), Some(8));
        assert_eq!(ShapeKind::Circle.sides(), None);
        assert_eq!(ShapeKind::TriangleDown.sides(), Some(3));
        assert_eq!(ShapeKind::Diamond.sides(), Some(4));
        for k in [
            ShapeKind::Octagon,
            ShapeKind::Circle,
            ShapeKind::TriangleUp,
            ShapeKind::TriangleDown,
            ShapeKind::Diamond,
            ShapeKind::Square,
        ] {
            assert!(!k.to_string().is_empty());
        }
    }

    #[test]
    fn display_names_unique() {
        let names: std::collections::HashSet<String> =
            SignClass::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(names.len(), SignClass::COUNT);
    }

    #[test]
    fn every_shape_family_represented() {
        let shapes: std::collections::HashSet<_> =
            SignClass::ALL.iter().map(|c| c.shape()).collect();
        assert!(shapes.len() >= 5, "outline diversity: {shapes:?}");
    }
}
