//! Property-based tests for the synthetic dataset substrate.

use proptest::prelude::*;
use relcnn_gtsrb::{DatasetConfig, RenderParams, SignClass, SignRenderer, SyntheticGtsrb};
use relcnn_tensor::init::Rand;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rendering is a pure function of (class, params, rng seed).
    #[test]
    fn render_is_pure(
        class_idx in 0usize..8,
        seed in 0u64..500,
        rot in -0.2f32..0.2,
    ) {
        let class = SignClass::from_index(class_idx).unwrap();
        let mut params = RenderParams::nominal();
        params.rotation = rot;
        let renderer = SignRenderer::new(48);
        let a = renderer.render(class, &params, &mut Rand::seeded(seed));
        let b = renderer.render(class, &params, &mut Rand::seeded(seed));
        prop_assert_eq!(a, b);
    }

    /// All pixels stay in [0, 1] under any pose/photometric combination.
    #[test]
    fn pixels_in_unit_interval(seed in 0u64..500) {
        let mut rng = Rand::seeded(seed);
        let params = RenderParams::sampled(&mut rng);
        let class = SignClass::from_index(seed as usize % 8).unwrap();
        let img = SignRenderer::new(32).render(class, &params, &mut rng);
        prop_assert!(img.min() >= 0.0);
        prop_assert!(img.max() <= 1.0);
    }

    /// Sampled poses stay within their documented ranges.
    #[test]
    fn sampled_params_in_range(seed in 0u64..1000) {
        let mut rng = Rand::seeded(seed);
        let p = RenderParams::sampled(&mut rng);
        prop_assert!(p.scale >= 0.55 && p.scale <= 0.85);
        prop_assert!(p.rotation.abs() <= 0.18);
        prop_assert!(p.brightness >= 0.6 && p.brightness <= 1.25);
        prop_assert!(p.noise_std >= 0.0 && p.noise_std <= 0.05);
        prop_assert!(p.clutter < 6);
    }

    /// Dataset splits have exactly the configured sizes and class balance
    /// for any per-class counts.
    #[test]
    fn split_sizes_exact(
        train in 1usize..6,
        test in 1usize..4,
        seed in 0u64..100,
    ) {
        let data = SyntheticGtsrb::generate(&DatasetConfig {
            image_size: 32,
            train_per_class: train,
            test_per_class: test,
            seed,
            classes: SignClass::ALL.to_vec(),
        }).unwrap();
        prop_assert_eq!(data.train().len(), 8 * train);
        prop_assert_eq!(data.test().len(), 8 * test);
        prop_assert_eq!(data.train_class_counts(), [train; 8]);
    }

    /// Train and test splits never share an image (independent streams).
    #[test]
    fn splits_disjoint(seed in 0u64..50) {
        let data = SyntheticGtsrb::generate(&DatasetConfig {
            image_size: 32,
            train_per_class: 2,
            test_per_class: 2,
            seed,
            classes: vec![SignClass::Stop, SignClass::Parking],
        }).unwrap();
        for tr in data.train() {
            for te in data.test() {
                prop_assert_ne!(&tr.image, &te.image);
            }
        }
    }
}
