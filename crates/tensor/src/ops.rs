//! Elementwise kernels, reductions and matrix multiplication.
//!
//! These are the *unprotected* numeric kernels: they execute once, carry no
//! qualifier, and serve as the "native execution" baseline the paper
//! compares its reliable operators against.

use crate::{Shape, Tensor, TensorError};

impl Tensor {
    /// Elementwise sum of two equal-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(rhs, "mul", |a, b| a * b)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(self.shape().clone(), self.iter().map(|&v| f(v)).collect())
            .expect("map preserves length")
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.iter_mut() {
            *v = f(*v);
        }
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|v| v * k)
    }

    /// Adds `k` to every element.
    pub fn shift(&self, k: f32) -> Tensor {
        self.map(|v| v + k)
    }

    /// In-place AXPY update: `self += alpha * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) -> Result<(), TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape().dims().to_vec(),
                actual: rhs.shape().dims().to_vec(),
                op: "axpy",
            });
        }
        for (a, b) in self.iter_mut().zip(rhs.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.iter().sum()
    }

    /// Arithmetic mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Population variance of all elements (0.0 for empty tensors).
    pub fn variance(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        self.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / self.len() as f32
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f32 {
        self.variance().sqrt()
    }

    /// Largest element (`-inf` for empty tensors).
    pub fn max(&self) -> f32 {
        self.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (`+inf` for empty tensors).
    pub fn min(&self) -> f32 {
        self.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Flat index of the largest element (`None` for empty tensors).
    ///
    /// Ties resolve to the first occurrence, matching the deterministic
    /// classification semantics the qualifier block requires.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &v) in self.iter().enumerate() {
            match best {
                Some((_, bv)) if v <= bv => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Sum of squared elements (squared L2 norm).
    pub fn norm_sq(&self) -> f32 {
        self.iter().map(|&v| v * v).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Dot product of two equal-shaped tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32, TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape().dims().to_vec(),
                actual: rhs.shape().dims().to_vec(),
                op: "dot",
            });
        }
        Ok(self.iter().zip(rhs.iter()).map(|(a, b)| a * b).sum())
    }

    /// Matrix multiplication of two rank-2 tensors.
    ///
    /// Uses a cache-friendly i-k-j loop order; this is the throughput kernel
    /// behind the "native execution" baseline and `im2col` convolution.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not a
    /// matrix, or [`TensorError::ShapeMismatch`] if the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape().rank(),
                op: "matmul",
            });
        }
        if rhs.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: rhs.shape().rank(),
                op: "matmul",
            });
        }
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (rhs.shape().dim(0), rhs.shape().dim(1));
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                expected: vec![k, n],
                actual: vec![k2, n],
                op: "matmul",
            });
        }
        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (kk, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (o, &b_kj) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b_kj;
                }
            }
        }
        Tensor::from_vec(Shape::d2(m, n), out)
    }

    /// Applies `f` pairwise, validating shape equality.
    fn zip_with(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape().dims().to_vec(),
                actual: rhs.shape().dims().to_vec(),
                op,
            });
        }
        Ok(Tensor::from_vec(
            self.shape().clone(),
            self.iter()
                .zip(rhs.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
        .expect("zip preserves length"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(Shape::d1(n), v).unwrap()
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = t(vec![1., 2., 3.]);
        let b = t(vec![4., 5., 6.]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4., 10., 18.]);
        let c = Tensor::zeros(Shape::d1(2));
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn map_scale_shift() {
        let a = t(vec![1., -2., 3.]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1., 2., 3.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., -4., 6.]);
        assert_eq!(a.shift(1.0).as_slice(), &[2., -1., 4.]);
        let mut b = a.clone();
        b.map_inplace(|v| v * v);
        assert_eq!(b.as_slice(), &[1., 4., 9.]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = t(vec![1., 1.]);
        let g = t(vec![2., 4.]);
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.as_slice(), &[0., -1.]);
        assert!(a.axpy(1.0, &Tensor::zeros(Shape::d1(3))).is_err());
    }

    #[test]
    fn reductions() {
        let a = t(vec![1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.argmax(), Some(3));
        assert!((a.variance() - 1.25).abs() < 1e-6);
        assert!((a.std_dev() - 1.25f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.norm_sq(), 30.0);
    }

    #[test]
    fn argmax_ties_first_and_empty() {
        let a = t(vec![3., 1., 3.]);
        assert_eq!(a.argmax(), Some(0));
        let e = Tensor::from_vec(Shape::new(vec![0]), vec![]).unwrap();
        assert_eq!(e.argmax(), None);
        assert_eq!(e.mean(), 0.0);
    }

    #[test]
    fn dot_product() {
        let a = t(vec![1., 2.]);
        let b = t(vec![3., 4.]);
        assert_eq!(a.dot(&b).unwrap(), 11.0);
        assert!(a.dot(&t(vec![1.])).is_err());
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(Shape::d2(2, 2), vec![1., 2., 3., 4.]).unwrap();
        let i = Tensor::from_fn(Shape::d2(2, 2), |x| if x[0] == x[1] { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(Shape::d2(3, 2), vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d2(2, 2));
        assert!(a.matmul(&b).is_err());
        assert!(Tensor::zeros(Shape::d1(3)).matmul(&b).is_err());
        assert!(b.matmul(&Tensor::zeros(Shape::d1(3))).is_err());
    }

    #[test]
    fn matmul_agrees_with_naive() {
        // Pseudo-random fill without an RNG dependency in tests.
        let a = Tensor::from_fn(Shape::d2(5, 7), |i| {
            ((i[0] * 31 + i[1] * 17) % 13) as f32 - 6.0
        });
        let b = Tensor::from_fn(Shape::d2(7, 4), |i| {
            ((i[0] * 19 + i[1] * 29) % 11) as f32 - 5.0
        });
        let fast = a.matmul(&b).unwrap();
        for i in 0..5 {
            for j in 0..4 {
                let mut acc = 0.0;
                for k in 0..7 {
                    acc += a.get(&[i, k]) * b.get(&[k, j]);
                }
                assert!((fast.get(&[i, j]) - acc).abs() < 1e-4);
            }
        }
    }
}
