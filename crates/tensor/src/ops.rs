//! Elementwise kernels, reductions and matrix multiplication.
//!
//! These are the *unprotected* numeric kernels: they execute once, carry no
//! qualifier, and serve as the "native execution" baseline the paper
//! compares its reliable operators against.

use crate::{Shape, Tensor, TensorError};

/// Default row-block edge of the cache-blocked GEMM kernel.
///
/// A block of output rows whose A-panel (`BLOCK_I × k` floats) stays
/// register/L1-friendly while the B-panel is reused across the whole block.
pub const GEMM_BLOCK_I: usize = 64;

/// Default column-block edge of the cache-blocked GEMM kernel.
///
/// The B-panel actually reused across an entire row block is
/// `k × BLOCK_J` floats; 128 columns keeps it L2-resident for every layer
/// geometry the AlexNet variants produce.
pub const GEMM_BLOCK_J: usize = 128;

/// Register accumulator tile: a `4 × 16` output patch lives in local
/// accumulators across the *entire* k loop and is stored once, instead
/// of re-loading and re-storing output on every k iteration — the
/// classic register-blocked GEMM micro-kernel. The row dimension is the
/// one that beats the memory wall: every 16-wide B load is consumed by
/// four A rows, so the B panel is swept once per *row group* instead of
/// once per row (4× less B traffic — the single-row variant measured
/// L2-bandwidth-bound, not ALU-bound, on the AlexNet layer shapes).
/// 4×16 keeps the accumulators plus a B chunk inside the 16 vector
/// registers. Per output element the accumulation order is untouched
/// (k ascending into one scalar slot, rows skip their own `a_ik == 0.0`
/// independently), so the tile is invisible to the bit-exactness
/// contract.
const GEMM_ROW_TILE: usize = 4;
const GEMM_COL_TILE: usize = 16;

/// Cache-blocked matrix multiply into a caller-owned buffer:
/// `out[m×n] = a[m×k] · b[k×n]`, allocation-free.
///
/// **Bit-exactness contract:** only the *i/j* (row/column) loops are tiled;
/// for every output element the k-accumulation runs in ascending order with
/// the same `a_ik == 0.0` skip as [`Tensor::matmul`], so each element's
/// floating-point operation sequence — and therefore its bit pattern —
/// is identical to the naive kernel. (The single caveat is the payload
/// of a NaN produced from *two* NaN operands, which is codegen-defined
/// on x86 and not pinned by either kernel; single-NaN propagation,
/// signed zeros and infinities are bit-exact.) Campaign verdict bits
/// (`confidence_bits`) and every byte-diffed artefact depend on this;
/// it is pinned by proptests.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when a slice length disagrees
/// with the given dimensions.
pub fn gemm_into(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) -> Result<(), TensorError> {
    gemm_kernel(m, k, n, a, b, None, out, GEMM_BLOCK_I, GEMM_BLOCK_J)
}

/// [`gemm_into`] with a fused per-row constant: computes
/// `out[i][j] = (a · b)[i][j] + bias[i]` in one pass, adding the bias at
/// store time — *after* each element's k-accumulation completes, exactly
/// where the separate "matmul, then add bias per row" sequence performs
/// the add. Bit-identical to the two-pass form, without re-reading the
/// whole output matrix. This is the convolution inference fast path.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when a slice length (including
/// `bias.len() != m`) disagrees with the given dimensions.
pub fn gemm_bias_into(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
) -> Result<(), TensorError> {
    if bias.len() != m {
        return Err(TensorError::LengthMismatch {
            expected: m,
            actual: bias.len(),
        });
    }
    gemm_kernel(m, k, n, a, b, Some(bias), out, GEMM_BLOCK_I, GEMM_BLOCK_J)
}

/// [`gemm_into`] with explicit block edges — exposed so tests can force
/// non-tile-multiple and degenerate blockings; production callers use the
/// default blocks via [`gemm_into`].
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when a slice length disagrees
/// with the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into_blocked(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    block_i: usize,
    block_j: usize,
) -> Result<(), TensorError> {
    gemm_kernel(m, k, n, a, b, None, out, block_i, block_j)
}

/// Shared body of the blocked GEMM entry points. `bias` is `None` for
/// the plain product; `Some(per-row constants)` adds `bias[i]` to every
/// element of row `i` at store time (after the element's accumulation
/// is complete — never folded into the k loop, the two-pass op order is
/// preserved). A `bias[i]` add happens exactly once per element and
/// only when `bias` is present: `x + 0.0` is *not* an f32 identity
/// (`-0.0 + 0.0 == +0.0`), so absence of bias must skip the add
/// entirely rather than add zero.
#[allow(clippy::too_many_arguments)]
fn gemm_kernel(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    block_i: usize,
    block_j: usize,
) -> Result<(), TensorError> {
    if a.len() != m * k {
        return Err(TensorError::LengthMismatch {
            expected: m * k,
            actual: a.len(),
        });
    }
    if b.len() != k * n {
        return Err(TensorError::LengthMismatch {
            expected: k * n,
            actual: b.len(),
        });
    }
    if out.len() != m * n {
        return Err(TensorError::LengthMismatch {
            expected: m * n,
            actual: out.len(),
        });
    }
    let block_i = block_i.max(1);
    let block_j = block_j.max(1);
    out.fill(0.0);
    if n == 1 {
        return gemv_unrolled(m, k, a, b, bias, out);
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the only obligation of calling this `#[target_feature]`
        // function is that the CPU supports AVX2, which the runtime
        // detection guard just established.
        #[allow(unsafe_code)]
        unsafe {
            simd::gemm_blocked_avx2(m, k, n, a, b, bias, out, block_i, block_j);
        }
        return Ok(());
    }
    gemm_blocked_body(m, k, n, a, b, bias, out, block_i, block_j);
    Ok(())
}

/// ISA-specialised recompilations of [`gemm_blocked_body`].
///
/// The portable build targets the x86-64 baseline (SSE2, 4-lane
/// vectors); every deployment CPU this workspace has seen carries AVX2
/// (8-lane). Recompiling the *identical* Rust body with the `avx2`
/// feature enabled lets LLVM pick wider registers without changing a
/// single operation: vectorisation here only runs *across* independent
/// output accumulators (the register tile), never across the k loop, so
/// each element's sequential "k ascending, skip `a_ik == 0.0`"
/// accumulation — the bit-exactness contract — is untouched. The `fma`
/// feature is deliberately NOT enabled: fused multiply-add skips the
/// intermediate rounding and would change output bits.
///
/// This module is the crate's single `unsafe` exception (see the crate
/// root's `deny(unsafe_code)` note): the one unsafe operation is calling
/// the `#[target_feature]` function, discharged by the runtime
/// `is_x86_feature_detected!` guard at the call site.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use super::gemm_blocked_body;

    /// [`gemm_blocked_body`] compiled with AVX2 enabled. Safe to call
    /// on any CPU that supports AVX2.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_blocked_avx2(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        block_i: usize,
        block_j: usize,
    ) {
        gemm_blocked_body(m, k, n, a, b, bias, out, block_i, block_j);
    }
}

/// The blocked/register-tiled GEMM loop nest, shared verbatim by the
/// portable path and the AVX2 recompilation. Dimension checks, output
/// zeroing and the n == 1 dispatch happen in [`gemm_kernel`]; this body
/// assumes consistent slice lengths.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn gemm_blocked_body(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    block_i: usize,
    block_j: usize,
) {
    for i0 in (0..m).step_by(block_i) {
        let i1 = (i0 + block_i).min(m);
        // Column blocks inside the row block: the `k × block_j` B-panel
        // stays cache-resident while every row of the block consumes it.
        for j0 in (0..n).step_by(block_j) {
            let j1 = (j0 + block_j).min(n);
            let width = j1 - j0;
            // Register-tiled body. The micro-kernel holds a
            // `GEMM_ROW_TILE × GEMM_COL_TILE` output patch in local
            // accumulators for the whole k loop and stores each chunk
            // exactly once; sharing every B load across the row group is
            // what beats the memory wall — a single-row tile re-reads
            // the full B panel once per output row. Per element the op
            // sequence is still "k ascending with the a_ik == 0.0 skip"
            // — identical to the naive kernel, only the memory traffic
            // changes.
            let mut i = i0;
            while i + GEMM_ROW_TILE <= i1 {
                let rows: [&[f32]; GEMM_ROW_TILE] =
                    core::array::from_fn(|t| &a[(i + t) * k..(i + t + 1) * k]);
                // When no row of the group contains a zero, the
                // `a_ik == 0.0` skip can never fire, so the branch-free
                // loop below performs the *same* op sequence with four
                // fewer compare-and-branches per k step. Real conv/dense
                // weights are never exactly 0.0, so inference always
                // takes this path; the checking loop remains for
                // sparse/synthetic operands.
                let zero_free = rows.iter().all(|r| r.iter().all(|&v| v != 0.0));
                let mut jc = 0;
                while jc + GEMM_COL_TILE <= width {
                    let col = j0 + jc;
                    let mut acc = [[0.0f32; GEMM_COL_TILE]; GEMM_ROW_TILE];
                    if zero_free {
                        // Manually unrolled over the four rows: named
                        // accumulators promote to vector registers,
                        // where an array indexed by the row loop
                        // variable spills to the stack.
                        let [r0, r1, r2, r3] = rows;
                        let [mut c0, mut c1, mut c2, mut c3] =
                            [[0.0f32; GEMM_COL_TILE]; GEMM_ROW_TILE];
                        for (kk, b_row) in b.chunks_exact(n).enumerate() {
                            let b_chunk = &b_row[col..col + GEMM_COL_TILE];
                            let (a0, a1, a2, a3) = (r0[kk], r1[kk], r2[kk], r3[kk]);
                            for ((((&b_kj, o0), o1), o2), o3) in b_chunk
                                .iter()
                                .zip(c0.iter_mut())
                                .zip(c1.iter_mut())
                                .zip(c2.iter_mut())
                                .zip(c3.iter_mut())
                            {
                                *o0 += a0 * b_kj;
                                *o1 += a1 * b_kj;
                                *o2 += a2 * b_kj;
                                *o3 += a3 * b_kj;
                            }
                        }
                        acc = [c0, c1, c2, c3];
                    } else {
                        for kk in 0..k {
                            let b_chunk = &b[kk * n + col..kk * n + col + GEMM_COL_TILE];
                            for (t, row) in rows.iter().enumerate() {
                                let a_ik = row[kk];
                                if a_ik == 0.0 {
                                    continue;
                                }
                                for (o, &b_kj) in acc[t].iter_mut().zip(b_chunk) {
                                    *o += a_ik * b_kj;
                                }
                            }
                        }
                    }
                    for (t, chunk) in acc.iter_mut().enumerate() {
                        if let Some(bs) = bias {
                            let bv = bs[i + t];
                            for o in chunk.iter_mut() {
                                *o += bv;
                            }
                        }
                        out[(i + t) * n + col..(i + t) * n + col + GEMM_COL_TILE]
                            .copy_from_slice(chunk);
                    }
                    jc += GEMM_COL_TILE;
                }
                if jc < width {
                    // Ragged right edge of the row group: one column at
                    // a time, but still sharing each B element across
                    // the four rows and accumulating in registers — the
                    // per-row in-place fallback re-sweeps the whole k
                    // range per row and measured ~2× slower here.
                    for j in (j0 + jc)..j1 {
                        let mut accr = [0.0f32; GEMM_ROW_TILE];
                        for kk in 0..k {
                            let b_kj = b[kk * n + j];
                            for (t, row) in rows.iter().enumerate() {
                                let a_ik = row[kk];
                                if a_ik != 0.0 {
                                    accr[t] += a_ik * b_kj;
                                }
                            }
                        }
                        for (t, &v) in accr.iter().enumerate() {
                            let mut v = v;
                            if let Some(bs) = bias {
                                v += bs[i + t];
                            }
                            out[(i + t) * n + j] = v;
                        }
                    }
                }
                i += GEMM_ROW_TILE;
            }
            // Leftover rows (fewer than a full row group): single-row
            // tiles, same per-element order.
            for i in i..i1 {
                let a_row = &a[i * k..(i + 1) * k];
                let bias_i = bias.map(|bs| bs[i]);
                let mut jc = 0;
                while jc + GEMM_COL_TILE <= width {
                    let col = j0 + jc;
                    let mut acc = [0.0f32; GEMM_COL_TILE];
                    for (kk, &a_ik) in a_row.iter().enumerate() {
                        if a_ik == 0.0 {
                            continue;
                        }
                        let b_chunk = &b[kk * n + col..kk * n + col + GEMM_COL_TILE];
                        for (o, &b_kj) in acc.iter_mut().zip(b_chunk) {
                            *o += a_ik * b_kj;
                        }
                    }
                    if let Some(bv) = bias_i {
                        for o in &mut acc {
                            *o += bv;
                        }
                    }
                    out[i * n + col..i * n + col + GEMM_COL_TILE].copy_from_slice(&acc);
                    jc += GEMM_COL_TILE;
                }
                if jc < width {
                    gemm_remainder_cols(n, a_row, b, out, i, j0 + jc, j1);
                    if let Some(bv) = bias_i {
                        for o in &mut out[i * n + j0 + jc..i * n + j1] {
                            *o += bv;
                        }
                    }
                }
            }
        }
    }
}

/// Remainder columns of one output row (a column block narrower than
/// the register tile, or its ragged right edge): the original in-place
/// accumulation over `out[i, j0..j1)`.
#[inline(always)]
fn gemm_remainder_cols(
    n: usize,
    a_row: &[f32],
    b: &[f32],
    out: &mut [f32],
    i: usize,
    j0: usize,
    j1: usize,
) {
    let o_row = &mut out[i * n + j0..i * n + j1];
    for (kk, &a_ik) in a_row.iter().enumerate() {
        if a_ik == 0.0 {
            continue;
        }
        let b_row = &b[kk * n + j0..kk * n + j1];
        for (o, &b_kj) in o_row.iter_mut().zip(b_row.iter()) {
            *o += a_ik * b_kj;
        }
    }
}

/// Number of output rows whose dot products run interleaved in the
/// matrix-vector fast path. Each row's accumulation is a *serial* FP add
/// chain (the bit-exactness contract forbids splitting it), so a single
/// row is latency-bound at one add per ~4 cycles; eight independent row
/// chains in flight hide that latency completely.
const GEMV_ROWS: usize = 8;

/// `n == 1` fast path of [`gemm_into_blocked`]: `out[m] = a[m×k] · b[k]`.
///
/// The general kernel degenerates badly here — its inner column loop has
/// length 1, so per-k slicing and loop overhead swamp the two useful
/// flops. Instead each output element keeps its own scalar accumulator
/// (k ascending, same `a_ik == 0.0` skip — the element's operation
/// sequence is exactly the naive kernel's) and [`GEMV_ROWS`] rows are
/// processed per pass so the independent add chains overlap.
fn gemv_unrolled(
    m: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
) -> Result<(), TensorError> {
    let mut i = 0;
    while i + GEMV_ROWS <= m {
        let rows: [&[f32]; GEMV_ROWS] = core::array::from_fn(|t| &a[(i + t) * k..(i + t + 1) * k]);
        let mut acc = [0.0f32; GEMV_ROWS];
        for (kk, &b_k) in b.iter().enumerate() {
            for t in 0..GEMV_ROWS {
                let a_ik = rows[t][kk];
                if a_ik != 0.0 {
                    acc[t] += a_ik * b_k;
                }
            }
        }
        if let Some(bs) = bias {
            for (o, &bv) in acc.iter_mut().zip(&bs[i..i + GEMV_ROWS]) {
                *o += bv;
            }
        }
        out[i..i + GEMV_ROWS].copy_from_slice(&acc);
        i += GEMV_ROWS;
    }
    for i in i..m {
        let a_row = &a[i * k..(i + 1) * k];
        let mut acc = 0.0f32;
        for (&a_ik, &b_k) in a_row.iter().zip(b.iter()) {
            if a_ik != 0.0 {
                acc += a_ik * b_k;
            }
        }
        if let Some(bs) = bias {
            acc += bs[i];
        }
        out[i] = acc;
    }
    Ok(())
}

/// Flat index of the largest element of a slice (`None` when empty), with
/// first-occurrence tie-breaking — the slice-level twin of
/// [`Tensor::argmax`], for the zero-allocation inference path.
pub fn argmax_slice(xs: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in xs.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

impl Tensor {
    /// Elementwise sum of two equal-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(rhs, "mul", |a, b| a * b)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(self.shape().clone(), self.iter().map(|&v| f(v)).collect())
            .expect("map preserves length")
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.iter_mut() {
            *v = f(*v);
        }
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|v| v * k)
    }

    /// Adds `k` to every element.
    pub fn shift(&self, k: f32) -> Tensor {
        self.map(|v| v + k)
    }

    /// In-place AXPY update: `self += alpha * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) -> Result<(), TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape().dims().to_vec(),
                actual: rhs.shape().dims().to_vec(),
                op: "axpy",
            });
        }
        for (a, b) in self.iter_mut().zip(rhs.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.iter().sum()
    }

    /// Arithmetic mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Population variance of all elements (0.0 for empty tensors).
    pub fn variance(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        self.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / self.len() as f32
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f32 {
        self.variance().sqrt()
    }

    /// Largest element (`-inf` for empty tensors).
    pub fn max(&self) -> f32 {
        self.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (`+inf` for empty tensors).
    pub fn min(&self) -> f32 {
        self.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Flat index of the largest element (`None` for empty tensors).
    ///
    /// Ties resolve to the first occurrence, matching the deterministic
    /// classification semantics the qualifier block requires.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &v) in self.iter().enumerate() {
            match best {
                Some((_, bv)) if v <= bv => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Sum of squared elements (squared L2 norm).
    pub fn norm_sq(&self) -> f32 {
        self.iter().map(|&v| v * v).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Dot product of two equal-shaped tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32, TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape().dims().to_vec(),
                actual: rhs.shape().dims().to_vec(),
                op: "dot",
            });
        }
        Ok(self.iter().zip(rhs.iter()).map(|(a, b)| a * b).sum())
    }

    /// Matrix multiplication of two rank-2 tensors.
    ///
    /// Uses a cache-friendly i-k-j loop order; this is the throughput kernel
    /// behind the "native execution" baseline and `im2col` convolution.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not a
    /// matrix, or [`TensorError::ShapeMismatch`] if the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape().rank(),
                op: "matmul",
            });
        }
        if rhs.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: rhs.shape().rank(),
                op: "matmul",
            });
        }
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (rhs.shape().dim(0), rhs.shape().dim(1));
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                expected: vec![k, n],
                actual: vec![k2, n],
                op: "matmul",
            });
        }
        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (kk, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (o, &b_kj) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b_kj;
                }
            }
        }
        Tensor::from_vec(Shape::d2(m, n), out)
    }

    /// Cache-blocked matrix multiplication into a caller-owned buffer —
    /// the zero-allocation inference kernel. `out` must hold exactly
    /// `m × n` elements; it is fully overwritten.
    ///
    /// Bit-identical to [`Tensor::matmul`] (see [`gemm_into`] for the
    /// blocking contract); `matmul` stays the naive reference oracle.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not a
    /// matrix, [`TensorError::ShapeMismatch`] if the inner dimensions
    /// disagree, or [`TensorError::LengthMismatch`] if `out` has the wrong
    /// length.
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut [f32]) -> Result<(), TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape().rank(),
                op: "matmul_into",
            });
        }
        if rhs.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: rhs.shape().rank(),
                op: "matmul_into",
            });
        }
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (rhs.shape().dim(0), rhs.shape().dim(1));
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                expected: vec![k, n],
                actual: vec![k2, n],
                op: "matmul_into",
            });
        }
        gemm_into(m, k, n, self.as_slice(), rhs.as_slice(), out)
    }

    /// Applies `f` pairwise, validating shape equality.
    fn zip_with(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape().dims().to_vec(),
                actual: rhs.shape().dims().to_vec(),
                op,
            });
        }
        Ok(Tensor::from_vec(
            self.shape().clone(),
            self.iter()
                .zip(rhs.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
        .expect("zip preserves length"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(Shape::d1(n), v).unwrap()
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = t(vec![1., 2., 3.]);
        let b = t(vec![4., 5., 6.]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4., 10., 18.]);
        let c = Tensor::zeros(Shape::d1(2));
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn map_scale_shift() {
        let a = t(vec![1., -2., 3.]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1., 2., 3.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., -4., 6.]);
        assert_eq!(a.shift(1.0).as_slice(), &[2., -1., 4.]);
        let mut b = a.clone();
        b.map_inplace(|v| v * v);
        assert_eq!(b.as_slice(), &[1., 4., 9.]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = t(vec![1., 1.]);
        let g = t(vec![2., 4.]);
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.as_slice(), &[0., -1.]);
        assert!(a.axpy(1.0, &Tensor::zeros(Shape::d1(3))).is_err());
    }

    #[test]
    fn reductions() {
        let a = t(vec![1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.argmax(), Some(3));
        assert!((a.variance() - 1.25).abs() < 1e-6);
        assert!((a.std_dev() - 1.25f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.norm_sq(), 30.0);
    }

    #[test]
    fn argmax_ties_first_and_empty() {
        let a = t(vec![3., 1., 3.]);
        assert_eq!(a.argmax(), Some(0));
        let e = Tensor::from_vec(Shape::new(vec![0]), vec![]).unwrap();
        assert_eq!(e.argmax(), None);
        assert_eq!(e.mean(), 0.0);
    }

    #[test]
    fn dot_product() {
        let a = t(vec![1., 2.]);
        let b = t(vec![3., 4.]);
        assert_eq!(a.dot(&b).unwrap(), 11.0);
        assert!(a.dot(&t(vec![1.])).is_err());
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(Shape::d2(2, 2), vec![1., 2., 3., 4.]).unwrap();
        let i = Tensor::from_fn(Shape::d2(2, 2), |x| if x[0] == x[1] { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(Shape::d2(3, 2), vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d2(2, 2));
        assert!(a.matmul(&b).is_err());
        assert!(Tensor::zeros(Shape::d1(3)).matmul(&b).is_err());
        assert!(b.matmul(&Tensor::zeros(Shape::d1(3))).is_err());
    }

    #[test]
    fn matmul_into_bit_identical_to_matmul() {
        let a = Tensor::from_fn(Shape::d2(9, 13), |i| {
            ((i[0] * 31 + i[1] * 17) % 23) as f32 / 7.0 - 1.5
        });
        let b = Tensor::from_fn(Shape::d2(13, 11), |i| {
            ((i[0] * 19 + i[1] * 29) % 21) as f32 / 5.0 - 2.0
        });
        let reference = a.matmul(&b).unwrap();
        // Garbage-prefilled output: the kernel must fully overwrite it.
        let mut out = vec![f32::NAN; 9 * 11];
        a.matmul_into(&b, &mut out).unwrap();
        for (x, y) in out.iter().zip(reference.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_into_handles_nan_and_inf_payloads() {
        // The a_ik == 0.0 skip means 0·inf never produces a NaN — blocked
        // and naive kernels must agree on these exact semantics.
        let a = Tensor::from_vec(
            Shape::d2(2, 3),
            vec![0.0, f32::INFINITY, 1.0, f32::NAN, 0.0, -2.0],
        )
        .unwrap();
        let b = Tensor::from_vec(
            Shape::d2(3, 2),
            vec![f32::INFINITY, 1.0, 2.0, f32::NEG_INFINITY, 0.5, f32::NAN],
        )
        .unwrap();
        let reference = a.matmul(&b).unwrap();
        let mut out = vec![0.0f32; 4];
        a.matmul_into(&b, &mut out).unwrap();
        for (x, y) in out.iter().zip(reference.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn gemm_blocked_edges_and_degenerate_shapes() {
        // Empty, 1-row, 1-col and non-tile-multiple shapes, across block
        // sizes including 1 (maximal tiling) and larger-than-matrix.
        for &(m, k, n) in &[
            (0usize, 3usize, 4usize),
            (3, 0, 4),
            (3, 4, 0),
            (1, 5, 1),
            (1, 1, 7),
            (5, 3, 1),
            (7, 5, 9),
        ] {
            let a = Tensor::from_fn(Shape::d2(m, k), |i| (i[0] * 7 + i[1] * 3) as f32 - 4.0);
            let b = Tensor::from_fn(Shape::d2(k, n), |i| (i[0] * 5 + i[1]) as f32 - 3.0);
            let reference = a.matmul(&b).unwrap();
            for &(bi, bj) in &[(1usize, 1usize), (2, 3), (64, 128), (1000, 1000)] {
                let mut out = vec![f32::NAN; m * n];
                gemm_into_blocked(m, k, n, a.as_slice(), b.as_slice(), &mut out, bi, bj).unwrap();
                for (x, y) in out.iter().zip(reference.iter()) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "m={m} k={k} n={n} bi={bi} bj={bj}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_into_validates_lengths() {
        let a = vec![0.0f32; 6];
        let b = vec![0.0f32; 6];
        let mut out = vec![0.0f32; 4];
        assert!(gemm_into(2, 3, 2, &a, &b, &mut out).is_ok());
        assert!(gemm_into(2, 3, 2, &a[..5], &b, &mut out).is_err());
        assert!(gemm_into(2, 3, 2, &a, &b[..5], &mut out).is_err());
        assert!(gemm_into(2, 3, 2, &a, &b, &mut out[..3]).is_err());
    }

    #[test]
    fn matmul_into_rejects_bad_shapes() {
        let a = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d2(2, 2));
        let mut out = vec![0.0f32; 4];
        assert!(a.matmul_into(&b, &mut out).is_err());
        assert!(Tensor::zeros(Shape::d1(3))
            .matmul_into(&b, &mut out)
            .is_err());
        assert!(b
            .matmul_into(&Tensor::zeros(Shape::d1(3)), &mut out)
            .is_err());
        let c = Tensor::zeros(Shape::d2(3, 2));
        assert!(a.matmul_into(&c, &mut out[..3]).is_err());
    }

    #[test]
    fn argmax_slice_matches_tensor_argmax() {
        for data in [
            vec![],
            vec![1.0f32],
            vec![3.0, 1.0, 3.0],
            vec![f32::NAN, 1.0, 2.0],
            vec![f32::NEG_INFINITY, f32::INFINITY],
        ] {
            let n = data.len();
            let t = Tensor::from_vec(Shape::d1(n), data.clone()).unwrap();
            assert_eq!(argmax_slice(&data), t.argmax());
        }
    }

    #[test]
    fn matmul_agrees_with_naive() {
        // Pseudo-random fill without an RNG dependency in tests.
        let a = Tensor::from_fn(Shape::d2(5, 7), |i| {
            ((i[0] * 31 + i[1] * 17) % 13) as f32 - 6.0
        });
        let b = Tensor::from_fn(Shape::d2(7, 4), |i| {
            ((i[0] * 19 + i[1] * 29) % 11) as f32 - 5.0
        });
        let fast = a.matmul(&b).unwrap();
        for i in 0..5 {
            for j in 0..4 {
                let mut acc = 0.0;
                for k in 0..7 {
                    acc += a.get(&[i, k]) * b.get(&[k, j]);
                }
                assert!((fast.get(&[i, j]) - acc).abs() < 1e-4);
            }
        }
    }
}
