//! Deterministic random initialisers.
//!
//! All experiment code in `relcnn` derives randomness from seeded
//! `ChaCha8Rng` streams so that every table and figure regenerates
//! identically across runs and machines. Gaussian samples come from a
//! Box–Muller transform to avoid an extra distribution dependency.

use crate::{Shape, Tensor};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Weight-initialisation schemes used by the CNN substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Init {
    /// Uniform in `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f32,
        /// Upper bound (exclusive).
        hi: f32,
    },
    /// Gaussian with the given mean and standard deviation.
    Normal {
        /// Distribution mean.
        mean: f32,
        /// Distribution standard deviation.
        std_dev: f32,
    },
    /// He/Kaiming-style fan-in scaled Gaussian: `N(0, sqrt(2 / fan_in))`,
    /// the standard choice for ReLU CNNs such as AlexNet.
    HeNormal {
        /// Number of input connections per output unit.
        fan_in: usize,
    },
    /// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform {
        /// Number of input connections.
        fan_in: usize,
        /// Number of output connections.
        fan_out: usize,
    },
}

/// A deterministic random stream for initialisation and augmentation.
///
/// Thin wrapper around `ChaCha8Rng` that exposes exactly the sampling
/// operations `relcnn` needs; the stream is fully determined by the seed.
///
/// # Example
///
/// ```rust
/// use relcnn_tensor::init::Rand;
///
/// let mut a = Rand::seeded(42);
/// let mut b = Rand::seeded(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Rand {
    rng: ChaCha8Rng,
    /// Cached second Box–Muller sample.
    spare_gaussian: Option<f32>,
}

impl Rand {
    /// Creates a stream from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        Rand {
            rng: ChaCha8Rng::seed_from_u64(seed),
            spare_gaussian: None,
        }
    }

    /// Derives an independent child stream; used to give each experiment
    /// stage its own reproducible randomness.
    pub fn fork(&mut self, stream: u64) -> Rand {
        let seed = self.rng.random::<u64>() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rand::seeded(seed)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.rng.random::<f32>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.rng.random_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.rng.random::<f64>() < p
    }

    /// Standard-normal sample via Box–Muller.
    pub fn gaussian(&mut self) -> f32 {
        if let Some(z) = self.spare_gaussian.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent normals.
        let u1: f32 = self.rng.random::<f32>().max(f32::MIN_POSITIVE);
        let u2: f32 = self.rng.random::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_gaussian = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Gaussian sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.gaussian()
    }

    /// Raw 64-bit draw (for deriving sub-seeds).
    pub fn raw_u64(&mut self) -> u64 {
        self.rng.random()
    }

    /// Fills a fresh tensor according to `init`.
    pub fn tensor(&mut self, shape: Shape, init: Init) -> Tensor {
        let n = shape.volume();
        let mut data = Vec::with_capacity(n);
        match init {
            Init::Uniform { lo, hi } => {
                for _ in 0..n {
                    data.push(self.uniform(lo, hi));
                }
            }
            Init::Normal { mean, std_dev } => {
                for _ in 0..n {
                    data.push(self.normal(mean, std_dev));
                }
            }
            Init::HeNormal { fan_in } => {
                let std_dev = (2.0 / fan_in.max(1) as f32).sqrt();
                for _ in 0..n {
                    data.push(self.normal(0.0, std_dev));
                }
            }
            Init::XavierUniform { fan_in, fan_out } => {
                let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                for _ in 0..n {
                    data.push(self.uniform(-a, a));
                }
            }
        }
        Tensor::from_vec(shape, data).expect("generated buffer matches volume")
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.rng.random_range(0..=i);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = Rand::seeded(7);
        let mut b = Rand::seeded(7);
        for _ in 0..32 {
            assert_eq!(a.raw_u64(), b.raw_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rand::seeded(1);
        let mut b = Rand::seeded(2);
        let same = (0..16).filter(|_| a.raw_u64() == b.raw_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut p1 = Rand::seeded(9);
        let mut p2 = Rand::seeded(9);
        let mut c1 = p1.fork(0);
        let mut c2 = p2.fork(0);
        assert_eq!(c1.raw_u64(), c2.raw_u64());
        let mut c3 = p1.fork(1);
        assert_ne!(c1.raw_u64(), c3.raw_u64());
    }

    #[test]
    fn uniform_within_bounds() {
        let mut r = Rand::seeded(3);
        for _ in 0..1000 {
            let v = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn below_within_bounds() {
        let mut r = Rand::seeded(4);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rand::seeded(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rand::seeded(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn gaussian_moments_plausible() {
        let mut r = Rand::seeded(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| r.gaussian()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut r = Rand::seeded(13);
        let t = r.tensor(Shape::d1(10_000), Init::HeNormal { fan_in: 200 });
        let expected = (2.0f32 / 200.0).sqrt();
        assert!((t.std_dev() - expected).abs() < expected * 0.1);
    }

    #[test]
    fn xavier_uniform_within_bound() {
        let mut r = Rand::seeded(17);
        let a = (6.0f32 / 30.0).sqrt();
        let t = r.tensor(
            Shape::d1(1000),
            Init::XavierUniform {
                fan_in: 10,
                fan_out: 20,
            },
        );
        assert!(t.max() <= a && t.min() >= -a);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rand::seeded(19);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }
}
