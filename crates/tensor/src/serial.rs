//! Compact binary (de)serialisation of tensors.
//!
//! Format (little-endian):
//!
//! ```text
//! magic   u32   0x52_43_4E_54  ("RCNT")
//! version u16   1
//! rank    u16
//! dims    u64 * rank
//! data    f32 * volume
//! ```
//!
//! Used for model checkpoints so experiments (e.g. the Figure-4 filter
//! sweep) can reuse a trained network without retraining.

use crate::{Shape, Tensor, TensorError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u32 = 0x5243_4E54;
const VERSION: u16 = 1;

/// Serialises a tensor into the `RCNT` binary format.
pub fn to_bytes(tensor: &Tensor) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + tensor.shape().rank() * 8 + tensor.len() * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(tensor.shape().rank() as u16);
    for &d in tensor.shape().dims() {
        buf.put_u64_le(d as u64);
    }
    for &v in tensor.iter() {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Deserialises a tensor from the `RCNT` binary format, consuming exactly
/// one record from the front of `buf`.
///
/// # Errors
///
/// Returns [`TensorError::Corrupt`] for bad magic, unsupported version or a
/// truncated stream.
pub fn from_bytes(buf: &mut impl Buf) -> Result<Tensor, TensorError> {
    if buf.remaining() < 8 {
        return Err(TensorError::Corrupt {
            reason: "truncated header".into(),
        });
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(TensorError::Corrupt {
            reason: format!("bad magic 0x{magic:08x}"),
        });
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(TensorError::Corrupt {
            reason: format!("unsupported version {version}"),
        });
    }
    let rank = buf.get_u16_le() as usize;
    if buf.remaining() < rank * 8 {
        return Err(TensorError::Corrupt {
            reason: "truncated dimension list".into(),
        });
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        let d = buf.get_u64_le();
        if d > usize::MAX as u64 {
            return Err(TensorError::Corrupt {
                reason: format!("dimension {d} exceeds platform usize"),
            });
        }
        dims.push(d as usize);
    }
    let shape = Shape::new(dims);
    let volume = shape.volume();
    if buf.remaining() < volume * 4 {
        return Err(TensorError::Corrupt {
            reason: format!(
                "payload truncated: need {} bytes, have {}",
                volume * 4,
                buf.remaining()
            ),
        });
    }
    let mut data = Vec::with_capacity(volume);
    for _ in 0..volume {
        data.push(buf.get_f32_le());
    }
    Tensor::from_vec(shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_shapes() {
        for t in [
            Tensor::scalar(3.25),
            Tensor::from_fn(Shape::d1(7), |i| i[0] as f32 - 3.0),
            Tensor::from_fn(Shape::d3(2, 3, 4), |i| {
                (i[0] + 10 * i[1] + 100 * i[2]) as f32
            }),
            Tensor::zeros(Shape::new(vec![0])),
        ] {
            let bytes = to_bytes(&t);
            let mut cursor = bytes.clone();
            let back = from_bytes(&mut cursor).unwrap();
            assert_eq!(back, t);
            assert_eq!(cursor.remaining(), 0, "record fully consumed");
        }
    }

    #[test]
    fn roundtrip_preserves_special_values() {
        let t =
            Tensor::from_vec(Shape::d1(4), vec![f32::MAX, f32::MIN_POSITIVE, -0.0, 1e-38]).unwrap();
        let mut b = to_bytes(&t);
        let back = from_bytes(&mut b).unwrap();
        for (a, x) in t.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn multiple_records_in_one_stream() {
        let a = Tensor::ones(Shape::d2(2, 2));
        let b = Tensor::full(Shape::d1(3), 9.0);
        let mut stream = BytesMut::new();
        stream.extend_from_slice(&to_bytes(&a));
        stream.extend_from_slice(&to_bytes(&b));
        let mut buf = stream.freeze();
        assert_eq!(from_bytes(&mut buf).unwrap(), a);
        assert_eq!(from_bytes(&mut buf).unwrap(), b);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = BytesMut::from(&to_bytes(&Tensor::scalar(1.0))[..]);
        bytes[0] ^= 0xFF;
        let mut buf = bytes.freeze();
        assert!(matches!(
            from_bytes(&mut buf),
            Err(TensorError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let full = to_bytes(&Tensor::ones(Shape::d2(3, 3)));
        for cut in [0, 4, 7, 9, 20, full.len() - 1] {
            let mut buf = full.slice(0..cut);
            assert!(
                from_bytes(&mut buf).is_err(),
                "cut at {cut} should be detected"
            );
        }
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = BytesMut::from(&to_bytes(&Tensor::scalar(1.0))[..]);
        bytes[4] = 0xFF;
        let mut buf = bytes.freeze();
        assert!(matches!(
            from_bytes(&mut buf),
            Err(TensorError::Corrupt { .. })
        ));
    }
}
