use crate::TensorError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a [`Tensor`](crate::Tensor), in row-major order.
///
/// A `Shape` is an immutable list of dimension sizes. Rank-0 (scalar) shapes
/// are permitted and have volume 1.
///
/// # Example
///
/// ```rust
/// use relcnn_tensor::Shape;
///
/// let s = Shape::d3(2, 3, 4);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape { dims: dims.into() }
    }

    /// Creates a scalar (rank-0) shape with volume 1.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Creates a rank-1 shape.
    pub fn d1(n: usize) -> Self {
        Shape { dims: vec![n] }
    }

    /// Creates a rank-2 shape (rows, cols).
    pub fn d2(rows: usize, cols: usize) -> Self {
        Shape {
            dims: vec![rows, cols],
        }
    }

    /// Creates a rank-3 shape (channels, height, width).
    pub fn d3(c: usize, h: usize, w: usize) -> Self {
        Shape {
            dims: vec![c, h, w],
        }
    }

    /// Creates a rank-4 shape (count, channels, height, width).
    pub fn d4(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape {
            dims: vec![n, c, h, w],
        }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The total number of elements (product of dimensions; 1 for scalars).
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// The size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides for this shape.
    ///
    /// The last axis has stride 1; each preceding axis has the stride of the
    /// following axis multiplied by that axis' size.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank does not
    /// match or any coordinate exceeds its dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                dims: self.dims.clone(),
            });
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for axis in (0..self.dims.len()).rev() {
            if index[axis] >= self.dims[axis] {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    dims: self.dims.clone(),
                });
            }
            off += index[axis] * stride;
            stride *= self.dims[axis];
        }
        Ok(off)
    }

    /// Converts a flat row-major offset back into a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `offset >= volume()`.
    pub fn unravel(&self, offset: usize) -> Result<Vec<usize>, TensorError> {
        if offset >= self.volume() {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![offset],
                dims: self.dims.clone(),
            });
        }
        let mut rem = offset;
        let mut index = vec![0usize; self.dims.len()];
        for (axis, stride) in self.strides().iter().enumerate() {
            index[axis] = rem / stride;
            rem %= stride;
        }
        Ok(index)
    }

    /// Returns a new shape with the same volume, reinterpreted with the
    /// given dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if volumes differ.
    pub fn reshaped(&self, dims: impl Into<Vec<usize>>) -> Result<Shape, TensorError> {
        let new = Shape::new(dims);
        if new.volume() != self.volume() {
            return Err(TensorError::LengthMismatch {
                expected: self.volume(),
                actual: new.volume(),
            });
        }
        Ok(new)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_volume_one() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.volume(), 1);
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::d4(2, 3, 4, 5).strides(), vec![60, 20, 5, 1]);
        assert_eq!(Shape::d1(7).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_and_unravel_roundtrip() {
        let s = Shape::d3(3, 4, 5);
        for flat in 0..s.volume() {
            let idx = s.unravel(flat).unwrap();
            assert_eq!(s.offset(&idx).unwrap(), flat);
        }
    }

    #[test]
    fn offset_rejects_bad_rank_and_bounds() {
        let s = Shape::d2(2, 2);
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0, 2]).is_err());
        assert!(s.unravel(4).is_err());
    }

    #[test]
    fn reshape_preserves_volume() {
        let s = Shape::d2(6, 4);
        let r = s.reshaped(vec![2, 3, 4]).unwrap();
        assert_eq!(r.volume(), 24);
        assert!(s.reshaped(vec![5, 5]).is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::d3(1, 2, 3).to_string(), "[1x2x3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn zero_dim_volume_is_zero() {
        let s = Shape::new(vec![0, 5]);
        assert_eq!(s.volume(), 0);
    }

    #[test]
    fn from_conversions() {
        let a: Shape = vec![1, 2].into();
        let b: Shape = (&[1usize, 2][..]).into();
        assert_eq!(a, b);
    }
}
