use std::fmt;

/// Error type for tensor construction and kernel operations.
///
/// Every fallible public function in this crate returns
/// [`TensorError`](crate::TensorError); the variants carry enough context to
/// diagnose shape mismatches without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Shape that was expected by the operation.
        expected: Vec<usize>,
        /// Shape that was actually supplied.
        actual: Vec<usize>,
        /// The operation that rejected the shapes.
        op: &'static str,
    },
    /// The element count of a buffer did not match the product of the
    /// requested dimensions.
    LengthMismatch {
        /// Element count implied by the shape.
        expected: usize,
        /// Element count of the supplied buffer.
        actual: usize,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor's dimensions.
        dims: Vec<usize>,
    },
    /// An operation required a tensor of a specific rank.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the supplied tensor.
        actual: usize,
        /// The operation that rejected the rank.
        op: &'static str,
    },
    /// Convolution/pooling geometry is impossible (e.g. kernel larger than
    /// padded input, or zero stride).
    InvalidGeometry {
        /// Human-readable description of the geometry violation.
        reason: String,
    },
    /// Deserialisation found a malformed or truncated byte stream.
    Corrupt {
        /// Human-readable description of the corruption.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch {
                expected,
                actual,
                op,
            } => write!(
                f,
                "shape mismatch in `{op}`: expected {expected:?}, got {actual:?}"
            ),
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape volume {expected}"
            ),
            TensorError::IndexOutOfBounds { index, dims } => {
                write!(f, "index {index:?} out of bounds for dims {dims:?}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(
                f,
                "rank mismatch in `{op}`: expected rank {expected}, got rank {actual}"
            ),
            TensorError::InvalidGeometry { reason } => {
                write!(f, "invalid geometry: {reason}")
            }
            TensorError::Corrupt { reason } => {
                write!(f, "corrupt tensor byte stream: {reason}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs: Vec<TensorError> = vec![
            TensorError::ShapeMismatch {
                expected: vec![2, 2],
                actual: vec![3],
                op: "add",
            },
            TensorError::LengthMismatch {
                expected: 4,
                actual: 5,
            },
            TensorError::IndexOutOfBounds {
                index: vec![9],
                dims: vec![2],
            },
            TensorError::RankMismatch {
                expected: 2,
                actual: 1,
                op: "matmul",
            },
            TensorError::InvalidGeometry {
                reason: "kernel 5 larger than input 3".into(),
            },
            TensorError::Corrupt {
                reason: "truncated header".into(),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with('b'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
