//! Unprotected 2-D convolution and pooling kernels.
//!
//! Two implementations are provided:
//!
//! * [`conv2d`] — direct nested-loop convolution, the reference semantics;
//! * [`conv2d_im2col`] — `im2col` + matmul, the fast "native execution"
//!   baseline corresponding to the paper's TensorFlow reference time.
//!
//! Both operate on CHW tensors (channels, height, width) with OIHW filter
//! banks (out-channels, in-channels, kernel-h, kernel-w), the layout AlexNet
//! uses. The reliable convolution of Algorithm 3 (crate `relcnn-relexec`)
//! reuses [`ConvGeometry`] so that geometry handling is shared and the
//! comparison is apples-to-apples.

use crate::{Shape, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// The spatial geometry of a 2-D convolution or pooling window.
///
/// # Example
///
/// ```rust
/// use relcnn_tensor::conv::ConvGeometry;
///
/// // AlexNet conv-1: 227x227 input, 11x11 kernel, stride 4, no padding.
/// let g = ConvGeometry::new(227, 227, 11, 11, 4, 0).unwrap();
/// assert_eq!((g.out_h(), g.out_w()), (55, 55));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvGeometry {
    in_h: usize,
    in_w: usize,
    k_h: usize,
    k_w: usize,
    stride: usize,
    padding: usize,
}

impl ConvGeometry {
    /// Creates a convolution geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the stride is zero, a
    /// kernel dimension is zero, or the (padded) input is smaller than the
    /// kernel.
    pub fn new(
        in_h: usize,
        in_w: usize,
        k_h: usize,
        k_w: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, TensorError> {
        if stride == 0 {
            return Err(TensorError::InvalidGeometry {
                reason: "stride must be non-zero".into(),
            });
        }
        if k_h == 0 || k_w == 0 {
            return Err(TensorError::InvalidGeometry {
                reason: "kernel dimensions must be non-zero".into(),
            });
        }
        if in_h + 2 * padding < k_h || in_w + 2 * padding < k_w {
            return Err(TensorError::InvalidGeometry {
                reason: format!(
                    "kernel {k_h}x{k_w} larger than padded input {}x{}",
                    in_h + 2 * padding,
                    in_w + 2 * padding
                ),
            });
        }
        Ok(ConvGeometry {
            in_h,
            in_w,
            k_h,
            k_w,
            stride,
            padding,
        })
    }

    /// Input height.
    pub fn in_h(&self) -> usize {
        self.in_h
    }
    /// Input width.
    pub fn in_w(&self) -> usize {
        self.in_w
    }
    /// Kernel height.
    pub fn k_h(&self) -> usize {
        self.k_h
    }
    /// Kernel width.
    pub fn k_w(&self) -> usize {
        self.k_w
    }
    /// Stride (identical in both axes).
    pub fn stride(&self) -> usize {
        self.stride
    }
    /// Zero padding (identical on all four edges).
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.k_h) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.k_w) / self.stride + 1
    }

    /// Number of sliding-window positions.
    pub fn positions(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Number of multiply-accumulate operations for a full convolution with
    /// `in_c` input channels and `out_c` filters — the quantity the paper's
    /// cost model (Table 1) scales with.
    pub fn mac_count(&self, in_c: usize, out_c: usize) -> u64 {
        self.positions() as u64 * (self.k_h * self.k_w * in_c) as u64 * out_c as u64
    }
}

/// Validates that `input` is CHW and `filters` OIHW with matching channels.
fn validate_conv_shapes(
    input: &Tensor,
    filters: &Tensor,
    geom: &ConvGeometry,
) -> Result<(usize, usize), TensorError> {
    if input.shape().rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.shape().rank(),
            op: "conv2d(input)",
        });
    }
    if filters.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: filters.shape().rank(),
            op: "conv2d(filters)",
        });
    }
    let (in_c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
    );
    if h != geom.in_h() || w != geom.in_w() {
        return Err(TensorError::ShapeMismatch {
            expected: vec![in_c, geom.in_h(), geom.in_w()],
            actual: input.shape().dims().to_vec(),
            op: "conv2d(geometry)",
        });
    }
    let (out_c, f_c, f_h, f_w) = (
        filters.shape().dim(0),
        filters.shape().dim(1),
        filters.shape().dim(2),
        filters.shape().dim(3),
    );
    if f_c != in_c || f_h != geom.k_h() || f_w != geom.k_w() {
        return Err(TensorError::ShapeMismatch {
            expected: vec![out_c, in_c, geom.k_h(), geom.k_w()],
            actual: filters.shape().dims().to_vec(),
            op: "conv2d(filters)",
        });
    }
    Ok((in_c, out_c))
}

/// Direct (nested-loop) 2-D convolution. CHW input, OIHW filters, optional
/// per-filter bias, producing a CHW output of shape
/// `[out_c, geom.out_h(), geom.out_w()]`.
///
/// This is the semantic reference: `conv2d_im2col` and the reliable
/// convolution in `relcnn-relexec` are both tested against it.
///
/// # Errors
///
/// Returns a shape/rank error if the operands disagree with `geom`, or if
/// `bias` is given and its length is not `out_c`.
pub fn conv2d(
    input: &Tensor,
    filters: &Tensor,
    bias: Option<&Tensor>,
    geom: &ConvGeometry,
) -> Result<Tensor, TensorError> {
    let (in_c, out_c) = validate_conv_shapes(input, filters, geom)?;
    if let Some(b) = bias {
        if b.len() != out_c {
            return Err(TensorError::LengthMismatch {
                expected: out_c,
                actual: b.len(),
            });
        }
    }
    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let (k_h, k_w) = (geom.k_h(), geom.k_w());
    let (in_h, in_w) = (geom.in_h(), geom.in_w());
    let stride = geom.stride();
    let pad = geom.padding() as isize;

    let x = input.as_slice();
    let f = filters.as_slice();
    let mut out = vec![0.0f32; out_c * out_h * out_w];

    for oc in 0..out_c {
        let f_base = oc * in_c * k_h * k_w;
        let b = bias.map(|b| b.as_slice()[oc]).unwrap_or(0.0);
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = b;
                let iy0 = (oy * stride) as isize - pad;
                let ix0 = (ox * stride) as isize - pad;
                for ic in 0..in_c {
                    let x_base = ic * in_h * in_w;
                    let f_chan = f_base + ic * k_h * k_w;
                    for ky in 0..k_h {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= in_h as isize {
                            continue;
                        }
                        let x_row = x_base + iy as usize * in_w;
                        let f_row = f_chan + ky * k_w;
                        for kx in 0..k_w {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= in_w as isize {
                                continue;
                            }
                            acc += x[x_row + ix as usize] * f[f_row + kx];
                        }
                    }
                }
                out[oc * out_h * out_w + oy * out_w + ox] = acc;
            }
        }
    }
    Tensor::from_vec(Shape::d3(out_c, out_h, out_w), out)
}

/// Lowers a CHW input into the `im2col` patch matrix of shape
/// `[in_c * k_h * k_w, out_h * out_w]`.
///
/// Column `p` holds the receptive field of sliding-window position `p`
/// (row-major over output positions); padding contributes zeros.
///
/// # Errors
///
/// Returns a rank/shape error if `input` is not CHW matching `geom`.
pub fn im2col(input: &Tensor, geom: &ConvGeometry) -> Result<Tensor, TensorError> {
    if input.shape().rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.shape().rank(),
            op: "im2col",
        });
    }
    let in_c = input.shape().dim(0);
    if input.shape().dim(1) != geom.in_h() || input.shape().dim(2) != geom.in_w() {
        return Err(TensorError::ShapeMismatch {
            expected: vec![in_c, geom.in_h(), geom.in_w()],
            actual: input.shape().dims().to_vec(),
            op: "im2col",
        });
    }
    let (k_h, k_w) = (geom.k_h(), geom.k_w());
    let (in_h, in_w) = (geom.in_h(), geom.in_w());
    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let positions = out_h * out_w;
    let rows = in_c * k_h * k_w;
    let stride = geom.stride();
    let pad = geom.padding() as isize;

    let x = input.as_slice();
    let mut out = vec![0.0f32; rows * positions];
    for ic in 0..in_c {
        for ky in 0..k_h {
            for kx in 0..k_w {
                let row = (ic * k_h + ky) * k_w + kx;
                let row_base = row * positions;
                for oy in 0..out_h {
                    let iy = (oy * stride) as isize + ky as isize - pad;
                    if iy < 0 || iy >= in_h as isize {
                        continue;
                    }
                    let x_row = ic * in_h * in_w + iy as usize * in_w;
                    let o_row = row_base + oy * out_w;
                    for ox in 0..out_w {
                        let ix = (ox * stride) as isize + kx as isize - pad;
                        if ix < 0 || ix >= in_w as isize {
                            continue;
                        }
                        out[o_row + ox] = x[x_row + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(Shape::d2(rows, positions), out)
}

/// Allocation-free [`im2col`]: lowers a CHW input slice into a caller-owned
/// patch buffer of length `in_c * k_h * k_w * positions` — byte-for-byte
/// identical to the tensor returned by [`im2col`], which stays the oracle.
///
/// When the geometry has no padding every cell of `out` is written, so the
/// (possibly stale) scratch contents are never zero-filled — the pass the
/// allocating kernel pays via `vec![0.0; …]` simply disappears. Padded
/// geometries zero the buffer first because padding cells are never
/// visited by the gather loop.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when `x` or `out` disagrees
/// with the geometry for `in_c` channels.
pub fn im2col_into(
    x: &[f32],
    in_c: usize,
    geom: &ConvGeometry,
    out: &mut [f32],
) -> Result<(), TensorError> {
    let (k_h, k_w) = (geom.k_h(), geom.k_w());
    let (in_h, in_w) = (geom.in_h(), geom.in_w());
    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let positions = out_h * out_w;
    let rows = in_c * k_h * k_w;
    if x.len() != in_c * in_h * in_w {
        return Err(TensorError::LengthMismatch {
            expected: in_c * in_h * in_w,
            actual: x.len(),
        });
    }
    if out.len() != rows * positions {
        return Err(TensorError::LengthMismatch {
            expected: rows * positions,
            actual: out.len(),
        });
    }
    let stride = geom.stride();
    let pad = geom.padding() as isize;
    if geom.padding() > 0 {
        out.fill(0.0);
    }
    for ic in 0..in_c {
        for ky in 0..k_h {
            for kx in 0..k_w {
                let row = (ic * k_h + ky) * k_w + kx;
                let row_base = row * positions;
                // Hoist the valid-ox window out of the copy loop: ox is
                // in bounds iff `0 <= ox*stride + kx - pad < in_w`, so the
                // interior is a branch-free strided gather (a straight
                // memcpy when stride == 1) instead of a per-element
                // bounds-and-padding check. Same elements land in the
                // same slots as the allocating `im2col` — this is pure
                // data movement, pinned byte-for-byte by proptests.
                let lo = if kx as isize >= pad {
                    0
                } else {
                    ((pad - kx as isize) as usize).div_ceil(stride)
                };
                let hi_num = in_w as isize - 1 - kx as isize + pad;
                if hi_num < 0 {
                    continue;
                }
                let hi = (hi_num as usize / stride + 1).min(out_w);
                if lo >= hi {
                    continue;
                }
                for oy in 0..out_h {
                    let iy = (oy * stride) as isize + ky as isize - pad;
                    if iy < 0 || iy >= in_h as isize {
                        continue;
                    }
                    let x_row = ic * in_h * in_w + iy as usize * in_w;
                    let o_row = row_base + oy * out_w;
                    let x_start = x_row + (lo * stride + kx) - pad as usize;
                    let width = hi - lo;
                    if stride == 1 {
                        out[o_row + lo..o_row + hi].copy_from_slice(&x[x_start..x_start + width]);
                    } else {
                        let src = x[x_start..].iter().step_by(stride);
                        for (o, &v) in out[o_row + lo..o_row + hi].iter_mut().zip(src) {
                            *o = v;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Inverse of [`im2col`]: scatter-adds a patch matrix of shape
/// `[in_c * k_h * k_w, out_h * out_w]` back into a CHW tensor of shape
/// `[in_c, in_h, in_w]`. Overlapping window positions accumulate — exactly
/// the adjoint of the `im2col` gather, which is what convolution
/// backpropagation requires.
///
/// # Errors
///
/// Returns a rank/shape error if `cols` does not match `geom` for the
/// given channel count.
pub fn col2im(cols: &Tensor, in_c: usize, geom: &ConvGeometry) -> Result<Tensor, TensorError> {
    let (k_h, k_w) = (geom.k_h(), geom.k_w());
    let (in_h, in_w) = (geom.in_h(), geom.in_w());
    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let positions = out_h * out_w;
    let rows = in_c * k_h * k_w;
    if cols.shape().rank() != 2 || cols.shape().dim(0) != rows || cols.shape().dim(1) != positions {
        return Err(TensorError::ShapeMismatch {
            expected: vec![rows, positions],
            actual: cols.shape().dims().to_vec(),
            op: "col2im",
        });
    }
    let stride = geom.stride();
    let pad = geom.padding() as isize;
    let c = cols.as_slice();
    let mut out = vec![0.0f32; in_c * in_h * in_w];
    for ic in 0..in_c {
        for ky in 0..k_h {
            for kx in 0..k_w {
                let row = (ic * k_h + ky) * k_w + kx;
                let row_base = row * positions;
                for oy in 0..out_h {
                    let iy = (oy * stride) as isize + ky as isize - pad;
                    if iy < 0 || iy >= in_h as isize {
                        continue;
                    }
                    let x_row = ic * in_h * in_w + iy as usize * in_w;
                    let c_row = row_base + oy * out_w;
                    for ox in 0..out_w {
                        let ix = (ox * stride) as isize + kx as isize - pad;
                        if ix < 0 || ix >= in_w as isize {
                            continue;
                        }
                        out[x_row + ix as usize] += c[c_row + ox];
                    }
                }
            }
        }
    }
    Tensor::from_vec(Shape::d3(in_c, in_h, in_w), out)
}

/// Fast convolution via `im2col` + matmul; numerically identical (up to
/// floating-point association) to [`conv2d`].
///
/// # Errors
///
/// Same error conditions as [`conv2d`].
pub fn conv2d_im2col(
    input: &Tensor,
    filters: &Tensor,
    bias: Option<&Tensor>,
    geom: &ConvGeometry,
) -> Result<Tensor, TensorError> {
    let (in_c, out_c) = validate_conv_shapes(input, filters, geom)?;
    if let Some(b) = bias {
        if b.len() != out_c {
            return Err(TensorError::LengthMismatch {
                expected: out_c,
                actual: b.len(),
            });
        }
    }
    let cols = im2col(input, geom)?;
    let w = filters
        .reshape(vec![out_c, in_c * geom.k_h() * geom.k_w()])
        .expect("filter volume unchanged");
    let mut out = w.matmul(&cols)?;
    if let Some(b) = bias {
        let positions = geom.positions();
        let slice = out.as_mut_slice();
        for oc in 0..out_c {
            let bv = b.as_slice()[oc];
            for v in &mut slice[oc * positions..(oc + 1) * positions] {
                *v += bv;
            }
        }
    }
    out.into_reshaped(vec![out_c, geom.out_h(), geom.out_w()])
}

/// 2-D max pooling over a CHW tensor. Returns the pooled tensor and the flat
/// argmax offsets (into the input) used by backpropagation.
///
/// # Errors
///
/// Returns a rank/shape error if `input` is not CHW matching `geom`, or an
/// [`TensorError::InvalidGeometry`] if `geom` has padding (pooling here is
/// padding-free, as in AlexNet).
pub fn max_pool2d(
    input: &Tensor,
    geom: &ConvGeometry,
) -> Result<(Tensor, Vec<usize>), TensorError> {
    if geom.padding() != 0 {
        return Err(TensorError::InvalidGeometry {
            reason: "max_pool2d does not support padding".into(),
        });
    }
    if input.shape().rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.shape().rank(),
            op: "max_pool2d",
        });
    }
    let in_c = input.shape().dim(0);
    if input.shape().dim(1) != geom.in_h() || input.shape().dim(2) != geom.in_w() {
        return Err(TensorError::ShapeMismatch {
            expected: vec![in_c, geom.in_h(), geom.in_w()],
            actual: input.shape().dims().to_vec(),
            op: "max_pool2d",
        });
    }
    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let (k_h, k_w) = (geom.k_h(), geom.k_w());
    let (in_h, in_w) = (geom.in_h(), geom.in_w());
    let stride = geom.stride();
    let x = input.as_slice();
    let mut out = vec![f32::NEG_INFINITY; in_c * out_h * out_w];
    let mut arg = vec![0usize; in_c * out_h * out_w];
    for c in 0..in_c {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut best = f32::NEG_INFINITY;
                let mut best_off = 0usize;
                for ky in 0..k_h {
                    let iy = oy * stride + ky;
                    if iy >= in_h {
                        continue;
                    }
                    for kx in 0..k_w {
                        let ix = ox * stride + kx;
                        if ix >= in_w {
                            continue;
                        }
                        let off = c * in_h * in_w + iy * in_w + ix;
                        if x[off] > best {
                            best = x[off];
                            best_off = off;
                        }
                    }
                }
                let o = c * out_h * out_w + oy * out_w + ox;
                out[o] = best;
                arg[o] = best_off;
            }
        }
    }
    Ok((Tensor::from_vec(Shape::d3(in_c, out_h, out_w), out)?, arg))
}

/// Allocation-free forward-only max pooling: writes the pooled CHW slab
/// into a caller-owned buffer of length `in_c * out_h * out_w`, skipping
/// the argmax bookkeeping (inference needs no backward routing). The
/// pooled values are bit-identical to [`max_pool2d`]'s first component.
///
/// # Errors
///
/// Returns [`TensorError::InvalidGeometry`] for padded geometries and
/// [`TensorError::LengthMismatch`] when a slice length disagrees with the
/// geometry for `in_c` channels.
pub fn max_pool2d_into(
    x: &[f32],
    in_c: usize,
    geom: &ConvGeometry,
    out: &mut [f32],
) -> Result<(), TensorError> {
    if geom.padding() != 0 {
        return Err(TensorError::InvalidGeometry {
            reason: "max_pool2d does not support padding".into(),
        });
    }
    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let (k_h, k_w) = (geom.k_h(), geom.k_w());
    let (in_h, in_w) = (geom.in_h(), geom.in_w());
    if x.len() != in_c * in_h * in_w {
        return Err(TensorError::LengthMismatch {
            expected: in_c * in_h * in_w,
            actual: x.len(),
        });
    }
    if out.len() != in_c * out_h * out_w {
        return Err(TensorError::LengthMismatch {
            expected: in_c * out_h * out_w,
            actual: out.len(),
        });
    }
    let stride = geom.stride();
    // Every AlexNet pooling geometry has fully interior windows (the
    // floor-mode output size never lets a window overhang), so the hot
    // path scans each window through row slices with the clip checks
    // and per-element index arithmetic hoisted out. The window scan
    // order (ky then kx, ascending) is the same as the general loop —
    // it determines which signed zero survives a `v > best` tie, so it
    // is part of the bit-exactness contract.
    let interior = out_h > 0
        && out_w > 0
        && (out_h - 1) * stride + k_h <= in_h
        && (out_w - 1) * stride + k_w <= in_w;
    if interior {
        for c in 0..in_c {
            let plane = &x[c * in_h * in_w..(c + 1) * in_h * in_w];
            let o_plane = &mut out[c * out_h * out_w..(c + 1) * out_h * out_w];
            for oy in 0..out_h {
                let o_row = &mut o_plane[oy * out_w..(oy + 1) * out_w];
                for (ox, o) in o_row.iter_mut().enumerate() {
                    let x0 = ox * stride;
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..k_h {
                        let row = (oy * stride + ky) * in_w;
                        for &v in &plane[row + x0..row + x0 + k_w] {
                            if v > best {
                                best = v;
                            }
                        }
                    }
                    *o = best;
                }
            }
        }
        return Ok(());
    }
    for c in 0..in_c {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut best = f32::NEG_INFINITY;
                for ky in 0..k_h {
                    let iy = oy * stride + ky;
                    if iy >= in_h {
                        continue;
                    }
                    for kx in 0..k_w {
                        let ix = ox * stride + kx;
                        if ix >= in_w {
                            continue;
                        }
                        let v = x[c * in_h * in_w + iy * in_w + ix];
                        if v > best {
                            best = v;
                        }
                    }
                }
                out[c * out_h * out_w + oy * out_w + ox] = best;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chw(c: usize, h: usize, w: usize, f: impl FnMut(&[usize]) -> f32) -> Tensor {
        Tensor::from_fn(Shape::d3(c, h, w), f)
    }

    #[test]
    fn geometry_alexnet_conv1() {
        let g = ConvGeometry::new(227, 227, 11, 11, 4, 0).unwrap();
        assert_eq!(g.out_h(), 55);
        assert_eq!(g.out_w(), 55);
        assert_eq!(g.positions(), 3025);
        assert_eq!(g.mac_count(3, 96), 3025 * 363 * 96);
    }

    #[test]
    fn geometry_rejects_invalid() {
        assert!(ConvGeometry::new(5, 5, 3, 3, 0, 0).is_err());
        assert!(ConvGeometry::new(2, 2, 3, 3, 1, 0).is_err());
        assert!(ConvGeometry::new(5, 5, 0, 3, 1, 0).is_err());
        // Padding can rescue a small input.
        assert!(ConvGeometry::new(2, 2, 3, 3, 1, 1).is_ok());
    }

    #[test]
    fn conv2d_identity_kernel() {
        let input = chw(1, 4, 4, |i| (i[1] * 4 + i[2]) as f32);
        // 1x1 kernel of value 1 reproduces the input.
        let filt = Tensor::ones(Shape::d4(1, 1, 1, 1));
        let g = ConvGeometry::new(4, 4, 1, 1, 1, 0).unwrap();
        let out = conv2d(&input, &filt, None, &g).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn conv2d_known_sum_kernel() {
        // 2x2 all-ones kernel sums each window.
        let input = chw(1, 3, 3, |i| (i[1] * 3 + i[2]) as f32);
        let filt = Tensor::ones(Shape::d4(1, 1, 2, 2));
        let g = ConvGeometry::new(3, 3, 2, 2, 1, 0).unwrap();
        let out = conv2d(&input, &filt, None, &g).unwrap();
        // windows: (0+1+3+4)=8, (1+2+4+5)=12, (3+4+6+7)=20, (4+5+7+8)=24
        assert_eq!(out.as_slice(), &[8., 12., 20., 24.]);
    }

    #[test]
    fn conv2d_bias_and_multichannel() {
        let input = chw(2, 2, 2, |_| 1.0);
        let filt = Tensor::ones(Shape::d4(3, 2, 2, 2));
        let bias = Tensor::from_vec(Shape::d1(3), vec![0.0, 1.0, -1.0]).unwrap();
        let g = ConvGeometry::new(2, 2, 2, 2, 1, 0).unwrap();
        let out = conv2d(&input, &filt, Some(&bias), &g).unwrap();
        assert_eq!(out.as_slice(), &[8.0, 9.0, 7.0]);
        let bad_bias = Tensor::zeros(Shape::d1(2));
        assert!(conv2d(&input, &filt, Some(&bad_bias), &g).is_err());
    }

    #[test]
    fn conv2d_padding_matches_manual() {
        let input = chw(1, 2, 2, |i| (i[1] * 2 + i[2]) as f32 + 1.0); // 1 2 / 3 4
        let filt = Tensor::ones(Shape::d4(1, 1, 3, 3));
        let g = ConvGeometry::new(2, 2, 3, 3, 1, 1).unwrap();
        let out = conv2d(&input, &filt, None, &g).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2]);
        // Each output = sum of in-bounds neighbours = total sum = 10 at every
        // position because the 3x3 window centred at each pixel covers all 4.
        assert_eq!(out.as_slice(), &[10., 10., 10., 10.]);
    }

    #[test]
    fn im2col_matches_direct_conv() {
        let input = chw(3, 9, 9, |i| {
            ((i[0] * 37 + i[1] * 11 + i[2] * 5) % 17) as f32 - 8.0
        });
        let filt = Tensor::from_fn(Shape::d4(4, 3, 3, 3), |i| {
            ((i[0] * 7 + i[1] * 13 + i[2] * 3 + i[3]) % 9) as f32 - 4.0
        });
        for (stride, pad) in [(1usize, 0usize), (2, 0), (1, 1), (3, 2)] {
            let g = ConvGeometry::new(9, 9, 3, 3, stride, pad).unwrap();
            let direct = conv2d(&input, &filt, None, &g).unwrap();
            let fast = conv2d_im2col(&input, &filt, None, &g).unwrap();
            assert_eq!(direct.shape(), fast.shape());
            for (a, b) in direct.iter().zip(fast.iter()) {
                assert!(
                    (a - b).abs() < 1e-3,
                    "stride={stride} pad={pad}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn im2col_bias_matches_direct() {
        let input = chw(2, 5, 5, |i| (i[0] + i[1] + i[2]) as f32);
        let filt = Tensor::ones(Shape::d4(2, 2, 2, 2));
        let bias = Tensor::from_vec(Shape::d1(2), vec![0.5, -0.5]).unwrap();
        let g = ConvGeometry::new(5, 5, 2, 2, 1, 0).unwrap();
        let a = conv2d(&input, &filt, Some(&bias), &g).unwrap();
        let b = conv2d_im2col(&input, &filt, Some(&bias), &g).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn conv_rejects_mismatched_shapes() {
        let g = ConvGeometry::new(4, 4, 2, 2, 1, 0).unwrap();
        let input = chw(1, 4, 4, |_| 0.0);
        let wrong_chan = Tensor::zeros(Shape::d4(1, 2, 2, 2));
        assert!(conv2d(&input, &wrong_chan, None, &g).is_err());
        let wrong_rank = Tensor::zeros(Shape::d3(1, 2, 2));
        assert!(conv2d(&input, &wrong_rank, None, &g).is_err());
        let wrong_input = chw(1, 5, 5, |_| 0.0);
        let filt = Tensor::zeros(Shape::d4(1, 1, 2, 2));
        assert!(conv2d(&wrong_input, &filt, None, &g).is_err());
        assert!(im2col(&wrong_input, &g).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for arbitrary x, y — the
        // defining property of the adjoint, which is exactly what makes
        // conv backward correct.
        let g = ConvGeometry::new(6, 6, 3, 3, 2, 1).unwrap();
        let x = chw(2, 6, 6, |i| {
            ((i[0] * 13 + i[1] * 5 + i[2]) % 7) as f32 - 3.0
        });
        let cols_shape = Shape::d2(2 * 9, g.positions());
        let y = Tensor::from_fn(cols_shape, |i| ((i[0] * 3 + i[1] * 11) % 5) as f32 - 2.0);
        let ax = im2col(&x, &g).unwrap();
        let aty = col2im(&y, 2, &g).unwrap();
        let lhs = ax.dot(&y).unwrap();
        let rhs = x.dot(&aty).unwrap();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn col2im_rejects_bad_shapes() {
        let g = ConvGeometry::new(4, 4, 2, 2, 1, 0).unwrap();
        let bad = Tensor::zeros(Shape::d2(3, 9));
        assert!(col2im(&bad, 1, &g).is_err());
        let bad_rank = Tensor::zeros(Shape::d1(4));
        assert!(col2im(&bad_rank, 1, &g).is_err());
    }

    #[test]
    fn max_pool_basic() {
        let input = chw(1, 4, 4, |i| (i[1] * 4 + i[2]) as f32);
        let g = ConvGeometry::new(4, 4, 2, 2, 2, 0).unwrap();
        let (out, arg) = max_pool2d(&input, &g).unwrap();
        assert_eq!(out.as_slice(), &[5., 7., 13., 15.]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_overlapping_alexnet_style() {
        // AlexNet uses 3x3 windows with stride 2 (overlapping pooling).
        let input = chw(1, 5, 5, |i| (i[1] * 5 + i[2]) as f32);
        let g = ConvGeometry::new(5, 5, 3, 3, 2, 0).unwrap();
        let (out, _) = max_pool2d(&input, &g).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2]);
        assert_eq!(out.as_slice(), &[12., 14., 22., 24.]);
    }

    #[test]
    fn max_pool_rejects_padding() {
        let input = chw(1, 4, 4, |_| 0.0);
        let g = ConvGeometry::new(4, 4, 2, 2, 2, 1).unwrap();
        assert!(max_pool2d(&input, &g).is_err());
    }

    #[test]
    fn im2col_into_matches_im2col_byte_for_byte() {
        let input = chw(2, 7, 7, |i| {
            ((i[0] * 37 + i[1] * 11 + i[2] * 5) % 17) as f32 / 3.0 - 2.5
        });
        for (stride, pad) in [(1usize, 0usize), (2, 0), (1, 1), (3, 2)] {
            let g = ConvGeometry::new(7, 7, 3, 3, stride, pad).unwrap();
            let oracle = im2col(&input, &g).unwrap();
            // Garbage-prefill: pad==0 geometries must still overwrite every
            // cell; padded ones must zero the stale contents.
            let mut out = vec![f32::NAN; oracle.len()];
            im2col_into(input.as_slice(), 2, &g, &mut out).unwrap();
            for (a, b) in out.iter().zip(oracle.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "stride={stride} pad={pad}");
            }
        }
    }

    #[test]
    fn im2col_into_validates_lengths() {
        let g = ConvGeometry::new(4, 4, 2, 2, 1, 0).unwrap();
        let x = vec![0.0f32; 16];
        let mut out = vec![0.0f32; 4 * 9];
        assert!(im2col_into(&x, 1, &g, &mut out).is_ok());
        assert!(im2col_into(&x[..15], 1, &g, &mut out).is_err());
        assert!(im2col_into(&x, 1, &g, &mut out[..35]).is_err());
    }

    #[test]
    fn max_pool2d_into_matches_max_pool2d() {
        let input = chw(2, 5, 5, |i| {
            ((i[0] * 13 + i[1] * 7 + i[2] * 3) % 11) as f32 - 5.0
        });
        for (k, stride) in [(2usize, 2usize), (3, 2), (3, 1)] {
            let g = ConvGeometry::new(5, 5, k, k, stride, 0).unwrap();
            let (oracle, _) = max_pool2d(&input, &g).unwrap();
            let mut out = vec![f32::NAN; oracle.len()];
            max_pool2d_into(input.as_slice(), 2, &g, &mut out).unwrap();
            for (a, b) in out.iter().zip(oracle.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "k={k} stride={stride}");
            }
        }
    }

    #[test]
    fn max_pool2d_into_validates() {
        let g = ConvGeometry::new(4, 4, 2, 2, 2, 0).unwrap();
        let x = vec![0.0f32; 16];
        let mut out = vec![0.0f32; 4];
        assert!(max_pool2d_into(&x, 1, &g, &mut out).is_ok());
        assert!(max_pool2d_into(&x[..15], 1, &g, &mut out).is_err());
        assert!(max_pool2d_into(&x, 1, &g, &mut out[..3]).is_err());
        let padded = ConvGeometry::new(4, 4, 2, 2, 2, 1).unwrap();
        assert!(max_pool2d_into(&x, 1, &padded, &mut out).is_err());
    }
}
