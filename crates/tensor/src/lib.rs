//! Dense `f32` tensor substrate for the `relcnn` hybrid-CNN reproduction.
//!
//! This crate provides the numeric foundation every other `relcnn` crate
//! builds on: an owned, contiguous, row-major [`Tensor`] with shape/stride
//! algebra, elementwise and reduction kernels, matrix multiplication,
//! `im2col`-based and direct convolution, deterministic random
//! initialisation, and a compact binary serialisation format.
//!
//! The paper's evaluation ("native TensorFlow execution achieves this in
//! 0.05 s") needs an *unprotected, fast* convolution baseline; that baseline
//! is [`conv::conv2d`] here. The reliable, qualified convolution of
//! Algorithm 3 lives in the `relcnn-relexec` crate and is measured against
//! this one.
//!
//! # Example
//!
//! ```rust
//! use relcnn_tensor::{Tensor, Shape};
//!
//! # fn main() -> Result<(), relcnn_tensor::TensorError> {
//! let a = Tensor::from_fn(Shape::d2(2, 3), |idx| (idx[0] * 3 + idx[1]) as f32);
//! let b = Tensor::ones(Shape::d2(3, 2));
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape().dims(), &[2, 2]);
//! assert_eq!(c.get(&[0, 0]), 3.0); // 0+1+2
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// ISA-dispatch module in `ops` (runtime-detected AVX2 recompilation of
// the blocked GEMM body), which carries a scoped `allow` and discharges
// its single unsafe obligation with a CPUID feature check.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod conv;
pub mod init;
pub mod ops;
pub mod serial;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
