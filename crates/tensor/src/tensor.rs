use crate::{Shape, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An owned, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the single numeric container used throughout `relcnn`:
/// images, feature maps, filter banks, weight matrices and time series are
/// all `Tensor`s with an appropriate [`Shape`].
///
/// # Example
///
/// ```rust
/// use relcnn_tensor::{Tensor, Shape};
///
/// let t = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(t.get(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.volume();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: Shape) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let n = shape.volume();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// `shape.volume()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every multi-index.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let volume = shape.volume();
        let mut data = Vec::with_capacity(volume);
        let mut index = vec![0usize; shape.rank()];
        for _ in 0..volume {
            data.push(f(&index));
            // Increment the multi-index in row-major order.
            for axis in (0..index.len()).rev() {
                index[axis] += 1;
                if index[axis] < shape.dim(axis) {
                    break;
                }
                index[axis] = 0;
            }
        }
        Tensor { shape, data }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds; use [`Tensor::try_get`] for a
    /// fallible variant.
    pub fn get(&self, index: &[usize]) -> f32 {
        let off = self
            .shape
            .offset(index)
            .unwrap_or_else(|e| panic!("tensor get: {e}"));
        self.data[off]
    }

    /// Fallible element access.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn try_get(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self
            .shape
            .offset(index)
            .unwrap_or_else(|e| panic!("tensor set: {e}"));
        self.data[off] = value;
    }

    /// Fallible element update.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn try_set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a copy with the same data and a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, dims: impl Into<Vec<usize>>) -> Result<Tensor, TensorError> {
        let shape = self.shape.reshaped(dims)?;
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Consuming variant of [`Tensor::reshape`]; avoids copying the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn into_reshaped(self, dims: impl Into<Vec<usize>>) -> Result<Tensor, TensorError> {
        let shape = self.shape.reshaped(dims)?;
        Ok(Tensor {
            shape,
            data: self.data,
        })
    }

    /// Iterator over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Mutable iterator over elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }

    /// Extracts the `i`-th slab along axis 0 (e.g. one image of a batch, or
    /// one channel of a CHW tensor) as an owned tensor of rank `rank - 1`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for rank-0 tensors and
    /// [`TensorError::IndexOutOfBounds`] if `i` exceeds axis 0.
    pub fn index_axis0(&self, i: usize) -> Result<Tensor, TensorError> {
        if self.shape.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
                op: "index_axis0",
            });
        }
        if i >= self.shape.dim(0) {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                dims: self.shape.dims().to_vec(),
            });
        }
        let sub_dims = self.shape.dims()[1..].to_vec();
        let sub_volume: usize = sub_dims.iter().product();
        let start = i * sub_volume;
        Ok(Tensor {
            shape: Shape::new(sub_dims),
            data: self.data[start..start + sub_volume].to_vec(),
        })
    }

    /// Stacks equal-shaped tensors along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if `parts` is empty and
    /// [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn stack(parts: &[Tensor]) -> Result<Tensor, TensorError> {
        let first = parts.first().ok_or_else(|| TensorError::InvalidGeometry {
            reason: "cannot stack zero tensors".into(),
        })?;
        let mut dims = Vec::with_capacity(first.shape.rank() + 1);
        dims.push(parts.len());
        dims.extend_from_slice(first.shape.dims());
        let mut data = Vec::with_capacity(first.len() * parts.len());
        for p in parts {
            if p.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    expected: first.shape.dims().to_vec(),
                    actual: p.shape.dims().to_vec(),
                    op: "stack",
                });
            }
            data.extend_from_slice(&p.data);
        }
        Ok(Tensor {
            shape: Shape::new(dims),
            data,
        })
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix tensors.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
                op: "transpose",
            });
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(Tensor {
            shape: Shape::d2(c, r),
            data: out,
        })
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        const MAX: usize = 8;
        for (i, v) in self.data.iter().take(MAX).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if self.data.len() > MAX {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl<'a> IntoIterator for &'a Tensor {
    type Item = &'a f32;
    type IntoIter = std::slice::Iter<'a, f32>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros(Shape::d2(2, 3));
        assert!(z.iter().all(|&v| v == 0.0));
        let o = Tensor::ones(Shape::d1(4));
        assert!(o.iter().all(|&v| v == 1.0));
        let f = Tensor::full(Shape::d1(4), 2.5);
        assert!(f.iter().all(|&v| v == 2.5));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(Shape::d2(2, 2), vec![0.0; 3]).is_err());
        assert!(Tensor::from_vec(Shape::d2(2, 2), vec![0.0; 4]).is_ok());
    }

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(Shape::d2(2, 3), |idx| (idx[0] * 10 + idx[1]) as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(Shape::d3(2, 2, 2));
        t.set(&[1, 0, 1], 7.0);
        assert_eq!(t.get(&[1, 0, 1]), 7.0);
        assert_eq!(t.try_get(&[1, 0, 1]).unwrap(), 7.0);
        assert!(t.try_get(&[2, 0, 0]).is_err());
        assert!(t.try_set(&[0, 0, 9], 0.0).is_err());
    }

    #[test]
    fn reshape_keeps_data() {
        let t = Tensor::from_vec(Shape::d1(6), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = t.reshape(vec![2, 3]).unwrap();
        assert_eq!(r.get(&[1, 2]), 6.0);
        assert!(t.reshape(vec![4]).is_err());
    }

    #[test]
    fn index_axis0_extracts_slab() {
        let t = Tensor::from_fn(Shape::d3(2, 2, 2), |i| {
            (i[0] * 100 + i[1] * 10 + i[2]) as f32
        });
        let s = t.index_axis0(1).unwrap();
        assert_eq!(s.shape().dims(), &[2, 2]);
        assert_eq!(s.get(&[0, 1]), 101.0);
        assert!(t.index_axis0(2).is_err());
        assert!(Tensor::scalar(1.0).index_axis0(0).is_err());
    }

    #[test]
    fn stack_roundtrips_index_axis0() {
        let a = Tensor::full(Shape::d2(2, 2), 1.0);
        let b = Tensor::full(Shape::d2(2, 2), 2.0);
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.shape().dims(), &[2, 2, 2]);
        assert_eq!(s.index_axis0(0).unwrap(), a);
        assert_eq!(s.index_axis0(1).unwrap(), b);
        assert!(Tensor::stack(&[]).is_err());
        let c = Tensor::full(Shape::d1(3), 0.0);
        assert!(Tensor::stack(&[a, c]).is_err());
    }

    #[test]
    fn transpose_matrix() {
        let t = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.shape().dims(), &[3, 2]);
        assert_eq!(tt.get(&[2, 1]), 6.0);
        assert!(Tensor::scalar(0.0).transpose().is_err());
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(Shape::d1(20));
        let s = t.to_string();
        assert!(s.contains("…"));
        assert!(!Tensor::scalar(0.0).to_string().is_empty());
    }

    #[test]
    fn default_is_zero_scalar() {
        let d = Tensor::default();
        assert_eq!(d.shape().rank(), 0);
        assert_eq!(d.as_slice(), &[0.0]);
    }
}
