//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use relcnn_tensor::conv::{
    col2im, conv2d, conv2d_im2col, im2col, im2col_into, max_pool2d, max_pool2d_into, ConvGeometry,
};
use relcnn_tensor::init::Rand;
use relcnn_tensor::ops::gemm_into_blocked;
use relcnn_tensor::serial::{from_bytes, to_bytes};
use relcnn_tensor::{Shape, Tensor};

/// Fills a buffer with entries including the payloads that expose
/// accumulation-order drift: zeros (the skip path), NaN and both
/// infinities, alongside ordinary finite values.
fn gemm_entries(rng: &mut Rand, len: usize) -> Vec<f32> {
    (0..len)
        .map(|_| match rng.raw_u64() % 16 {
            0 | 1 => 0.0,
            2 => f32::NAN,
            3 => f32::INFINITY,
            4 => f32::NEG_INFINITY,
            _ => ((rng.raw_u64() % 2001) as f32 - 1000.0) / 17.0,
        })
        .collect()
}

/// Bit equality modulo NaN payload: any NaN matches any NaN.
///
/// Per-element accumulation order pins every finite, zero-signed and
/// infinite result bit-for-bit, and a NaN result is NaN in both
/// kernels. The NaN *payload* is the one non-portable bit: when *both*
/// operands of an add/mul are NaN, x86 returns the first source
/// operand's payload, and LLVM is free to commute the (value-wise
/// commutative) operands differently per codegen unit — so
/// `NaN(a) + NaN(b)` may surface either payload depending on
/// optimisation level. Single-NaN propagation is unaffected.
fn bits_match(x: f32, y: f32) -> bool {
    x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan())
}

fn small_tensor(max_len: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-100.0f32..100.0, 1..max_len).prop_map(|v| {
        let n = v.len();
        Tensor::from_vec(Shape::d1(n), v).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shape offset/unravel are inverse bijections over the whole volume.
    #[test]
    fn shape_offset_unravel_bijection(
        dims in proptest::collection::vec(1usize..5, 1..4),
    ) {
        let shape = Shape::new(dims);
        let mut seen = std::collections::HashSet::new();
        for flat in 0..shape.volume() {
            let idx = shape.unravel(flat).unwrap();
            prop_assert_eq!(shape.offset(&idx).unwrap(), flat);
            prop_assert!(seen.insert(idx));
        }
    }

    /// Elementwise add/sub are inverse; mul by ones is identity.
    #[test]
    fn elementwise_algebra(t in small_tensor(64)) {
        let ones = Tensor::ones(t.shape().clone());
        prop_assert_eq!(t.mul(&ones).unwrap(), t.clone());
        let back = t.add(&t).unwrap().sub(&t).unwrap();
        for (a, b) in back.iter().zip(t.iter()) {
            prop_assert!((a - b).abs() <= 1e-3_f32.max(b.abs() * 1e-5));
        }
    }

    /// Transpose is an involution and matmul agrees with the transpose
    /// identity (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000,
    ) {
        let mut rng = Rand::seeded(seed);
        let a = rng.tensor(Shape::d2(m, k), relcnn_tensor::init::Init::Uniform { lo: -2.0, hi: 2.0 });
        let b = rng.tensor(Shape::d2(k, n), relcnn_tensor::init::Init::Uniform { lo: -2.0, hi: 2.0 });
        prop_assert_eq!(a.transpose().unwrap().transpose().unwrap(), a.clone());
        let ab_t = a.matmul(&b).unwrap().transpose().unwrap();
        let bt_at = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        for (x, y) in ab_t.iter().zip(bt_at.iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Blocked `matmul_into` is bit-identical to the naive `matmul` oracle
    /// across shapes (empty / 1-row / 1-col edges included), block sizes
    /// that do not divide the dimensions, and zero/inf/NaN operands
    /// (NaN results compared as a class — see [`bits_match`]).
    #[test]
    fn blocked_gemm_bit_identical_to_naive(
        m in 0usize..9, k in 0usize..9, n in 0usize..9,
        block_i in 1usize..7, block_j in 1usize..7,
        seed in 0u64..10_000,
    ) {
        let mut rng = Rand::seeded(seed);
        let a = Tensor::from_vec(Shape::d2(m, k), gemm_entries(&mut rng, m * k)).unwrap();
        let b = Tensor::from_vec(Shape::d2(k, n), gemm_entries(&mut rng, k * n)).unwrap();
        let oracle = a.matmul(&b).unwrap();
        // Default blocking through the public entry point.
        let mut out = vec![f32::NAN; m * n];
        a.matmul_into(&b, &mut out).unwrap();
        for (x, y) in out.iter().zip(oracle.iter()) {
            prop_assert!(bits_match(*x, *y), "{:#010x} vs {:#010x}", x.to_bits(), y.to_bits());
        }
        // Arbitrary (non-dividing) blockings through the test hook.
        let mut out = vec![f32::NAN; m * n];
        gemm_into_blocked(m, k, n, a.as_slice(), b.as_slice(), &mut out, block_i, block_j)
            .unwrap();
        for (x, y) in out.iter().zip(oracle.iter()) {
            prop_assert!(bits_match(*x, *y), "{:#010x} vs {:#010x}", x.to_bits(), y.to_bits());
        }
    }

    /// `im2col_into` reproduces the allocating `im2col` byte for byte even
    /// into a garbage-prefilled scratch buffer, and `max_pool2d_into`
    /// matches `max_pool2d` the same way.
    #[test]
    fn scratch_lowering_matches_allocating_oracles(
        in_c in 1usize..3, size in 3usize..9, k in 1usize..4,
        stride in 1usize..3, pad in 0usize..2, seed in 0u64..1000,
    ) {
        prop_assume!(size + 2 * pad >= k);
        let geom = ConvGeometry::new(size, size, k, k, stride, pad).unwrap();
        let mut rng = Rand::seeded(seed);
        let input = rng.tensor(
            Shape::d3(in_c, size, size),
            relcnn_tensor::init::Init::Uniform { lo: -1.0, hi: 1.0 },
        );
        let oracle = im2col(&input, &geom).unwrap();
        let mut out = vec![f32::NAN; oracle.len()];
        im2col_into(input.as_slice(), in_c, &geom, &mut out).unwrap();
        for (a, b) in out.iter().zip(oracle.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        if pad == 0 && size >= k {
            let pool_geom = ConvGeometry::new(size, size, k, k, stride, 0).unwrap();
            let (pooled, _) = max_pool2d(&input, &pool_geom).unwrap();
            let mut out = vec![f32::NAN; pooled.len()];
            max_pool2d_into(input.as_slice(), in_c, &pool_geom, &mut out).unwrap();
            for (a, b) in out.iter().zip(pooled.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// im2col convolution equals direct convolution for random geometry.
    #[test]
    fn conv_implementations_agree(
        in_c in 1usize..3, out_c in 1usize..3,
        size in 3usize..9, k in 1usize..4,
        stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(size + 2 * pad >= k);
        let geom = ConvGeometry::new(size, size, k, k, stride, pad).unwrap();
        let mut rng = Rand::seeded(seed);
        let input = rng.tensor(Shape::d3(in_c, size, size), relcnn_tensor::init::Init::Uniform { lo: -1.0, hi: 1.0 });
        let filt = rng.tensor(Shape::d4(out_c, in_c, k, k), relcnn_tensor::init::Init::Uniform { lo: -1.0, hi: 1.0 });
        let direct = conv2d(&input, &filt, None, &geom).unwrap();
        let fast = conv2d_im2col(&input, &filt, None, &geom).unwrap();
        prop_assert_eq!(direct.shape(), fast.shape());
        for (a, b) in direct.iter().zip(fast.iter()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    /// col2im is the adjoint of im2col: <Ax, y> == <x, Aᵀy>.
    #[test]
    fn im2col_adjoint(
        in_c in 1usize..3, size in 3usize..8, k in 1usize..4,
        stride in 1usize..3, pad in 0usize..2, seed in 0u64..1000,
    ) {
        prop_assume!(size + 2 * pad >= k);
        let geom = ConvGeometry::new(size, size, k, k, stride, pad).unwrap();
        let mut rng = Rand::seeded(seed);
        let x = rng.tensor(Shape::d3(in_c, size, size), relcnn_tensor::init::Init::Uniform { lo: -1.0, hi: 1.0 });
        let rows = in_c * k * k;
        let y = rng.tensor(Shape::d2(rows, geom.positions()), relcnn_tensor::init::Init::Uniform { lo: -1.0, hi: 1.0 });
        let ax = im2col(&x, &geom).unwrap();
        let aty = col2im(&y, in_c, &geom).unwrap();
        let lhs = ax.dot(&y).unwrap() as f64;
        let rhs = x.dot(&aty).unwrap() as f64;
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    /// Binary serialisation round-trips bit-exactly.
    #[test]
    fn serial_roundtrip(t in small_tensor(128)) {
        let bytes = to_bytes(&t);
        let mut buf = bytes.clone();
        let back = from_bytes(&mut buf).unwrap();
        prop_assert_eq!(back.shape(), t.shape());
        for (a, b) in back.iter().zip(t.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Seeded RNG streams are reproducible and shift/scale statistics of
    /// initialisers are sane.
    #[test]
    fn rng_reproducible(seed in 0u64..10_000) {
        let mut a = Rand::seeded(seed);
        let mut b = Rand::seeded(seed);
        for _ in 0..8 {
            prop_assert_eq!(a.raw_u64(), b.raw_u64());
        }
    }
}
