//! Batched hybrid-CNN inference on the engine.
//!
//! `HybridCnn::classify` is a single-image, `&mut self` path; serving
//! traffic means classifying many images at once. [`BatchClassify`]
//! fans a batch out across the worker pool — each worker owns a clone of
//! the network — and returns verdicts in input order. Classification is
//! deterministic per image, so the batch output is independent of the
//! worker count by construction *and* by the engine's ordered result
//! stream.
//!
//! The per-worker clone in [`SourcedTrial::init`] is also what threads
//! the zero-allocation inference arena through the engine: a cloned
//! `HybridCnn` starts with a fresh `InferScratch`, so every worker warms
//! its own arena on its first image and recycles it for the rest of the
//! run — scratch memory is never shared across workers, and steady-state
//! classification performs no per-image heap allocation in the CNN tail.
//!
//! Images arrive through a [`TrialSource`]: an in-memory batch is the
//! eager [`SliceSource`] case ([`classify_many`]), while
//! [`classify_source`] accepts any source — e.g. an [`FnSource`] that
//! maps request ids to a shared image pool, or synthesises inputs on
//! demand — so the serving layer dispatches whole batches without
//! cloning or materialising a single image.
//!
//! [`classify_many`]: BatchClassify::classify_many
//! [`classify_source`]: BatchClassify::classify_source
//! [`FnSource`]: crate::FnSource

use crate::engine::{Engine, RunOutcome, RunPlan};
use crate::sink::CollectSink;
use crate::source::{SliceSource, TrialSource};
use crate::trial::{SourcedTrial, TrialCtx};
use relcnn_core::{HybridCnn, HybridError, QualifiedClassification};
use relcnn_tensor::Tensor;
use std::borrow::Borrow;

struct ClassifyTrial<'a> {
    hybrid: &'a HybridCnn,
}

impl<I: Borrow<Tensor> + Send> SourcedTrial<I> for ClassifyTrial<'_> {
    type State = HybridCnn;
    type Output = Result<QualifiedClassification, HybridError>;

    fn init(&self, _worker_index: usize) -> HybridCnn {
        self.hybrid.clone()
    }

    fn run(&self, state: &mut HybridCnn, item: I, _ctx: &mut TrialCtx) -> Self::Output {
        state.classify(item.borrow())
    }
}

/// Batched classification through the runtime engine.
pub trait BatchClassify {
    /// Classifies `images` across `engine`'s worker pool, preserving
    /// input order.
    ///
    /// # Errors
    ///
    /// Returns the first per-image error in input order, as the serial
    /// loop would.
    fn classify_many(
        &self,
        engine: &Engine,
        images: &[Tensor],
    ) -> Result<Vec<QualifiedClassification>, HybridError>;

    /// Like [`classify_many`](BatchClassify::classify_many) but also
    /// returns the engine's throughput/latency counters.
    fn classify_many_stats(
        &self,
        engine: &Engine,
        images: &[Tensor],
    ) -> RunOutcome<Result<Vec<QualifiedClassification>, HybridError>>;

    /// Classifies one image per item of `source` across the worker pool,
    /// preserving source order: the streaming ingestion entry point.
    /// Items are pulled chunk by chunk on the executing worker, so the
    /// batch is never materialised as a tensor vector — a source may
    /// yield borrowed tensors from a shared pool or synthesise images on
    /// demand. Error contract matches
    /// [`classify_many`](BatchClassify::classify_many).
    fn classify_source<Src>(
        &self,
        engine: &Engine,
        source: &Src,
    ) -> RunOutcome<Result<Vec<QualifiedClassification>, HybridError>>
    where
        Src: TrialSource,
        Src::Item: Borrow<Tensor>;
}

impl BatchClassify for HybridCnn {
    fn classify_many(
        &self,
        engine: &Engine,
        images: &[Tensor],
    ) -> Result<Vec<QualifiedClassification>, HybridError> {
        self.classify_many_stats(engine, images).summary
    }

    fn classify_many_stats(
        &self,
        engine: &Engine,
        images: &[Tensor],
    ) -> RunOutcome<Result<Vec<QualifiedClassification>, HybridError>> {
        self.classify_source(engine, &SliceSource::new(images))
    }

    fn classify_source<Src>(
        &self,
        engine: &Engine,
        source: &Src,
    ) -> RunOutcome<Result<Vec<QualifiedClassification>, HybridError>>
    where
        Src: TrialSource,
        Src::Item: Borrow<Tensor>,
    {
        // One image per trial; seeds are irrelevant (fault-free path).
        // Chunk size 1: per-image latency varies (early-abort
        // qualification paths) and trials inside an executing chunk are
        // not stealable, so single-image chunks keep worst-case tail
        // latency at one image. The envelope coalescing on the result
        // channel makes the fine granularity cheap — contiguous verdicts
        // merge into one message — and chunking never changes them.
        let plan = RunPlan::new(source.len(), 0).with_chunk(1);
        let outcome = engine.run_source(
            &plan,
            source,
            &ClassifyTrial { hybrid: self },
            CollectSink::new(),
        );
        RunOutcome {
            summary: outcome.summary.into_iter().collect(),
            stats: outcome.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcnn_core::HybridConfig;
    use relcnn_gtsrb::{DatasetConfig, SyntheticGtsrb};

    #[test]
    fn batch_matches_serial_and_is_ordered() {
        let data = SyntheticGtsrb::generate(&DatasetConfig::tiny(21)).expect("dataset");
        let mut hybrid = HybridCnn::untrained(&HybridConfig::tiny(22)).expect("hybrid");
        let images: Vec<_> = data
            .test()
            .iter()
            .take(6)
            .map(|s| s.image.clone())
            .collect();

        let serial: Vec<_> = images
            .iter()
            .map(|im| hybrid.classify(im).expect("serial verdict"))
            .collect();

        for workers in [1, 3] {
            let batched = hybrid
                .classify_many(&Engine::with_workers(workers), &images)
                .expect("batched verdicts");
            assert_eq!(batched.len(), serial.len());
            for (a, b) in serial.iter().zip(&batched) {
                assert_eq!(a.class(), b.class());
                assert_eq!(a.confidence().to_bits(), b.confidence().to_bits());
                assert_eq!(a.is_qualified(), b.is_qualified());
            }
        }
    }

    #[test]
    fn bad_image_surfaces_first_error() {
        let hybrid = HybridCnn::untrained(&HybridConfig::tiny(5)).expect("hybrid");
        let bad = Tensor::zeros(relcnn_tensor::Shape::d2(4, 4));
        let err = hybrid.classify_many(&Engine::with_workers(2), &[bad]);
        assert!(err.is_err());
    }

    #[test]
    fn first_error_in_input_order_even_when_it_lands_mid_batch() {
        // The "first error in input order" contract, off the happy path:
        // two *different* bad images deep in the batch, run at several
        // worker counts (chunk=1 deals the trailing chunks to the last
        // workers and makes them prime steal targets). Whatever worker
        // executed the erroring image's chunk — locally or stolen — the
        // returned error must be the one the serial loop would hit first.
        let data = SyntheticGtsrb::generate(&DatasetConfig::tiny(31)).expect("dataset");
        let mut hybrid = HybridCnn::untrained(&HybridConfig::tiny(32)).expect("hybrid");
        let good: Vec<_> = data.test().iter().map(|s| s.image.clone()).collect();
        let mut images: Vec<Tensor> = (0..24).map(|i| good[i % good.len()].clone()).collect();
        // Distinguishable failures: a 2-D tensor of the wrong shape at
        // index 13, and a differently-shaped one at index 19.
        images[13] = Tensor::zeros(relcnn_tensor::Shape::d2(3, 3));
        images[19] = Tensor::zeros(relcnn_tensor::Shape::d2(9, 9));

        let serial_err = images
            .iter()
            .map(|im| hybrid.classify(im))
            .find_map(|r| r.err())
            .expect("serial loop hits an error");
        for workers in [1, 2, 8] {
            let err = hybrid
                .classify_many(&Engine::with_workers(workers), &images)
                .expect_err("batched run must surface an error");
            assert_eq!(
                format!("{err}"),
                format!("{serial_err}"),
                "workers={workers}: expected the *first* bad image's error"
            );
        }
    }

    #[test]
    fn first_error_contract_survives_steals_and_splits() {
        // Engine-level pin of the mechanism classify_many relies on
        // (ordered CollectSink stream + first-Err collect), with the
        // schedule forced adversarial: sleepy trials starve the pool so
        // chunks are stolen AND adaptively split, and the erroring
        // trials sit in the back halves that move between workers. The
        // error returned must still be the lowest-index one.
        use crate::sink::CollectSink;
        use crate::trial::FnTrial;
        use std::time::Duration;

        let trial = FnTrial::new(|ctx: &mut TrialCtx| -> Result<u64, String> {
            std::thread::sleep(Duration::from_micros(200));
            match ctx.index {
                40 => Err(format!("bad trial {}", ctx.index)),
                100 => Err(format!("bad trial {}", ctx.index)),
                i => Ok(i),
            }
        });
        // Whole-shard chunks at 8 workers: both stealing and adaptive
        // splitting must redistribute the back halves (the regime the
        // adaptive_split engine test pins).
        let plan = RunPlan::new(128, 9).with_shards(2).with_chunk(64);
        let outcome = Engine::with_workers(8).run(&plan, &trial, CollectSink::new());
        assert!(
            outcome.stats.steals > 0 || outcome.stats.splits > 0,
            "schedule was not adversarial: {:?}",
            outcome.stats
        );
        let collected: Result<Vec<u64>, String> = outcome.summary.into_iter().collect();
        assert_eq!(collected.unwrap_err(), "bad trial 40");
    }

    #[test]
    fn empty_batch_is_empty() {
        let hybrid = HybridCnn::untrained(&HybridConfig::tiny(6)).expect("hybrid");
        let out = hybrid
            .classify_many(&Engine::with_workers(2), &[])
            .expect("empty");
        assert!(out.is_empty());
    }
}
