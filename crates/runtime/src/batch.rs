//! Batched hybrid-CNN inference on the engine.
//!
//! `HybridCnn::classify` is a single-image, `&mut self` path; serving
//! traffic means classifying many images at once. [`BatchClassify`]
//! fans a batch out across the worker pool — each worker owns a clone of
//! the network — and returns verdicts in input order. Classification is
//! deterministic per image, so the batch output is independent of the
//! worker count by construction *and* by the engine's ordered result
//! stream.

use crate::engine::{Engine, RunOutcome, RunPlan};
use crate::sink::CollectSink;
use crate::trial::{Trial, TrialCtx};
use relcnn_core::{HybridCnn, HybridError, QualifiedClassification};
use relcnn_tensor::Tensor;

struct ClassifyTrial<'a> {
    hybrid: &'a HybridCnn,
    images: &'a [Tensor],
}

impl Trial for ClassifyTrial<'_> {
    type State = HybridCnn;
    type Output = Result<QualifiedClassification, HybridError>;

    fn init(&self, _worker_index: usize) -> HybridCnn {
        self.hybrid.clone()
    }

    fn run(&self, state: &mut HybridCnn, ctx: &mut TrialCtx) -> Self::Output {
        state.classify(&self.images[ctx.index as usize])
    }
}

/// Batched classification through the runtime engine.
pub trait BatchClassify {
    /// Classifies `images` across `engine`'s worker pool, preserving
    /// input order.
    ///
    /// # Errors
    ///
    /// Returns the first per-image error in input order, as the serial
    /// loop would.
    fn classify_many(
        &self,
        engine: &Engine,
        images: &[Tensor],
    ) -> Result<Vec<QualifiedClassification>, HybridError>;

    /// Like [`classify_many`](BatchClassify::classify_many) but also
    /// returns the engine's throughput/latency counters.
    fn classify_many_stats(
        &self,
        engine: &Engine,
        images: &[Tensor],
    ) -> RunOutcome<Result<Vec<QualifiedClassification>, HybridError>>;
}

impl BatchClassify for HybridCnn {
    fn classify_many(
        &self,
        engine: &Engine,
        images: &[Tensor],
    ) -> Result<Vec<QualifiedClassification>, HybridError> {
        self.classify_many_stats(engine, images).summary
    }

    fn classify_many_stats(
        &self,
        engine: &Engine,
        images: &[Tensor],
    ) -> RunOutcome<Result<Vec<QualifiedClassification>, HybridError>> {
        // One image per trial; seeds are irrelevant (fault-free path).
        // Chunk size 1: per-image latency varies (early-abort
        // qualification paths) and trials inside an executing chunk are
        // not stealable, so single-image chunks keep worst-case tail
        // latency at one image. The envelope coalescing on the result
        // channel makes the fine granularity cheap — contiguous verdicts
        // merge into one message — and chunking never changes them.
        let plan = RunPlan::new(images.len() as u64, 0).with_chunk(1);
        let outcome = engine.run(
            &plan,
            &ClassifyTrial {
                hybrid: self,
                images,
            },
            CollectSink::new(),
        );
        RunOutcome {
            summary: outcome.summary.into_iter().collect(),
            stats: outcome.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcnn_core::HybridConfig;
    use relcnn_gtsrb::{DatasetConfig, SyntheticGtsrb};

    #[test]
    fn batch_matches_serial_and_is_ordered() {
        let data = SyntheticGtsrb::generate(&DatasetConfig::tiny(21)).expect("dataset");
        let mut hybrid = HybridCnn::untrained(&HybridConfig::tiny(22)).expect("hybrid");
        let images: Vec<_> = data
            .test()
            .iter()
            .take(6)
            .map(|s| s.image.clone())
            .collect();

        let serial: Vec<_> = images
            .iter()
            .map(|im| hybrid.classify(im).expect("serial verdict"))
            .collect();

        for workers in [1, 3] {
            let batched = hybrid
                .classify_many(&Engine::with_workers(workers), &images)
                .expect("batched verdicts");
            assert_eq!(batched.len(), serial.len());
            for (a, b) in serial.iter().zip(&batched) {
                assert_eq!(a.class(), b.class());
                assert_eq!(a.confidence().to_bits(), b.confidence().to_bits());
                assert_eq!(a.is_qualified(), b.is_qualified());
            }
        }
    }

    #[test]
    fn bad_image_surfaces_first_error() {
        let hybrid = HybridCnn::untrained(&HybridConfig::tiny(5)).expect("hybrid");
        let bad = Tensor::zeros(relcnn_tensor::Shape::d2(4, 4));
        let err = hybrid.classify_many(&Engine::with_workers(2), &[bad]);
        assert!(err.is_err());
    }

    #[test]
    fn empty_batch_is_empty() {
        let hybrid = HybridCnn::untrained(&HybridConfig::tiny(6)).expect("hybrid");
        let out = hybrid
            .classify_many(&Engine::with_workers(2), &[])
            .expect("empty");
        assert!(out.is_empty());
    }
}
